"""Frozen execution plans for compiled inference.

An :class:`InferencePlan` is the immutable artifact produced by compiling a
trained :class:`~repro.nn.module.Module` for inference
(:func:`repro.runtime.engine.compile_model`).  Every weight-bearing layer is
lowered to a *realized* effective-weight ndarray — the periphery matrix is
applied once and the device quantisation is applied once — together with a
pure-NumPy op (matmul, im2col-matmul, activation, pooling, normalisation).
Executing a plan therefore pays none of the training-time costs: no autograd
graph, no per-batch ``W = S @ M`` rebuild, no per-batch re-quantisation.

Crossbar-backed ops additionally keep a :class:`CrossbarSpec` — the raw
programmed conductances, periphery matrix and device model — so the
Monte-Carlo engine (:mod:`repro.runtime.montecarlo`) can redraw device
variation without recompiling, reproducing exactly what the eager layers do
at inference time: perturb the raw conductances, clip them to the device
range, re-quantise, then apply the periphery.

Plans are serialisable (:meth:`InferencePlan.save` /
:meth:`InferencePlan.load`), which makes them a self-contained deployment
unit: the file holds every array and op attribute needed to serve the model,
independent of the module tree that produced it.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.intkernels import (
    INT_PRECISIONS,
    PRECISIONS,
    activation_qmax,
    compute_dtype,
    dequantize,
    int_matmul,
    quantize_activations,
    quantize_weight,
)
from repro.tensor.functional import conv_output_size, im2col
from repro.xbar.quantization import ConductanceRange, UniformQuantizer
from repro.xbar.variation import DeviceVariationModel


class PlanCompilationError(Exception):
    """Raised when a module cannot be lowered to an inference plan."""


# ---------------------------------------------------------------------- #
# Crossbar freeze artifact
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CrossbarSpec:
    """The physical-device description frozen out of one mapped layer.

    Attributes
    ----------
    conductances:
        The raw programmed crossbar matrix ``M`` of shape ``(ND, NI)``,
        including any fixed reference rows (BC), *before* clipping and
        quantisation — variation is applied to these raw values, exactly as
        the eager layer does.
    periphery:
        The fixed signed periphery matrix ``S`` of shape ``(NO, ND)``.
    g_min, g_max:
        Device conductance range.
    quantizer_bits:
        Device precision; ``None`` for full-precision conductances.
    """

    conductances: np.ndarray
    periphery: np.ndarray
    g_min: float
    g_max: float
    quantizer_bits: Optional[int] = None

    @property
    def range(self) -> ConductanceRange:
        return ConductanceRange(self.g_min, self.g_max)

    @property
    def quantizer(self) -> Optional[UniformQuantizer]:
        if self.quantizer_bits is None:
            return None
        return UniformQuantizer(self.quantizer_bits, self.range)

    def finalize(self, conductances: np.ndarray) -> np.ndarray:
        """Clip (and quantise, if the devices are discrete) conductances.

        This is the device-realisation step the eager layers apply on every
        forward pass; the plan applies it once at compile time and once per
        Monte-Carlo draw.
        """
        quantizer = self.quantizer
        if quantizer is not None:
            return quantizer.snap(conductances)
        return self.range.clip(conductances)

    def base_weight(self) -> np.ndarray:
        """The realized effective signed weight ``W = S @ finalize(M)``."""
        return self.periphery @ self.finalize(self.conductances)

    def sample_weights(
        self, sigma_fraction: float, num_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``num_samples`` variation-perturbed effective weights at once.

        Returns a stacked array of shape ``(num_samples, NO, NI)``.  Each
        sample perturbs the raw conductances with zero-mean Gaussian noise,
        clips back into the device range, re-quantises, and applies the
        periphery matrix — the same pipeline the eager layer runs per batch,
        vectorised over samples.
        """
        variation = DeviceVariationModel(
            sigma_fraction=sigma_fraction, range=self.range
        )
        stacked = variation.perturb_stack(self.conductances, num_samples, rng=rng)
        realized = self.finalize(stacked)
        return np.matmul(self.periphery, realized)


# ---------------------------------------------------------------------- #
# Plan ops
# ---------------------------------------------------------------------- #
@dataclass
class PlanOp:
    """Base class: one pure-NumPy operation of the frozen program.

    ``inputs`` are value-slot indices and ``output`` is the slot this op
    writes.  ``leading_dims_safe`` marks ops whose computation broadcasts
    over arbitrary leading axes, which the Monte-Carlo engine uses to run
    sample-stacked values without reshaping.
    """

    inputs: Tuple[int, ...] = (0,)
    output: int = 0

    leading_dims_safe = False
    #: Names of the float *payload* arrays :meth:`InferencePlan.cast` may
    #: convert.  Precision conversion is explicit per op class: fields not
    #: listed here (integer weights, per-channel scales, crossbar specs)
    #: are never touched by a dtype cast.
    _cast_fields: ClassVar[Tuple[str, ...]] = ()

    def run(self, *values: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def infer_shape(self, *shapes: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape given per-sample input shapes (no batch axis).

        The default covers every shape-preserving op (activations,
        normalisation, elementwise addition); shape-changing ops override it.
        Symbolic propagation lets the plan cache its layer geometry without
        ever pushing a sample through the program.
        """
        return shapes[0]


@dataclass
class DenseOp(PlanOp):
    """``y = x @ W.T + b`` with a frozen effective weight."""

    weight: np.ndarray = None
    bias: Optional[np.ndarray] = None
    spec: Optional[CrossbarSpec] = None

    leading_dims_safe = True  # matmul broadcasts over leading axes
    _cast_fields = ("weight", "bias")

    def run(self, x: np.ndarray) -> np.ndarray:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def infer_shape(self, *shapes: Tuple[int, ...]) -> Tuple[int, ...]:
        shape = shapes[0]
        if shape[-1] != self.weight.shape[1]:
            raise ValueError(
                f"input has {shape[-1]} features but the frozen weight expects "
                f"{self.weight.shape[1]}"
            )
        return shape[:-1] + (self.weight.shape[0],)

    def run_sampled(
        self, x: np.ndarray, weights: np.ndarray, x_stacked: bool
    ) -> np.ndarray:
        """Apply per-sample weights ``(S, NO, NI)``; returns ``(S, B, NO)``.

        Implemented as a batched BLAS matmul over the sample axis; a
        sample-invariant input broadcasts against the weight stack.
        """
        out = np.matmul(x, weights.transpose(0, 2, 1))
        if self.bias is not None:
            out = out + self.bias
        return out


@dataclass
class ConvOp(PlanOp):
    """im2col convolution against a frozen ``(C_out, C_in*kh*kw)`` matrix."""

    weight: np.ndarray = None
    bias: Optional[np.ndarray] = None
    kernel_shape: Tuple[int, int, int] = (1, 1, 1)  # (C_in, kh, kw)
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (0, 0)
    spec: Optional[CrossbarSpec] = None

    _cast_fields = ("weight", "bias")

    def _geometry(self, height: int, width: int) -> Tuple[int, int]:
        _, kernel_h, kernel_w = self.kernel_shape
        out_h = conv_output_size(height, kernel_h, self.stride[0], self.padding[0])
        out_w = conv_output_size(width, kernel_w, self.stride[1], self.padding[1])
        return out_h, out_w

    def _check_channels(self, channels: int) -> None:
        if channels != self.kernel_shape[0]:
            raise ValueError(
                f"input has {channels} channels but the frozen kernel expects "
                f"{self.kernel_shape[0]}"
            )

    def run(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        self._check_channels(channels)
        _, kernel_h, kernel_w = self.kernel_shape
        out_h, out_w = self._geometry(height, width)
        columns = im2col(x, (kernel_h, kernel_w), self.stride, self.padding)
        out = columns @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        out = out.reshape(batch, out_h, out_w, self.weight.shape[0])
        return out.transpose(0, 3, 1, 2)

    def run_sampled(
        self, x: np.ndarray, weights: np.ndarray, x_stacked: bool
    ) -> np.ndarray:
        """Apply per-sample kernels ``(S, C_out, K)``; returns 5-D output.

        When the input is still sample-invariant (the layers before the first
        crossbar layer), im2col runs once and the sample axis appears only in
        the batched matmul.
        """
        num_samples, out_channels = weights.shape[0], weights.shape[1]
        _, kernel_h, kernel_w = self.kernel_shape
        self._check_channels(x.shape[-3])
        if x_stacked:
            stacked, batch = x.shape[0], x.shape[1]
            height, width = x.shape[3], x.shape[4]
            out_h, out_w = self._geometry(height, width)
            flat = x.reshape((stacked * batch,) + x.shape[2:])
            columns = im2col(flat, (kernel_h, kernel_w), self.stride, self.padding)
            columns = columns.reshape(stacked, batch * out_h * out_w, -1)
        else:
            batch, height, width = x.shape[0], x.shape[2], x.shape[3]
            out_h, out_w = self._geometry(height, width)
            columns = im2col(x, (kernel_h, kernel_w), self.stride, self.padding)
        out = np.matmul(columns, weights.transpose(0, 2, 1))
        if self.bias is not None:
            out = out + self.bias
        out = out.reshape(num_samples, batch, out_h, out_w, out_channels)
        return out.transpose(0, 1, 4, 2, 3)

    def infer_shape(self, *shapes: Tuple[int, ...]) -> Tuple[int, ...]:
        channels, height, width = shapes[0]
        self._check_channels(channels)
        out_h, out_w = self._geometry(height, width)
        return (self.weight.shape[0], out_h, out_w)


class _IntOpMixin:
    """Shared machinery of the integer-lowered weight ops.

    An integer op keeps the float ``weight`` alongside the decomposed
    ``scales[o] * q_weight[o, :]``: the float twin backs the per-batch
    fallback (activations that do not quantise losslessly), Monte-Carlo
    sampling (sampled weights are float by construction), and dtype casts.
    Runtime counters (``int_batches`` / ``fallback_batches``) record which
    path each batch actually took; they feed the serving layer's
    per-model precision statistics.
    """

    def _init_int_state(self) -> None:
        self.int_batches = 0
        self.fallback_batches = 0
        q_weight = self.q_weight
        self._q_absmax = (
            int(np.abs(q_weight).max()) if q_weight is not None and q_weight.size
            else 0
        )
        # The weight is constant for the plan's lifetime, so its conversion
        # to the kernel's BLAS compute dtype happens exactly once here —
        # quantize_activations hands batches over in the same dtype, so the
        # steady-state kernel call converts nothing.
        self._q_compute = (
            q_weight.astype(compute_dtype(self.precision))
            if q_weight is not None else None
        )

    def _int_matmul_2d(self, q: np.ndarray) -> np.ndarray:
        return int_matmul(
            q, self._q_compute, precision=self.precision,
            a_max=activation_qmax(self.precision), b_max=self._q_absmax,
        )


@dataclass
class IntDenseOp(_IntOpMixin, DenseOp):
    """:class:`DenseOp` executing on the exact integer path.

    ``y = (q_x @ q_W.T) * (s_x * s_W[o]) + b`` with the matmul running in
    the blocked integer kernel.  When the batch does not quantise
    losslessly the op falls back to the float weight for that batch, so
    outputs agree with the float64 plan to rounding level either way.
    """

    q_weight: np.ndarray = None   # (N, K) int8/int16
    scales: np.ndarray = None     # (N,) float64 per-output-channel
    precision: str = "int8"

    def __post_init__(self) -> None:
        self._init_int_state()

    def run(self, x: np.ndarray) -> np.ndarray:
        q, scale, exact = quantize_activations(x, self.precision)
        if not exact:
            self.fallback_batches += 1
            return DenseOp.run(self, x)
        self.int_batches += 1
        flat = q.reshape(-1, q.shape[-1])
        acc = self._int_matmul_2d(flat)
        acc = acc.reshape(q.shape[:-1] + (self.q_weight.shape[0],))
        return dequantize(acc, scale, self.scales, self.bias)


@dataclass
class IntConvOp(_IntOpMixin, ConvOp):
    """:class:`ConvOp` executing its im2col matmul on the integer path.

    im2col only gathers input values, so a losslessly quantisable input
    stays lossless after lowering to columns (padding contributes exact
    zeros); the column matrix then takes the same quantise / blocked
    integer GEMM / dequantise path as :class:`IntDenseOp`.
    """

    q_weight: np.ndarray = None
    scales: np.ndarray = None
    precision: str = "int8"

    def __post_init__(self) -> None:
        self._init_int_state()

    def run(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        self._check_channels(channels)
        _, kernel_h, kernel_w = self.kernel_shape
        out_h, out_w = self._geometry(height, width)
        columns = im2col(x, (kernel_h, kernel_w), self.stride, self.padding)
        q, scale, exact = quantize_activations(columns, self.precision)
        if exact:
            self.int_batches += 1
            out = dequantize(self._int_matmul_2d(q), scale, self.scales,
                             self.bias)
        else:
            self.fallback_batches += 1
            out = columns @ self.weight.T
            if self.bias is not None:
                out = out + self.bias
        out = out.reshape(batch, out_h, out_w, self.weight.shape[0])
        return out.transpose(0, 3, 1, 2)


def _lower_int_op(op: PlanOp, precision: str) -> Optional[PlanOp]:
    """The integer twin of one weight-bearing op, or ``None`` if ineligible.

    Eligibility is decided by arithmetic, not trust: the op must carry a
    crossbar spec with a discrete quantiser (the grid supplies the candidate
    step), and :func:`repro.runtime.intkernels.quantize_weight` must verify
    that the frozen weight actually decomposes over that grid within the
    precision's integer range.  BatchNorm-folded peripheries (per-row
    rescaled grids) and plain float layers fail the check and stay float.
    """
    spec = getattr(op, "spec", None)
    if spec is None or spec.quantizer_bits is None:
        return None
    quantized = quantize_weight(op.weight, spec.quantizer.step, precision)
    if quantized is None:
        return None
    common = dict(inputs=op.inputs, output=op.output, weight=op.weight,
                  bias=op.bias, spec=op.spec, q_weight=quantized.q,
                  scales=quantized.scales, precision=precision)
    if isinstance(op, ConvOp):
        return IntConvOp(kernel_shape=op.kernel_shape, stride=op.stride,
                         padding=op.padding, **common)
    return IntDenseOp(**common)


@dataclass
class ActivationOp(PlanOp):
    """Elementwise activation (``relu`` / ``tanh`` / ``sigmoid`` / ``softmax``)."""

    kind: str = "relu"

    leading_dims_safe = True

    def run(self, x: np.ndarray) -> np.ndarray:
        if self.kind == "relu":
            return np.maximum(x, 0.0)
        if self.kind == "tanh":
            return np.tanh(x)
        if self.kind == "sigmoid":
            return 1.0 / (1.0 + np.exp(-x))
        if self.kind == "softmax":
            shifted = x - x.max(axis=-1, keepdims=True)
            exponentials = np.exp(shifted)
            return exponentials / exponentials.sum(axis=-1, keepdims=True)
        raise ValueError(f"unknown activation kind {self.kind!r}")


@dataclass
class BatchNormOp(PlanOp):
    """Frozen batch normalisation using the module's running statistics.

    ``param_shape`` re-creates the broadcast the eager layer uses in eval
    mode, expressed with *trailing* axes only so the op is agnostic to any
    leading batch/sample axes: ``(-1, 1, 1)`` for 2-D feature maps and
    ``(-1,)`` for flat features.
    """

    mean: np.ndarray = None
    var: np.ndarray = None
    gamma: np.ndarray = None
    beta: np.ndarray = None
    eps: float = 1e-5
    param_shape: Tuple[int, ...] = (-1,)

    leading_dims_safe = True
    _cast_fields = ("mean", "var", "gamma", "beta")

    def run(self, x: np.ndarray) -> np.ndarray:
        shape = self.param_shape
        mean = self.mean.reshape(shape)
        var = self.var.reshape(shape)
        normalised = (x - mean) / (var + self.eps) ** 0.5
        return normalised * self.gamma.reshape(shape) + self.beta.reshape(shape)


@dataclass
class MaxPoolOp(PlanOp):
    """Max pooling over ``(N, C, H, W)`` windows."""

    kernel: Tuple[int, int] = (2, 2)
    stride: Tuple[int, int] = (2, 2)

    def run(self, x: np.ndarray) -> np.ndarray:
        return _pool(x, self.kernel, self.stride, reducer="max")

    def infer_shape(self, *shapes: Tuple[int, ...]) -> Tuple[int, ...]:
        return _pool_shape(shapes[0], self.kernel, self.stride)


@dataclass
class AvgPoolOp(PlanOp):
    """Average pooling over ``(N, C, H, W)`` windows."""

    kernel: Tuple[int, int] = (2, 2)
    stride: Tuple[int, int] = (2, 2)

    def run(self, x: np.ndarray) -> np.ndarray:
        return _pool(x, self.kernel, self.stride, reducer="avg")

    def infer_shape(self, *shapes: Tuple[int, ...]) -> Tuple[int, ...]:
        return _pool_shape(shapes[0], self.kernel, self.stride)


@dataclass
class GlobalAvgPoolOp(PlanOp):
    """Global average pooling, reducing ``(N, C, H, W)`` to ``(N, C)``."""

    def run(self, x: np.ndarray) -> np.ndarray:
        return x.mean(axis=(2, 3))

    def infer_shape(self, *shapes: Tuple[int, ...]) -> Tuple[int, ...]:
        return (shapes[0][0],)


@dataclass
class FlattenOp(PlanOp):
    """Flatten all non-batch dimensions."""

    def run(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    def infer_shape(self, *shapes: Tuple[int, ...]) -> Tuple[int, ...]:
        size = 1
        for extent in shapes[0]:
            size *= extent
        return (size,)


@dataclass
class AddOp(PlanOp):
    """Elementwise addition of two values (residual connections)."""

    leading_dims_safe = True

    def run(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return x + y


def _pool(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    reducer: str,
) -> np.ndarray:
    """Pool by accumulating the ``kh * kw`` strided window slices in place.

    Binary ufuncs over strided views beat both a materialised window tensor
    and an axis reduction by a wide margin, and the summation order matches
    the eager ``avg_pool2d`` loop exactly.
    """
    _, _, height, width = x.shape
    out_h = conv_output_size(height, kernel[0], stride[0], 0)
    out_w = conv_output_size(width, kernel[1], stride[1], 0)
    accumulated: Optional[np.ndarray] = None
    for y in range(kernel[0]):
        for z in range(kernel[1]):
            part = x[
                :, :, y:y + stride[0] * out_h:stride[0], z:z + stride[1] * out_w:stride[1]
            ]
            if accumulated is None:
                accumulated = np.array(part, copy=True)
            elif reducer == "max":
                np.maximum(accumulated, part, out=accumulated)
            else:
                accumulated += part
    if reducer == "max":
        return accumulated
    return accumulated / (kernel[0] * kernel[1])


def _pool_shape(
    shape: Tuple[int, ...], kernel: Tuple[int, int], stride: Tuple[int, int]
) -> Tuple[int, ...]:
    channels, height, width = shape
    out_h = conv_output_size(height, kernel[0], stride[0], 0)
    out_w = conv_output_size(width, kernel[1], stride[1], 0)
    return (channels, out_h, out_w)


# ---------------------------------------------------------------------- #
# The plan itself
# ---------------------------------------------------------------------- #
@dataclass
class InferencePlan:
    """A frozen, immutable, serialisable inference program.

    ``ops`` execute in order over a flat value store; slot 0 is the network
    input and ``output`` is the slot holding the logits.  All arrays are
    plain ndarrays — executing a plan never touches the autograd engine.
    """

    ops: List[PlanOp] = field(default_factory=list)
    output: int = 0
    num_slots: int = 1
    source: str = ""
    input_shape: Optional[Tuple[int, ...]] = None
    #: Execution precision this plan was lowered to ("float64" for the
    #: compiler's output; "int8"/"int16" for :meth:`with_precision` twins).
    precision: str = "float64"

    def __post_init__(self) -> None:
        if self.input_shape is not None:
            self.input_shape = tuple(int(extent) for extent in self.input_shape)
        # Last-use index per slot, so intermediate values free eagerly.
        self._last_use: Dict[int, int] = {}
        for index, op in enumerate(self.ops):
            for slot in op.inputs:
                self._last_use[slot] = index
        self._cast_cache: Dict[str, "InferencePlan"] = {}
        self._shape_cache: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}

    @property
    def crossbar_ops(self) -> List[PlanOp]:
        """The ops backed by physical crossbar devices (variation targets)."""
        return [op for op in self.ops if getattr(op, "spec", None) is not None]

    def cast(self, dtype) -> "InferencePlan":
        """Return a twin plan whose float payload arrays are cast to ``dtype``.

        The Monte-Carlo engine executes in float32 by default (half the
        memory traffic, twice the BLAS throughput; variation noise is orders
        of magnitude larger than float32 rounding).  Which arrays move is
        explicit per op class (:attr:`PlanOp._cast_fields`): exactly the
        float weights, biases, and normalisation statistics.  Crossbar specs
        are left untouched — device sampling always happens in float64 — and
        the integer fields of a lowered plan (``q_weight``, ``scales``)
        keep their dtypes, so a cast can never double-apply or corrupt an
        integer lowering.  Twins are memoised per dtype, so sweeping many
        sigma points pays the cast once.
        """
        key = np.dtype(dtype).str
        cached = self._cast_cache.get(key)
        if cached is not None:
            return cached
        ops: List[PlanOp] = []
        for op in self.ops:
            replacements = {
                name: getattr(op, name).astype(dtype)
                for name in op._cast_fields
                if isinstance(getattr(op, name), np.ndarray)
            }
            ops.append(dataclasses.replace(op, **replacements) if replacements else op)
        twin = InferencePlan(
            ops=ops, output=self.output, num_slots=self.num_slots,
            source=self.source, input_shape=self.input_shape,
            precision=self.precision,
        )
        self._cast_cache[key] = twin
        return twin

    def with_precision(self, precision: str) -> "InferencePlan":
        """The twin of this plan lowered to one execution precision.

        ``"float64"`` returns the plan itself and ``"float32"`` the memoised
        :meth:`cast` twin.  ``"int8"`` / ``"int16"`` lower every eligible
        weight-bearing op to its integer twin (:class:`IntDenseOp` /
        :class:`IntConvOp`): the crossbar quantiser grid supplies the scale,
        :func:`~repro.runtime.intkernels.quantize_weight` verifies the
        decomposition, and ineligible ops keep their float form.  Integer
        twins are memoised, and lowering is guarded against double
        application — precision twins always derive from the float64 plan.
        """
        if precision not in PRECISIONS:
            raise ValueError(
                f"unknown precision {precision!r}; expected one of {PRECISIONS}"
            )
        if precision == self.precision:
            return self
        if self.precision != "float64":
            raise ValueError(
                f"this plan is already lowered to {self.precision!r}; derive "
                f"precision twins from the float64 plan"
            )
        if precision == "float32":
            twin = self.cast(np.float32)
            twin.precision = "float32"
            return twin
        cached = self._cast_cache.get(precision)
        if cached is not None:
            return cached
        ops: List[PlanOp] = []
        for op in self.ops:
            lowered = None
            if type(op) in (DenseOp, ConvOp):
                lowered = _lower_int_op(op, precision)
            ops.append(lowered if lowered is not None else op)
        twin = InferencePlan(
            ops=ops, output=self.output, num_slots=self.num_slots,
            source=self.source, input_shape=self.input_shape,
            precision=precision,
        )
        self._cast_cache[precision] = twin
        return twin

    def precision_stats(self) -> Dict[str, object]:
        """Integer-op accounting of this plan (JSON-ready).

        ``int_ops`` / ``float_ops`` split the weight-bearing ops by whether
        they lowered to the integer path; the batch counters report how many
        executed batches actually ran integer arithmetic versus falling back
        to float (activations that did not quantise losslessly).
        """
        int_ops = [op for op in self.ops if isinstance(op, _IntOpMixin)]
        bearing = [op for op in self.ops if isinstance(op, (DenseOp, ConvOp))]
        return {
            "precision": self.precision,
            "int_ops": len(int_ops),
            "float_ops": len(bearing) - len(int_ops),
            "int_batches": sum(op.int_batches for op in int_ops),
            "fallback_batches": sum(op.fallback_batches for op in int_ops),
        }

    @property
    def num_crossbar_layers(self) -> int:
        return len(self.crossbar_ops)

    def output_shapes(
        self, input_shape: Optional[Tuple[int, ...]] = None
    ) -> List[Tuple[int, ...]]:
        """Per-op output shapes (batch axis excluded), in program order.

        Shapes are propagated symbolically through :meth:`PlanOp.infer_shape`
        — no sample is executed — and memoised per input shape, so repeated
        lookups (hardware estimation, cache sizing) are free.  With no
        argument the shape captured at compile time is used.
        """
        if input_shape is None:
            input_shape = self.input_shape
        if input_shape is None:
            raise ValueError(
                "this plan has no compile-time input shape; pass input_shape "
                "explicitly"
            )
        key = tuple(int(extent) for extent in input_shape)
        cached = self._shape_cache.get(key)
        if cached is not None:
            return cached
        slot_shapes: Dict[int, Tuple[int, ...]] = {0: key}
        shapes: List[Tuple[int, ...]] = []
        for op in self.ops:
            shape = op.infer_shape(*(slot_shapes[slot] for slot in op.inputs))
            slot_shapes[op.output] = shape
            shapes.append(shape)
        self._shape_cache[key] = shapes
        return shapes

    def run(self, images: np.ndarray) -> np.ndarray:
        """Execute the plan on one input batch; returns the logits ndarray."""
        values: Dict[int, np.ndarray] = {0: np.asarray(images, dtype=np.float64)}
        for index, op in enumerate(self.ops):
            values[op.output] = op.run(*(values[slot] for slot in op.inputs))
            for slot in op.inputs:
                if self._last_use.get(slot) == index and slot != self.output:
                    values.pop(slot, None)
        return values[self.output]

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    _ARRAY_FIELDS = ("weight", "bias", "mean", "var", "gamma", "beta",
                     "q_weight", "scales")
    _SCALAR_FIELDS = ("kind", "kernel_shape", "stride", "padding", "kernel", "eps",
                      "param_shape", "precision")

    @staticmethod
    def _normalize_path(path) -> str:
        """Mirror ``np.savez``'s implicit ``.npz`` suffix on both ends.

        ``np.savez_compressed`` appends ``.npz`` to suffix-less paths at save
        time; without the same normalisation, ``load`` could not open a plan
        saved under the bare name.
        """
        path = str(path)
        return path if path.endswith(".npz") else path + ".npz"

    def save(self, path) -> None:
        """Serialise the plan to a single ``.npz`` deployment artifact."""
        arrays: Dict[str, np.ndarray] = {}
        header: List[dict] = []
        for index, op in enumerate(self.ops):
            entry = {
                "type": type(op).__name__,
                "inputs": list(op.inputs),
                "output": op.output,
            }
            for name in self._SCALAR_FIELDS:
                if hasattr(op, name):
                    value = getattr(op, name)
                    entry[name] = list(value) if isinstance(value, tuple) else value
            for name in self._ARRAY_FIELDS:
                value = getattr(op, name, None)
                if isinstance(value, np.ndarray):
                    key = f"op{index}.{name}"
                    arrays[key] = value
                    entry[name] = key
            spec = getattr(op, "spec", None)
            if spec is not None:
                arrays[f"op{index}.conductances"] = spec.conductances
                arrays[f"op{index}.periphery"] = spec.periphery
                entry["spec"] = {
                    "g_min": spec.g_min,
                    "g_max": spec.g_max,
                    "quantizer_bits": spec.quantizer_bits,
                }
            header.append(entry)
        meta = {
            "ops": header,
            "output": self.output,
            "num_slots": self.num_slots,
            "source": self.source,
            "input_shape": list(self.input_shape) if self.input_shape else None,
            "precision": self.precision,
        }
        np.savez_compressed(
            self._normalize_path(path),
            __plan__=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **arrays,
        )

    @classmethod
    def load(cls, path) -> "InferencePlan":
        """Load a plan previously produced by :meth:`save`."""
        op_types = {
            klass.__name__: klass
            for klass in (DenseOp, ConvOp, IntDenseOp, IntConvOp, ActivationOp,
                          BatchNormOp, MaxPoolOp, AvgPoolOp, GlobalAvgPoolOp,
                          FlattenOp, AddOp)
        }
        tuple_fields = {"kernel_shape", "stride", "padding", "kernel", "param_shape"}
        with np.load(cls._normalize_path(path)) as archive:
            meta = json.loads(bytes(archive["__plan__"]).decode())
            ops: List[PlanOp] = []
            for index, entry in enumerate(meta["ops"]):
                klass = op_types[entry.pop("type")]
                kwargs = {"inputs": tuple(entry.pop("inputs")),
                          "output": entry.pop("output")}
                spec_meta = entry.pop("spec", None)
                for name, value in entry.items():
                    if name in cls._ARRAY_FIELDS:
                        kwargs[name] = archive[value]
                    elif name in tuple_fields:
                        kwargs[name] = tuple(value)
                    else:
                        kwargs[name] = value
                if spec_meta is not None:
                    kwargs["spec"] = CrossbarSpec(
                        conductances=archive[f"op{index}.conductances"],
                        periphery=archive[f"op{index}.periphery"],
                        g_min=spec_meta["g_min"],
                        g_max=spec_meta["g_max"],
                        quantizer_bits=spec_meta["quantizer_bits"],
                    )
                ops.append(klass(**kwargs))
        input_shape = meta.get("input_shape")
        return cls(ops=ops, output=meta["output"], num_slots=meta["num_slots"],
                   source=meta.get("source", ""),
                   input_shape=tuple(input_shape) if input_shape else None,
                   precision=meta.get("precision", "float64"))
