"""Compiled inference runtime: freeze mapped models into execution plans.

This package is the compile-once / run-many counterpart of the eager layer
stack.  A trained :class:`~repro.nn.module.Module` is compiled into a frozen
:class:`~repro.runtime.plan.InferencePlan` whose weight-bearing layers hold
*realized* effective weights (periphery applied once, quantisation applied
once) and whose ops are pure NumPy — no autograd graph, no per-batch weight
rebuild.  On top of the plan, :mod:`repro.runtime.montecarlo` vectorises the
paper's Fig. 6 variation protocol: device-variation draws are sampled as one
stacked perturbation per crossbar and evaluated with batched einsum matmuls.

* :func:`compile_model` / :func:`try_compile` — lower a module tree to a plan.
* :class:`InferencePlan` — the frozen, serialisable deployment unit
  (``plan.save(path)`` / ``InferencePlan.load(path)``).
* :func:`plan_accuracy` / :func:`plan_logits` — deterministic plan execution.
* :meth:`InferencePlan.with_precision` + :mod:`repro.runtime.intkernels` —
  integer execution modes (``int8``/``int16``) that run grid-quantised
  weights through exact cache-blocked integer GEMM kernels.
* :func:`monte_carlo_accuracy` / :func:`monte_carlo_logits` — vectorized
  variation sweeps.
"""

from repro.runtime.plan import (
    ActivationOp,
    AddOp,
    AvgPoolOp,
    BatchNormOp,
    ConvOp,
    CrossbarSpec,
    DenseOp,
    FlattenOp,
    GlobalAvgPoolOp,
    InferencePlan,
    IntConvOp,
    IntDenseOp,
    MaxPoolOp,
    PlanCompilationError,
    PlanOp,
)
from repro.runtime.intkernels import (
    INT_PRECISIONS,
    PRECISIONS,
    QuantizedWeight,
    dequantize,
    int_matmul,
    quantize_activations,
    quantize_weight,
    requantize,
)
from repro.runtime.engine import (
    compile_model,
    plan_accuracy,
    plan_logits,
    register_lowering,
    trace_shapes,
    try_compile,
)
from repro.runtime.montecarlo import (
    monte_carlo_accuracy,
    monte_carlo_logits,
    run_plan_samples,
    sample_crossbar_weights,
    stacked_image_target,
)
from repro.runtime.optimize import optimize_plan
from repro.runtime.wire import WireFormatError, decode_array, encode_array

__all__ = [
    "ActivationOp",
    "AddOp",
    "AvgPoolOp",
    "BatchNormOp",
    "ConvOp",
    "CrossbarSpec",
    "DenseOp",
    "FlattenOp",
    "GlobalAvgPoolOp",
    "INT_PRECISIONS",
    "InferencePlan",
    "IntConvOp",
    "IntDenseOp",
    "MaxPoolOp",
    "PRECISIONS",
    "PlanCompilationError",
    "PlanOp",
    "QuantizedWeight",
    "compile_model",
    "dequantize",
    "int_matmul",
    "quantize_activations",
    "quantize_weight",
    "requantize",
    "plan_accuracy",
    "plan_logits",
    "register_lowering",
    "trace_shapes",
    "try_compile",
    "WireFormatError",
    "decode_array",
    "encode_array",
    "monte_carlo_accuracy",
    "monte_carlo_logits",
    "optimize_plan",
    "run_plan_samples",
    "sample_crossbar_weights",
    "stacked_image_target",
]
