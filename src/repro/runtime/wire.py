"""Wire-format helpers: ndarray payloads for the JSON serving protocol.

The HTTP front-end (:mod:`repro.serve.http`) carries arrays inside JSON
bodies.  Two interchangeable payload forms are supported:

* **Packed** — a dict ``{"shape": [...], "dtype": "float32", "data":
  "<base64>"}`` holding the raw little-endian array bytes base64-encoded.
  This is the compact form: a float32-packed image batch is ~7x smaller on
  the wire than its JSON-digit rendering, and float64 packing round-trips
  the exact bits, which is what makes HTTP responses certifiably
  bit-equivalent to in-process results.
* **Nested lists** — a plain JSON array (e.g. ``[[0.1, 0.2], ...]``), the
  zero-tooling form any client can produce by hand.  Python's JSON float
  rendering is shortest-round-trip, so float64 values survive a list round
  trip exactly too.

:func:`decode_array` accepts either form (requests), :func:`encode_array`
produces either form (responses, selected by the request's ``encoding``
field).  Malformed payloads raise :class:`WireFormatError`, a ``ValueError``
subclass the HTTP layer maps to a 400 response.
"""

from __future__ import annotations

import base64
import binascii
import math
from typing import Union

import numpy as np

#: dtypes a packed payload may declare.  The serving protocol deals in
#: float tensors (images, logits) plus the integer aggregates of ensemble
#: responses (votes, predictions); anything else is rejected up front
#: rather than round-tripped blindly.
WIRE_DTYPES = ("float32", "float64", "int32", "int64")

#: Upper bound on the number of elements a single payload may declare.
#: Guards the server against a tiny JSON body that fans out into an
#: enormous allocation (e.g. ``"shape": [2**40]`` with no data to back it).
MAX_WIRE_ELEMENTS = 1 << 27  # 128M elements, i.e. 1 GiB of float64

WirePayload = Union[dict, list]


class WireFormatError(ValueError):
    """A payload that does not describe a well-formed array."""


def encode_array(array: np.ndarray, encoding: str = "b64", dtype=None) -> WirePayload:
    """Render ``array`` as a JSON-serialisable payload.

    ``encoding`` selects the form: ``"b64"`` packs the raw bytes
    (little-endian, C order) base64-encoded alongside shape and dtype,
    ``"list"`` emits nested lists.  ``dtype`` optionally re-packs the data
    (e.g. ``"float32"`` to halve response bandwidth when exactness is not
    required); by default the array's own dtype is kept.
    """
    array = np.asarray(array)
    if dtype is not None:
        array = array.astype(dtype)
    if array.dtype.name not in WIRE_DTYPES:
        raise WireFormatError(
            f"dtype {array.dtype.name!r} is not wire-encodable; "
            f"expected one of {WIRE_DTYPES}"
        )
    if encoding == "list":
        return array.tolist()
    if encoding != "b64":
        raise WireFormatError(
            f"unknown encoding {encoding!r}; expected 'b64' or 'list'"
        )
    packed = np.ascontiguousarray(array.astype(array.dtype.newbyteorder("<")))
    return {
        "shape": list(array.shape),
        "dtype": array.dtype.name,
        "data": base64.b64encode(packed.tobytes()).decode("ascii"),
    }


def decode_array(payload: WirePayload, dtype=None) -> np.ndarray:
    """Parse a request payload (packed dict or nested lists) to an ndarray.

    ``dtype`` forces the returned dtype (lists default to float64; packed
    payloads keep their declared dtype).  Any structural problem — ragged
    lists, unknown dtype, byte count not matching the declared shape,
    invalid base64 — raises :class:`WireFormatError`.
    """
    if isinstance(payload, dict):
        array = _decode_packed(payload)
        return array.astype(dtype) if dtype is not None else array
    if isinstance(payload, (list, tuple, int, float)):
        try:
            array = np.asarray(payload, dtype=dtype or np.float64)
        except (ValueError, TypeError) as error:
            raise WireFormatError(f"payload is not a numeric array: {error}") from None
        if not np.isfinite(array).all():
            # json.dumps refuses NaN/Inf by default, so a response could
            # never carry them back; reject them on the way in as well.
            raise WireFormatError("payload contains non-finite values")
        return array
    raise WireFormatError(
        f"array payload must be a packed dict or nested lists, "
        f"not {type(payload).__name__}"
    )


def _decode_packed(payload: dict) -> np.ndarray:
    missing = {"shape", "dtype", "data"} - set(payload)
    if missing:
        raise WireFormatError(
            f"packed array payload is missing fields: {sorted(missing)}"
        )
    dtype_name = payload["dtype"]
    if dtype_name not in WIRE_DTYPES:
        raise WireFormatError(
            f"dtype {dtype_name!r} is not wire-decodable; "
            f"expected one of {WIRE_DTYPES}"
        )
    shape = payload["shape"]
    if not isinstance(shape, (list, tuple)) or not all(
        isinstance(extent, int) and extent >= 0 for extent in shape
    ):
        raise WireFormatError(f"shape must be a list of non-negative ints, got {shape!r}")
    elements = math.prod(shape)
    if elements > MAX_WIRE_ELEMENTS:
        raise WireFormatError(
            f"payload declares {elements} elements, over the "
            f"{MAX_WIRE_ELEMENTS} limit"
        )
    if not isinstance(payload["data"], str):
        raise WireFormatError("packed data must be a base64 string")
    try:
        raw = base64.b64decode(payload["data"].encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as error:
        raise WireFormatError(f"invalid base64 data: {error}") from None
    dtype = np.dtype(dtype_name).newbyteorder("<")
    if len(raw) != elements * dtype.itemsize:
        raise WireFormatError(
            f"payload holds {len(raw)} bytes but shape {tuple(shape)} of "
            f"{dtype_name} needs {elements * dtype.itemsize}"
        )
    array = np.frombuffer(raw, dtype=dtype).reshape(shape)
    if array.dtype.kind == "f" and not np.isfinite(array).all():
        raise WireFormatError("payload contains non-finite values")
    # Native byte order + writability: downstream code treats request
    # arrays as ordinary ndarrays.
    return array.astype(dtype.newbyteorder("="))
