"""Plan-level compile optimisations on the frozen ndarray IR.

Two rewrites, both exact on the frozen arrays (no approximation — only the
usual float reassociation, far below the 1e-10 equivalence budget):

* **BatchNorm folding** — a :class:`BatchNormOp` that is the sole consumer of
  a preceding :class:`DenseOp` / :class:`ConvOp` output collapses into that
  op: the affine ``y * scale + shift`` (with ``scale = gamma / sqrt(var +
  eps)`` and ``shift = beta - mean * scale``) is absorbed into the frozen
  effective weight and bias.  For crossbar-backed ops the scale is folded
  into the *periphery matrix* rather than the realized weight, so the
  Monte-Carlo engine's per-draw ``S @ finalize(M + noise)`` pipeline picks up
  the normalisation automatically and fused plans stay variation-correct.
* **Flatten collapsing** — a :class:`FlattenOp` fed by another
  :class:`FlattenOp` is the identity and is dropped.

Removed ops alias their output slot to their input's, so downstream consumers
(and the plan output) are remapped without renumbering the value store.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.runtime.plan import (
    BatchNormOp,
    ConvOp,
    DenseOp,
    FlattenOp,
    InferencePlan,
    PlanOp,
    _IntOpMixin,
)


def _fold_batchnorm(prev: PlanOp, bn: BatchNormOp) -> Optional[PlanOp]:
    """Fuse ``bn`` into the weight-bearing op producing its input, or None.

    Refuses shape-mismatched pairs (a BN whose channel count differs from
    the producer's output rows, or a broadcast layout that does not match
    the producer type) rather than guessing.
    """
    expected_shape = (-1, 1, 1) if isinstance(prev, ConvOp) else (-1,)
    if tuple(bn.param_shape) != expected_shape:
        return None
    scale = bn.gamma / (bn.var + bn.eps) ** 0.5
    if scale.ndim != 1 or scale.shape[0] != prev.weight.shape[0]:
        return None
    shift = bn.beta - bn.mean * scale
    weight = prev.weight * scale[:, None]
    bias = shift if prev.bias is None else prev.bias * scale + shift
    replacements = {"weight": weight, "bias": bias}
    spec = getattr(prev, "spec", None)
    if spec is not None:
        replacements["spec"] = dataclasses.replace(
            spec, periphery=spec.periphery * scale[:, None]
        )
    return dataclasses.replace(prev, **replacements)


def optimize_plan(
    plan: InferencePlan,
    fold_batchnorm: bool = True,
    collapse_flatten: bool = True,
) -> InferencePlan:
    """Return an optimised twin of ``plan`` (the input is left untouched).

    BatchNorm ops are folded only when their input slot has exactly one
    consumer and is not the plan output, so residual topologies that reuse a
    pre-normalisation value keep their semantics.

    Integer-lowered plans are refused: BatchNorm folding rewrites ``weight``
    in place, which would leave the op's ``q_weight``/``scales`` decomposition
    describing a weight that no longer exists.  Optimise first, then lower
    with :meth:`InferencePlan.with_precision`.
    """
    if any(isinstance(op, _IntOpMixin) for op in plan.ops):
        raise ValueError(
            "cannot optimise an integer-lowered plan; run optimize_plan "
            "before InferencePlan.with_precision"
        )
    consumers: Dict[int, int] = {}
    for op in plan.ops:
        for slot in op.inputs:
            consumers[slot] = consumers.get(slot, 0) + 1

    alias: Dict[int, int] = {}

    def resolve(slot: int) -> int:
        return alias.get(slot, slot)

    new_ops: List[PlanOp] = []
    producer: Dict[int, int] = {}  # slot -> index into new_ops
    for op in plan.ops:
        inputs = tuple(resolve(slot) for slot in op.inputs)
        if collapse_flatten and isinstance(op, FlattenOp):
            feeder = producer.get(inputs[0])
            if feeder is not None and isinstance(new_ops[feeder], FlattenOp):
                alias[op.output] = inputs[0]
                continue
        if fold_batchnorm and isinstance(op, BatchNormOp):
            feeder = producer.get(inputs[0])
            if (
                feeder is not None
                and isinstance(new_ops[feeder], (DenseOp, ConvOp))
                and consumers.get(op.inputs[0], 0) == 1
                and op.inputs[0] != plan.output
            ):
                fused = _fold_batchnorm(new_ops[feeder], op)
                if fused is not None:
                    new_ops[feeder] = fused
                    alias[op.output] = inputs[0]
                    continue
        clone = dataclasses.replace(op, inputs=inputs)
        producer[clone.output] = len(new_ops)
        new_ops.append(clone)
    return InferencePlan(
        ops=new_ops,
        output=resolve(plan.output),
        num_slots=plan.num_slots,
        source=plan.source,
        input_shape=plan.input_shape,
        precision=plan.precision,
    )
