"""Vectorized Monte-Carlo variation sweeps over a compiled plan.

The eager Fig. 6 protocol pays one full model run per variation draw: every
batch rebuilds every layer's effective weight through the autograd graph with
a fresh perturbation.  Here the variation draws are sampled *once* as a
stacked ``(num_samples, ND, NI)`` perturbation of each crossbar's raw
conductances, realized to per-sample effective weights, and the whole plan is
executed with batched einsum matmuls over the sample axis — a 25-draw sigma
point costs roughly one plan execution instead of 25 eager model runs.

Values stay *sample-invariant* (no sample axis) until they flow through the
first crossbar-backed op, so the early im2col/pooling work before the first
mapped layer is never duplicated across samples.
"""

from __future__ import annotations

import functools
import glob
import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.runtime.plan import ConvOp, InferencePlan

#: Fallback cap on ``num_samples * batch`` for convolutional plans when the
#: per-image footprint cannot be derived (no shape information available).
#: The adaptive path below replaces this with a cache-size probe.
_DEFAULT_IMAGE_TARGET = 512

#: Clamp for the adaptive target: below 64 images the batched matmuls lose
#: their BLAS advantage, far above a few thousand the working set is
#: memory-bound regardless of cache size.
_IMAGE_TARGET_BOUNDS = (64, 4096)

#: Fallback last-level cache size when the sysfs topology is unreadable
#: (containers without /sys, non-Linux hosts).
_DEFAULT_LLC_BYTES = 16 * 1024 * 1024


@functools.lru_cache(maxsize=1)
def _last_level_cache_bytes() -> int:
    """Size of the largest data/unified CPU cache, probed from sysfs."""
    best = 0
    for index_dir in glob.glob("/sys/devices/system/cpu/cpu0/cache/index*"):
        try:
            with open(os.path.join(index_dir, "type")) as handle:
                if handle.read().strip() == "Instruction":
                    continue
            with open(os.path.join(index_dir, "size")) as handle:
                text = handle.read().strip()
        except OSError:
            continue
        units = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}
        factor = units.get(text[-1:].upper())
        digits = text[:-1] if factor else text
        try:
            size = int(digits) * (factor or 1)
        except ValueError:
            continue
        best = max(best, size)
    return best or _DEFAULT_LLC_BYTES


def _per_image_bytes(plan: InferencePlan, sample_shape: Tuple[int, ...]) -> Optional[int]:
    """Peak per-image float32 working set of one plan execution.

    The dominant resident set of a stacked step is one op's input and output
    feature maps plus, for convolutions, the im2col column matrix; the peak
    over ops (bytes per image) is what must stay cache-sized when multiplied
    by ``num_samples * batch``.
    """
    try:
        shapes = plan.output_shapes(tuple(sample_shape))
    except (ValueError, TypeError):
        return None
    slot_shapes: Dict[int, Tuple[int, ...]] = {0: tuple(sample_shape)}
    peak = 0
    for op, out_shape in zip(plan.ops, shapes):
        in_shape = slot_shapes.get(op.inputs[0], ())
        elements = int(np.prod(in_shape)) + int(np.prod(out_shape))
        if isinstance(op, ConvOp):
            kernel_c, kernel_h, kernel_w = op.kernel_shape
            columns = int(np.prod(out_shape[1:])) * kernel_c * kernel_h * kernel_w
            elements += columns
        peak = max(peak, elements)
        slot_shapes[op.output] = out_shape
    return peak * 4 if peak else None


def stacked_image_target(
    plan: InferencePlan, sample_shape: Optional[Tuple[int, ...]] = None
) -> int:
    """Adaptive cap on ``num_samples * batch`` images for stacked execution.

    The target keeps the peak stacked working set (per-image footprint times
    the number of in-flight images) within roughly half the last-level
    cache, so the batched matmuls stay compute-bound instead of being tuned
    to one container's cache hierarchy.  Probed once per (plan, shape) and
    memoised on the plan; the ``REPRO_STACKED_IMAGE_TARGET`` environment
    variable overrides the probe entirely.
    """
    override = os.environ.get("REPRO_STACKED_IMAGE_TARGET")
    if override:
        return max(1, int(override))
    if sample_shape is None:
        sample_shape = plan.input_shape
    if sample_shape is None:
        return _DEFAULT_IMAGE_TARGET
    key = tuple(int(extent) for extent in sample_shape)
    cache: Dict[Tuple[int, ...], int] = plan.__dict__.setdefault(
        "_image_target_cache", {}
    )
    cached = cache.get(key)
    if cached is not None:
        return cached
    per_image = _per_image_bytes(plan, key)
    if not per_image:
        target = _DEFAULT_IMAGE_TARGET
    else:
        low, high = _IMAGE_TARGET_BOUNDS
        target = min(high, max(low, (_last_level_cache_bytes() // 2) // per_image))
    cache[key] = target
    return target


def sample_crossbar_weights(
    plan: InferencePlan,
    sigma_fraction: float,
    num_samples: int,
    rng: Optional[np.random.Generator] = None,
) -> Dict[int, np.ndarray]:
    """Draw per-sample effective weights for every crossbar-backed op.

    Returns a mapping from op index to a ``(num_samples, NO, NI)`` stack.
    Ops are visited in program order with a single generator, so a seeded
    ``rng`` makes the whole draw reproducible.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be at least 1")
    rng = rng if rng is not None else np.random.default_rng()
    sampled: Dict[int, np.ndarray] = {}
    for index, op in enumerate(plan.ops):
        spec = getattr(op, "spec", None)
        if spec is not None:
            sampled[index] = spec.sample_weights(sigma_fraction, num_samples, rng)
    return sampled


def run_plan_samples(
    plan: InferencePlan,
    images: np.ndarray,
    sampled_weights: Dict[int, np.ndarray],
    num_samples: int,
    dtype=np.float64,
) -> np.ndarray:
    """Execute the plan once per variation sample, vectorised over samples.

    Returns logits of shape ``(num_samples, batch, num_outputs)``.  With an
    empty ``sampled_weights`` (a plan without crossbar layers) the single
    deterministic result is broadcast across the sample axis.  ``plan`` and
    ``sampled_weights`` must already be in ``dtype``
    (see :meth:`InferencePlan.cast`).
    """
    values: Dict[int, np.ndarray] = {0: np.asarray(images, dtype=dtype)}
    stacked: Dict[int, bool] = {0: False}
    for index, op in enumerate(plan.ops):
        inputs = [values[slot] for slot in op.inputs]
        input_stacked = [stacked[slot] for slot in op.inputs]
        if index in sampled_weights:
            result = op.run_sampled(
                inputs[0], sampled_weights[index], input_stacked[0]
            )
            is_stacked = True
        elif not any(input_stacked):
            result = op.run(*inputs)
            is_stacked = False
        elif op.leading_dims_safe:
            # Mixed stacked/unstacked inputs broadcast naturally: a stacked
            # value carries a leading (num_samples,) axis the op ignores.
            result = op.run(*inputs)
            is_stacked = True
        else:
            # Shape-sensitive op (pool / flatten / conv-without-devices):
            # fold the sample axis into the batch, run, and unfold.
            x = inputs[0]
            folded = x.reshape((-1,) + x.shape[2:])
            result = op.run(folded)
            result = result.reshape(x.shape[:2] + result.shape[1:])
            is_stacked = True
        values[op.output] = result
        stacked[op.output] = is_stacked
        for slot in op.inputs:
            if plan._last_use.get(slot) == index and slot != plan.output:
                values.pop(slot, None)
    logits = values[plan.output]
    if not stacked[plan.output]:
        logits = np.broadcast_to(logits, (num_samples,) + logits.shape)
    return logits


def _prepare(plan: InferencePlan, sampled: Dict[int, np.ndarray], dtype):
    """Cast the plan and the sampled weight stacks to the execution dtype."""
    if np.dtype(dtype) == np.float64:
        return plan, sampled
    return plan.cast(dtype), {k: v.astype(dtype) for k, v in sampled.items()}


def _effective_batch(
    plan: InferencePlan,
    batch_size: int,
    num_samples: int,
    sample_shape: Optional[Tuple[int, ...]] = None,
) -> int:
    """Pick the per-step data batch so stacked feature maps stay cache-sized.

    Dense-only plans keep the caller's batch (bigger matmuls only help);
    convolutional plans cap ``num_samples * batch`` near the adaptive
    :func:`stacked_image_target`.
    """
    if not any(isinstance(op, ConvOp) for op in plan.ops):
        return batch_size
    target = stacked_image_target(plan, sample_shape)
    return max(1, min(batch_size, target // num_samples))


def monte_carlo_logits(
    plan: InferencePlan,
    images: np.ndarray,
    sigma_fraction: float,
    num_samples: int,
    rng: Optional[np.random.Generator] = None,
    dtype=np.float32,
) -> np.ndarray:
    """Sample variation draws and run the plan; logits ``(S, B, outputs)``."""
    sampled = sample_crossbar_weights(plan, sigma_fraction, num_samples, rng=rng)
    exec_plan, sampled = _prepare(plan, sampled, dtype)
    return run_plan_samples(exec_plan, images, sampled, num_samples, dtype=dtype)


def monte_carlo_accuracy(
    plan: InferencePlan,
    dataset: ArrayDataset,
    sigma_fraction: float,
    num_samples: int,
    rng: Optional[np.random.Generator] = None,
    batch_size: int = 64,
    dtype=np.float32,
) -> np.ndarray:
    """Per-sample classification accuracies over one set of variation draws.

    Each of the ``num_samples`` draws is held fixed while the whole dataset
    is evaluated (the paper's protocol: program once, then infer), and the
    returned array has one accuracy per draw.  Variation sampling and device
    quantisation always run in float64; plan *execution* defaults to float32,
    whose rounding is negligible next to the injected conductance noise.
    """
    sampled = sample_crossbar_weights(plan, sigma_fraction, num_samples, rng=rng)
    exec_plan, sampled = _prepare(plan, sampled, dtype)
    batch = _effective_batch(
        plan, batch_size, num_samples, sample_shape=dataset.images.shape[1:]
    )
    correct = np.zeros(num_samples, dtype=np.int64)
    for start in range(0, len(dataset), batch):
        images = dataset.images[start:start + batch]
        labels = dataset.labels[start:start + batch]
        logits = run_plan_samples(exec_plan, images, sampled, num_samples, dtype=dtype)
        correct += (logits.argmax(axis=-1) == labels).sum(axis=-1)
    return correct / len(dataset)
