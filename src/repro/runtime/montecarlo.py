"""Vectorized Monte-Carlo variation sweeps over a compiled plan.

The eager Fig. 6 protocol pays one full model run per variation draw: every
batch rebuilds every layer's effective weight through the autograd graph with
a fresh perturbation.  Here the variation draws are sampled *once* as a
stacked ``(num_samples, ND, NI)`` perturbation of each crossbar's raw
conductances, realized to per-sample effective weights, and the whole plan is
executed with batched einsum matmuls over the sample axis — a 25-draw sigma
point costs roughly one plan execution instead of 25 eager model runs.

Values stay *sample-invariant* (no sample axis) until they flow through the
first crossbar-backed op, so the early im2col/pooling work before the first
mapped layer is never duplicated across samples.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.runtime.plan import ConvOp, InferencePlan

#: Rough cap on ``num_samples * batch`` for convolutional plans: stacked
#: feature maps beyond this spill out of cache and the batched matmuls turn
#: memory-bound (measured on the LeNet Fig. 6 protocol).
_STACKED_IMAGE_TARGET = 512


def sample_crossbar_weights(
    plan: InferencePlan,
    sigma_fraction: float,
    num_samples: int,
    rng: Optional[np.random.Generator] = None,
) -> Dict[int, np.ndarray]:
    """Draw per-sample effective weights for every crossbar-backed op.

    Returns a mapping from op index to a ``(num_samples, NO, NI)`` stack.
    Ops are visited in program order with a single generator, so a seeded
    ``rng`` makes the whole draw reproducible.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be at least 1")
    rng = rng if rng is not None else np.random.default_rng()
    sampled: Dict[int, np.ndarray] = {}
    for index, op in enumerate(plan.ops):
        spec = getattr(op, "spec", None)
        if spec is not None:
            sampled[index] = spec.sample_weights(sigma_fraction, num_samples, rng)
    return sampled


def run_plan_samples(
    plan: InferencePlan,
    images: np.ndarray,
    sampled_weights: Dict[int, np.ndarray],
    num_samples: int,
    dtype=np.float64,
) -> np.ndarray:
    """Execute the plan once per variation sample, vectorised over samples.

    Returns logits of shape ``(num_samples, batch, num_outputs)``.  With an
    empty ``sampled_weights`` (a plan without crossbar layers) the single
    deterministic result is broadcast across the sample axis.  ``plan`` and
    ``sampled_weights`` must already be in ``dtype``
    (see :meth:`InferencePlan.cast`).
    """
    values: Dict[int, np.ndarray] = {0: np.asarray(images, dtype=dtype)}
    stacked: Dict[int, bool] = {0: False}
    for index, op in enumerate(plan.ops):
        inputs = [values[slot] for slot in op.inputs]
        input_stacked = [stacked[slot] for slot in op.inputs]
        if index in sampled_weights:
            result = op.run_sampled(
                inputs[0], sampled_weights[index], input_stacked[0]
            )
            is_stacked = True
        elif not any(input_stacked):
            result = op.run(*inputs)
            is_stacked = False
        elif op.leading_dims_safe:
            # Mixed stacked/unstacked inputs broadcast naturally: a stacked
            # value carries a leading (num_samples,) axis the op ignores.
            result = op.run(*inputs)
            is_stacked = True
        else:
            # Shape-sensitive op (pool / flatten / conv-without-devices):
            # fold the sample axis into the batch, run, and unfold.
            x = inputs[0]
            folded = x.reshape((-1,) + x.shape[2:])
            result = op.run(folded)
            result = result.reshape(x.shape[:2] + result.shape[1:])
            is_stacked = True
        values[op.output] = result
        stacked[op.output] = is_stacked
        for slot in op.inputs:
            if plan._last_use.get(slot) == index and slot != plan.output:
                values.pop(slot, None)
    logits = values[plan.output]
    if not stacked[plan.output]:
        logits = np.broadcast_to(logits, (num_samples,) + logits.shape)
    return logits


def _prepare(plan: InferencePlan, sampled: Dict[int, np.ndarray], dtype):
    """Cast the plan and the sampled weight stacks to the execution dtype."""
    if np.dtype(dtype) == np.float64:
        return plan, sampled
    return plan.cast(dtype), {k: v.astype(dtype) for k, v in sampled.items()}


def _effective_batch(plan: InferencePlan, batch_size: int, num_samples: int) -> int:
    """Pick the per-step data batch so stacked feature maps stay cache-sized.

    Dense-only plans keep the caller's batch (bigger matmuls only help);
    convolutional plans cap ``num_samples * batch`` near
    ``_STACKED_IMAGE_TARGET`` images.
    """
    if not any(isinstance(op, ConvOp) for op in plan.ops):
        return batch_size
    return max(1, min(batch_size, _STACKED_IMAGE_TARGET // num_samples))


def monte_carlo_logits(
    plan: InferencePlan,
    images: np.ndarray,
    sigma_fraction: float,
    num_samples: int,
    rng: Optional[np.random.Generator] = None,
    dtype=np.float32,
) -> np.ndarray:
    """Sample variation draws and run the plan; logits ``(S, B, outputs)``."""
    sampled = sample_crossbar_weights(plan, sigma_fraction, num_samples, rng=rng)
    exec_plan, sampled = _prepare(plan, sampled, dtype)
    return run_plan_samples(exec_plan, images, sampled, num_samples, dtype=dtype)


def monte_carlo_accuracy(
    plan: InferencePlan,
    dataset: ArrayDataset,
    sigma_fraction: float,
    num_samples: int,
    rng: Optional[np.random.Generator] = None,
    batch_size: int = 64,
    dtype=np.float32,
) -> np.ndarray:
    """Per-sample classification accuracies over one set of variation draws.

    Each of the ``num_samples`` draws is held fixed while the whole dataset
    is evaluated (the paper's protocol: program once, then infer), and the
    returned array has one accuracy per draw.  Variation sampling and device
    quantisation always run in float64; plan *execution* defaults to float32,
    whose rounding is negligible next to the injected conductance noise.
    """
    sampled = sample_crossbar_weights(plan, sigma_fraction, num_samples, rng=rng)
    exec_plan, sampled = _prepare(plan, sampled, dtype)
    batch = _effective_batch(plan, batch_size, num_samples)
    correct = np.zeros(num_samples, dtype=np.int64)
    for start in range(0, len(dataset), batch):
        images = dataset.images[start:start + batch]
        labels = dataset.labels[start:start + batch]
        logits = run_plan_samples(exec_plan, images, sampled, num_samples, dtype=dtype)
        correct += (logits.argmax(axis=-1) == labels).sum(axis=-1)
    return correct / len(dataset)
