"""Compile a trained module tree into a frozen :class:`InferencePlan`.

The compiler walks the module tree with a per-type lowering registry: every
supported layer appends one or more pure-NumPy ops to the plan and returns
the value slot holding its output.  Mapped layers are *frozen* — the raw
crossbar conductances are snapshotted into a :class:`CrossbarSpec` and the
effective signed weight ``W = S @ quantize(M)`` is realized once, so the
compiled program never rebuilds it.

Modules with no registered lowering raise :class:`PlanCompilationError`;
callers that want graceful degradation (the evaluation helpers in
:mod:`repro.train.evaluate`) use :func:`try_compile` and fall back to the
eager reference path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.mapping.mapped_layer import MappedConv2d, MappedLinear, _MappedBase
from repro.nn.activations import ReLU, Sigmoid, Softmax, Tanh
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
)
from repro.nn.module import Module, Sequential
from repro.runtime.plan import (
    ActivationOp,
    AddOp,
    AvgPoolOp,
    BatchNormOp,
    ConvOp,
    CrossbarSpec,
    DenseOp,
    FlattenOp,
    GlobalAvgPoolOp,
    InferencePlan,
    MaxPoolOp,
    PlanCompilationError,
)


class _PlanBuilder:
    """Accumulates ops and allocates value slots during lowering."""

    def __init__(self) -> None:
        self.ops = []
        self.num_slots = 1  # slot 0 is the network input

    def emit(self, op, *input_slots: int) -> int:
        op.inputs = tuple(input_slots)
        op.output = self.num_slots
        self.num_slots += 1
        self.ops.append(op)
        return op.output

    def lower(self, module: Module, slot: int) -> int:
        for klass in type(module).__mro__:
            handler = _LOWERINGS.get(klass)
            if handler is not None:
                return handler(self, module, slot)
        raise PlanCompilationError(
            f"no lowering registered for {type(module).__name__}; "
            "register one with repro.runtime.engine.register_lowering"
        )


_LOWERINGS: Dict[Type[Module], Callable[[_PlanBuilder, Module, int], int]] = {}


def register_lowering(module_type: Type[Module]):
    """Register the lowering handler for a module class (decorator).

    The handler receives ``(builder, module, input_slot)`` and must return
    the slot index holding the module's output.  Handlers are resolved along
    the module's MRO, so registering a base class covers its subclasses.
    """

    def decorator(handler):
        _LOWERINGS[module_type] = handler
        return handler

    return decorator


def compile_model(
    model: Module,
    name: str = "",
    input_shape: Optional[Tuple[int, ...]] = None,
    optimize: bool = False,
    precision: str = "float64",
) -> InferencePlan:
    """Freeze ``model`` into an :class:`InferencePlan`.

    The plan always captures *inference* semantics: batch normalisation uses
    the running statistics, dropout is a no-op, and mapped layers realize
    their effective weight with quantisation applied and no variation —
    variation is re-applied per draw by the Monte-Carlo engine.  Any active
    per-layer variation state on the eager model is ignored.

    ``input_shape`` is the per-sample shape the plan records for shape
    queries (:meth:`InferencePlan.output_shapes`, :func:`trace_shapes`);
    when omitted it is taken from the model's ``example_input_shape``
    attribute, which every built-in model exposes.  ``optimize=True``
    additionally runs the plan-level optimiser
    (:func:`repro.runtime.optimize.optimize_plan`): exact BatchNorm folding
    and flatten collapsing.

    ``precision`` selects the execution mode of the frozen plan
    (:meth:`InferencePlan.with_precision`): ``"float64"`` (the default),
    ``"float32"``, or the integer modes ``"int8"``/``"int16"`` that run
    grid-quantised weight ops through the exact blocked integer kernels.
    Integer lowering runs *after* optimisation (the optimiser refuses
    already-lowered plans); weights the lowering cannot certify as exactly
    representable — e.g. BatchNorm-folded ones — keep the float path.
    """
    builder = _PlanBuilder()
    output = builder.lower(model, 0)
    if input_shape is None:
        input_shape = getattr(model, "example_input_shape", None)
    plan = InferencePlan(
        ops=builder.ops,
        output=output,
        num_slots=builder.num_slots,
        source=name or type(model).__name__,
        input_shape=tuple(input_shape) if input_shape is not None else None,
    )
    if plan.input_shape is not None:
        # Populate the shape cache eagerly; a geometry mismatch between the
        # advertised input shape and the frozen ops surfaces at compile time
        # as a compilation error (so try_compile's eager fallback applies).
        try:
            plan.output_shapes()
        except (ValueError, TypeError) as error:
            raise PlanCompilationError(
                f"model advertises example_input_shape {plan.input_shape} "
                f"but its frozen ops reject it: {error}"
            ) from None
    if optimize:
        from repro.runtime.optimize import optimize_plan

        plan = optimize_plan(plan)
    if precision != "float64":
        plan = plan.with_precision(precision)
    return plan


def try_compile(model: Module, name: str = "") -> Optional[InferencePlan]:
    """Compile ``model`` or return ``None`` if any module is unsupported."""
    try:
        return compile_model(model, name=name)
    except PlanCompilationError:
        return None


# ---------------------------------------------------------------------- #
# Plan-level evaluation helpers
# ---------------------------------------------------------------------- #
def plan_logits(
    plan: InferencePlan, images: np.ndarray, batch_size: Optional[int] = None
) -> np.ndarray:
    """Run a plan over ``images``, optionally in batches, returning logits."""
    images = np.asarray(images, dtype=np.float64)
    if batch_size is None or len(images) <= batch_size:
        return plan.run(images)
    pieces = [
        plan.run(images[start:start + batch_size])
        for start in range(0, len(images), batch_size)
    ]
    return np.concatenate(pieces, axis=0)


def plan_accuracy(
    plan: InferencePlan, dataset: ArrayDataset, batch_size: int = 64
) -> float:
    """Classification accuracy of a compiled plan on ``dataset``."""
    from repro.nn.losses import count_correct

    correct = 0
    for start in range(0, len(dataset), batch_size):
        logits = plan.run(dataset.images[start:start + batch_size])
        labels = dataset.labels[start:start + batch_size]
        correct += count_correct(logits, labels)
    return correct / len(dataset)


def trace_shapes(
    plan: InferencePlan, input_shape: Optional[Tuple[int, ...]] = None
) -> List[Tuple[object, Tuple[int, ...]]]:
    """Per-op ``(op, output_shape)`` pairs (batch dimension excluded).

    Shapes come from the plan's symbolic shape propagation
    (:meth:`InferencePlan.output_shapes`) — no sample is executed.  With no
    ``input_shape`` the shape recorded at compile time is used; passing one
    overrides it (e.g. to estimate hardware cost at a different resolution).
    """
    return list(zip(plan.ops, plan.output_shapes(input_shape)))


# ---------------------------------------------------------------------- #
# Leaf lowerings
# ---------------------------------------------------------------------- #
def _freeze_mapped(layer: _MappedBase) -> Tuple[np.ndarray, Optional[np.ndarray], CrossbarSpec]:
    spec = CrossbarSpec(
        conductances=layer.conductances(),
        periphery=layer.periphery.matrix.copy(),
        g_min=layer.conductance_range.g_min,
        g_max=layer.conductance_range.g_max,
        quantizer_bits=layer.quantizer.bits if layer.quantizer is not None else None,
    )
    bias = layer.bias.data.copy() if layer.bias is not None else None
    return spec.base_weight(), bias, spec


@register_lowering(MappedLinear)
def _lower_mapped_linear(builder, layer, slot):
    weight, bias, spec = _freeze_mapped(layer)
    return builder.emit(DenseOp(weight=weight, bias=bias, spec=spec), slot)


@register_lowering(Linear)
def _lower_linear(builder, layer, slot):
    bias = layer.bias.data.copy() if layer.bias is not None else None
    return builder.emit(DenseOp(weight=layer.weight.data.copy(), bias=bias), slot)


@register_lowering(MappedConv2d)
def _lower_mapped_conv(builder, layer, slot):
    weight, bias, spec = _freeze_mapped(layer)
    op = ConvOp(
        weight=weight,
        bias=bias,
        kernel_shape=(layer.in_channels, layer.kernel_size, layer.kernel_size),
        stride=(layer.stride, layer.stride),
        padding=(layer.padding, layer.padding),
        spec=spec,
    )
    return builder.emit(op, slot)


@register_lowering(Conv2d)
def _lower_conv(builder, layer, slot):
    bias = layer.bias.data.copy() if layer.bias is not None else None
    op = ConvOp(
        weight=layer.weight.data.reshape(layer.out_channels, -1).copy(),
        bias=bias,
        kernel_shape=(layer.in_channels, layer.kernel_size, layer.kernel_size),
        stride=(layer.stride, layer.stride),
        padding=(layer.padding, layer.padding),
    )
    return builder.emit(op, slot)


@register_lowering(ReLU)
def _lower_relu(builder, layer, slot):
    return builder.emit(ActivationOp(kind="relu"), slot)


@register_lowering(Tanh)
def _lower_tanh(builder, layer, slot):
    return builder.emit(ActivationOp(kind="tanh"), slot)


@register_lowering(Sigmoid)
def _lower_sigmoid(builder, layer, slot):
    return builder.emit(ActivationOp(kind="sigmoid"), slot)


@register_lowering(Softmax)
def _lower_softmax(builder, layer, slot):
    # Axis 1 equals the last axis only for 2-D inputs, which the compiler
    # cannot know; accept the unambiguous case only (others fall back to
    # eager execution via try_compile).
    if layer.axis != -1:
        raise PlanCompilationError("only last-axis softmax (axis=-1) can be compiled")
    return builder.emit(ActivationOp(kind="softmax"), slot)


@register_lowering(BatchNorm2d)
def _lower_batchnorm2d(builder, layer, slot):
    op = BatchNormOp(
        mean=layer.running_mean.copy(),
        var=layer.running_var.copy(),
        gamma=layer.gamma.data.copy(),
        beta=layer.beta.data.copy(),
        eps=layer.eps,
        param_shape=(-1, 1, 1),
    )
    return builder.emit(op, slot)


@register_lowering(BatchNorm1d)
def _lower_batchnorm1d(builder, layer, slot):
    op = BatchNormOp(
        mean=layer.running_mean.copy(),
        var=layer.running_var.copy(),
        gamma=layer.gamma.data.copy(),
        beta=layer.beta.data.copy(),
        eps=layer.eps,
        param_shape=(-1,),
    )
    return builder.emit(op, slot)


@register_lowering(MaxPool2d)
def _lower_maxpool(builder, layer, slot):
    kernel = (layer.kernel_size, layer.kernel_size)
    stride = (layer.stride, layer.stride) if layer.stride is not None else kernel
    return builder.emit(MaxPoolOp(kernel=kernel, stride=stride), slot)


@register_lowering(AvgPool2d)
def _lower_avgpool(builder, layer, slot):
    kernel = (layer.kernel_size, layer.kernel_size)
    stride = (layer.stride, layer.stride) if layer.stride is not None else kernel
    return builder.emit(AvgPoolOp(kernel=kernel, stride=stride), slot)


@register_lowering(GlobalAvgPool2d)
def _lower_global_avgpool(builder, layer, slot):
    return builder.emit(GlobalAvgPoolOp(), slot)


@register_lowering(Flatten)
def _lower_flatten(builder, layer, slot):
    return builder.emit(FlattenOp(), slot)


@register_lowering(Identity)
def _lower_identity(builder, layer, slot):
    return slot


@register_lowering(Dropout)
def _lower_dropout(builder, layer, slot):
    return slot  # inference-time dropout is the identity


# ---------------------------------------------------------------------- #
# Container / model lowerings
# ---------------------------------------------------------------------- #
@register_lowering(Sequential)
def _lower_sequential(builder, module, slot):
    for layer in module:
        slot = builder.lower(layer, slot)
    return slot


def _register_model_lowerings() -> None:
    """Register handlers for the model classes; imported lazily to avoid cycles."""
    from repro.models.lenet import LeNet
    from repro.models.mlp import MLP
    from repro.models.resnet import BasicBlock, ResNet20
    from repro.models.vgg import VGG9

    @register_lowering(MLP)
    def _lower_mlp(builder, model, slot):
        return builder.lower(model.network, slot)

    @register_lowering(LeNet)
    def _lower_lenet(builder, model, slot):
        return builder.lower(model.classifier, builder.lower(model.features, slot))

    @register_lowering(VGG9)
    def _lower_vgg9(builder, model, slot):
        return builder.lower(model.classifier, builder.lower(model.features, slot))

    @register_lowering(BasicBlock)
    def _lower_basic_block(builder, block, slot):
        shortcut = builder.lower(block.shortcut, slot)
        main = builder.lower(block.conv1, slot)
        main = builder.lower(block.bn1, main)
        main = builder.lower(block.relu, main)
        main = builder.lower(block.conv2, main)
        main = builder.lower(block.bn2, main)
        merged = builder.emit(AddOp(), main, shortcut)
        return builder.emit(ActivationOp(kind="relu"), merged)

    @register_lowering(ResNet20)
    def _lower_resnet(builder, model, slot):
        slot = builder.lower(model.stem, slot)
        slot = builder.lower(model.stages, slot)
        slot = builder.lower(model.head, slot)
        return builder.lower(model.fc, slot)


_register_model_lowerings()
