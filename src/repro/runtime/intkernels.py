"""Exact integer GEMM kernels and the quantisation helpers around them.

The paper's premise is low-bit crossbar inference, yet the float plans pay
full-precision BLAS for weights that live on a ``2^B``-level conductance
grid.  This module provides the integer execution primitives behind
:meth:`~repro.runtime.plan.InferencePlan.with_precision`:

* :func:`int_matmul` — a cache-blocked integer GEMM.  Integer-valued
  operands are multiplied block-by-block in float32 (int8 mode) or float64
  (int16 mode) so each block rides the BLAS fast path, and the per-block
  partial sums are accumulated exactly in int32 (widened to int64 when the
  worst-case magnitude could wrap).  The block length is chosen so every
  partial sum stays below the mantissa bound of the compute dtype
  (``2^24`` for float32, ``2^53`` for float64), which makes the result
  **bit-identical** to a pure int64 matmul — the float32 trip is a speed
  trick, not an approximation.
* :func:`quantize_weight` — decompose a frozen effective weight into
  ``scales[o] * q[o, :]`` with integer ``q`` and per-output-channel scales.
  The candidate step comes from the crossbar quantiser grid; signed
  periphery rows (one ``+1`` and one ``-1`` per output) cancel the
  ``g_min`` offset, so grid-quantised weights decompose with residuals at
  float64 rounding level.  A per-row gcd refinement folds common factors
  into the scale, shrinking the stored integers.  Anything off-grid or out
  of range returns ``None`` — the caller keeps the float op.
* :func:`quantize_activations` — per-batch lossless quantisation with a
  power-of-two scale.  Scaling by ``2^-e`` is exact in binary floating
  point, so "every scaled value is an integer" is decidable exactly; when
  it does not hold, the caller falls back to the float path for that batch
  and the serving guarantees (argmax bit-identity, 1e-6 logits agreement)
  hold unconditionally.
* :func:`requantize` — saturating rescale between integer domains,
  flagging whether the conversion was exact.
* :func:`dequantize` — fold the activation scale, the per-channel weight
  scales, and the bias back into float64 logits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

#: Execution precisions a plan can be lowered to.
PRECISIONS = ("float64", "float32", "int8", "int16")
#: The subset that routes through the integer kernels.
INT_PRECISIONS = ("int8", "int16")

#: Storage dtype, symmetric magnitude bound, and BLAS compute dtype per
#: integer precision.  The int8 mode computes in float32 (about twice the
#: dgemm throughput); the int16 mode needs float64 products so it trades
#: speed for the wider exact grid (e.g. 8-bit devices whose integer
#: weights exceed the int8 range).
_INT_SPECS = {
    "int8": (np.int8, 127, np.float32),
    "int16": (np.int16, 32767, np.float64),
}

#: Largest contiguous integer range of each compute dtype: every partial
#: sum inside one GEMM block must stay strictly within it to be exact.
_EXACT_SUM_BOUND = {np.float32: 2 ** 24, np.float64: 2 ** 53}

#: Residual tolerance of the weight decomposition, relative to the weight
#: magnitude.  Grid-quantised weights reconstruct to ~1e-15; anything
#: genuinely off-grid misses by a sizeable fraction of the quantiser step.
_RESIDUAL_RTOL = 1e-9


def activation_qmax(precision: str) -> int:
    """Symmetric activation magnitude bound of one integer precision."""
    return _INT_SPECS[_check_precision(precision)][1]


def compute_dtype(precision: str):
    """The BLAS compute dtype of one integer precision (float32 for int8).

    Integer values up to the precision's magnitude bound are exactly
    representable in it, so operands stored in this dtype enter the blocked
    kernel without any per-call conversion.
    """
    return _INT_SPECS[_check_precision(precision)][2]


def _check_precision(precision: str) -> str:
    if precision not in _INT_SPECS:
        raise ValueError(
            f"unknown integer precision {precision!r}; expected one of "
            f"{INT_PRECISIONS}"
        )
    return precision


# ---------------------------------------------------------------------- #
# The blocked kernel
# ---------------------------------------------------------------------- #
def int_matmul(
    qa: np.ndarray,
    qb: np.ndarray,
    precision: str = "int8",
    a_max: Optional[int] = None,
    b_max: Optional[int] = None,
    block: Optional[int] = None,
) -> np.ndarray:
    """Exact ``acc[m, n] = sum_k qa[m, k] * qb[n, k]`` over integer values.

    ``qa`` (``(M, K)``) and ``qb`` (``(N, K)``) hold integer *values* in
    any integer or float dtype.  ``a_max`` / ``b_max`` bound the operand
    magnitudes (computed when omitted; callers that know their bounds —
    the plan ops do — skip the extra pass).  ``block`` caps the K-block
    length; it is always clamped to the exactness bound, so passing a
    large block can never trade correctness for speed.

    Returns int32 when the worst-case accumulator fits, otherwise int64 —
    max-magnitude operands over a long reduction widen instead of
    wrapping.
    """
    _check_precision(precision)
    qa = np.asarray(qa)
    qb = np.asarray(qb)
    if qa.ndim != 2 or qb.ndim != 2 or qa.shape[1] != qb.shape[1]:
        raise ValueError(
            f"expected (M, K) x (N, K) operands, got {qa.shape} x {qb.shape}"
        )
    rows, depth = qa.shape
    cols = qb.shape[0]
    if a_max is None:
        a_max = int(np.abs(qa).max(initial=0))
    if b_max is None:
        b_max = int(np.abs(qb).max(initial=0))
    product = max(1, int(a_max) * int(b_max))
    out_dtype = np.int64 if depth * product >= 2 ** 31 else np.int32
    if depth == 0:
        return np.zeros((rows, cols), dtype=out_dtype)
    compute = _INT_SPECS[precision][2]
    if product > _EXACT_SUM_BOUND[np.float32]:
        # A single product already exceeds float32's exact range; float64
        # keeps every block exact (products here are far below 2^53).
        compute = np.float64
    exact_block = max(1, _EXACT_SUM_BOUND[compute] // product)
    step = min(depth, exact_block if block is None else min(block, exact_block))

    def partial(start: int) -> np.ndarray:
        left = np.asarray(qa[:, start:start + step], dtype=compute)
        right = np.asarray(qb[:, start:start + step], dtype=compute)
        return left @ right.T

    # Every partial sum is an exact integer in `compute`, so the unsafe
    # casts back to the integer accumulator truncate nothing.  Seeding the
    # accumulator from the first block (instead of zeros + add) matters:
    # operands short enough for a single block — every LeNet-sized layer —
    # skip the accumulation pass entirely.
    acc = partial(0).astype(out_dtype)
    for start in range(step, depth, step):
        np.add(acc, partial(start), out=acc, casting="unsafe")
    return acc


# ---------------------------------------------------------------------- #
# Weight decomposition
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class QuantizedWeight:
    """One weight matrix decomposed as ``scales[o] * q[o, :]``."""

    q: np.ndarray        # (N, K) int8/int16 integers
    scales: np.ndarray   # (N,) float64 per-output-channel scales
    precision: str


def quantize_weight(
    weight: np.ndarray, step: float, precision: str
) -> Optional[QuantizedWeight]:
    """Decompose ``weight`` over the grid ``step`` or return ``None``.

    The decomposition is validated, not assumed: ``rint(weight / step)``
    must reconstruct the weight to float64 rounding level
    (:data:`_RESIDUAL_RTOL`, relative to the weight magnitude), every
    integer must fit the precision's storage range, and a per-row gcd is
    folded into the per-output-channel scale first so rows with a common
    factor store the smallest possible integers.
    """
    _check_precision(precision)
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2 or weight.size == 0:
        return None
    if not (np.isfinite(step) and step > 0) or not np.isfinite(weight).all():
        return None
    candidate = np.rint(weight / step)
    magnitude = float(np.abs(weight).max(initial=0.0))
    residual = float(np.abs(candidate * step - weight).max(initial=0.0))
    if residual > _RESIDUAL_RTOL * max(1.0, magnitude):
        return None
    integers = candidate.astype(np.int64)
    if not np.array_equal(integers, candidate):
        return None  # beyond int64: certainly not a grid weight
    row_gcd = np.gcd.reduce(np.abs(integers), axis=1)
    row_gcd[row_gcd == 0] = 1  # all-zero rows keep the plain step
    integers //= row_gcd[:, None]
    dtype, qmax, _ = _INT_SPECS[precision]
    if int(np.abs(integers).max(initial=0)) > qmax:
        return None
    return QuantizedWeight(
        q=integers.astype(dtype),
        scales=step * row_gcd.astype(np.float64),
        precision=precision,
    )


# ---------------------------------------------------------------------- #
# Activation quantisation
# ---------------------------------------------------------------------- #
def quantize_activations(
    x: np.ndarray, precision: str
) -> Tuple[np.ndarray, float, bool]:
    """Losslessly quantise a batch → ``(q, scale, exact)``.

    Two scale candidates are tried, cheapest first:

    1. The smallest power of two with ``max|x| / scale <= qmax``.
       Multiplying by ``2^-e`` is exact in binary floating point, so
       "every scaled value is an integer" is decidable with one exact
       comparison; inputs on dyadic grids (``k * 2^-j``) always pass.
    2. The batch's own arithmetic grid: its smallest nonzero magnitude.
       This catches non-dyadic multiplicative grids — data constructed as
       ``k * s`` for an arbitrary float step ``s`` (scaled sensor counts,
       lookup tables) whenever the unit cell appears in the batch — and is
       verified by exact reconstruction (``q * scale == x`` bit-for-bit)
       plus an explicit range check, so a false positive is impossible.
       Grids built by *division* (``k / 255``) generally do not reconstruct
       bit-for-bit in binary floating point and correctly fall back.

    ``exact=False`` means the caller must take the float path for this
    batch.  On success ``q`` is returned as integer values carried in the
    precision's BLAS compute dtype (:func:`compute_dtype` — exact for every
    value within the magnitude bound), so the blocked kernel consumes it
    with no further conversion pass.
    """
    _, qmax, compute = _INT_SPECS[_check_precision(precision)]
    x = np.asarray(x, dtype=np.float64)
    magnitudes = np.abs(x)
    amax = float(magnitudes.max()) if x.size else 0.0
    if amax == 0.0:
        return np.zeros(x.shape, dtype=compute), 1.0, True
    if not math.isfinite(amax):
        return x, 1.0, False
    # frexp gives amax = m * 2^p with m in [0.5, 1); start near the right
    # exponent and settle exactly (each loop runs at most twice).
    exponent = math.frexp(amax)[1] - qmax.bit_length()
    while math.ldexp(qmax, exponent) < amax:
        exponent += 1
    while math.ldexp(qmax, exponent - 1) >= amax:
        exponent -= 1
    scale = math.ldexp(1.0, exponent)
    scaled = x * math.ldexp(1.0, -exponent)
    q = np.rint(scaled)
    if np.array_equal(q, scaled):
        return np.asarray(q, dtype=compute), scale, True
    grid = float(np.min(np.where(magnitudes == 0.0, np.inf, magnitudes)))
    if grid > 0.0 and math.isfinite(grid) and amax <= qmax * grid:
        q_grid = np.rint(x / grid)
        if (
            float(np.abs(q_grid).max(initial=0.0)) <= qmax
            and np.array_equal(q_grid * grid, x)
        ):
            return np.asarray(q_grid, dtype=compute), grid, True
    return q, scale, False


# ---------------------------------------------------------------------- #
# Rescaling
# ---------------------------------------------------------------------- #
def dequantize(
    acc: np.ndarray,
    activation_scale: float,
    scales: np.ndarray,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Integer accumulators back to float64: ``acc * (s_x * s_w[o]) + b``."""
    out = acc * (activation_scale * np.asarray(scales, dtype=np.float64))
    if bias is not None:
        out += bias  # `out` is freshly allocated float64; add in place
    return out


def requantize(
    acc: np.ndarray, scale_in: float, scale_out: float, precision: str
) -> Tuple[np.ndarray, bool]:
    """Saturating rescale of integer accumulators between scale domains.

    Returns ``(q, exact)`` where ``q = clip(rint(acc * scale_in /
    scale_out))`` in the target precision's range.  ``exact`` is True iff
    neither rounding nor saturation changed a value — only then may a
    chained integer consumer use ``q`` without breaking bit-identity;
    otherwise the caller must dequantise and take the float path.
    """
    _, qmax, _ = _INT_SPECS[_check_precision(precision)]
    if not (scale_in > 0 and scale_out > 0):
        raise ValueError("requantize scales must be positive")
    scaled = np.asarray(acc, dtype=np.float64) * (scale_in / scale_out)
    q = np.clip(np.rint(scaled), -qmax, qmax)
    return q, bool(np.array_equal(q, scaled))
