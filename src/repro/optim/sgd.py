"""Stochastic gradient descent with constraint- and device-aware updates."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class SGD:
    """Vanilla SGD, optionally with momentum and weight decay.

    Two extensions support crossbar-mapped training:

    * Parameters whose ``constraint`` attribute is ``"non_negative"`` are
      projected back onto the non-negative orthant after every step (projected
      gradient descent), which keeps the crossbar matrix ``M`` physically
      realisable as conductances.
    * An optional ``update_rule`` (see :mod:`repro.xbar.device`) transforms the
      raw gradient step into the weight change a real synapse device would
      realise, modelling non-linear potentiation/depression.  The rule is
      applied only to constrained (crossbar-resident) parameters; peripheral
      parameters such as batch-norm scales keep the ideal update.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        update_rule=None,
    ):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("SGD received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if momentum < 0:
            raise ValueError("momentum must be non-negative")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.update_rule = update_rule
        self._velocities: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one optimisation step using the accumulated gradients."""
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocities[index]
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + gradient
                self._velocities[index] = velocity
                gradient = velocity

            ideal_delta = -self.lr * gradient
            is_device_parameter = getattr(parameter, "constraint", None) == "non_negative"
            if self.update_rule is not None and is_device_parameter:
                realised_delta = self.update_rule.apply(parameter.data, ideal_delta)
            else:
                realised_delta = ideal_delta
            parameter.data += realised_delta

            if is_device_parameter:
                np.maximum(parameter.data, 0.0, out=parameter.data)

    def set_lr(self, lr: float) -> None:
        """Set the learning rate (used by schedulers)."""
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
