"""Learning-rate schedules for the training loops."""

from __future__ import annotations

import math


class _Schedule:
    """Base class: schedules are called once per epoch with the epoch index."""

    def __init__(self, optimizer, base_lr: float = None):
        self.optimizer = optimizer
        self.base_lr = base_lr if base_lr is not None else optimizer.lr

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self, epoch: int) -> float:
        """Update the optimiser's learning rate for ``epoch`` and return it."""
        lr = self.lr_at(epoch)
        self.optimizer.set_lr(lr)
        return lr


class ConstantLR(_Schedule):
    """Keep the learning rate fixed."""

    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(_Schedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer, step_size: int, gamma: float = 0.1, base_lr: float = None):
        super().__init__(optimizer, base_lr)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(_Schedule):
    """Cosine decay from the base learning rate to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer, total_epochs: int, min_lr: float = 1e-4, base_lr: float = None):
        super().__init__(optimizer, base_lr)
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        if min_lr <= 0:
            raise ValueError("min_lr must be positive")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        cosine = 0.5 * (1 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
