"""Optimisers and learning-rate schedules.

The paper trains all networks with vanilla stochastic gradient descent; this
package provides SGD (optionally with momentum and weight decay) plus the
constraint-aware and device-aware update rules that the crossbar-mapped
training loop needs (non-negativity projection and non-linear weight update).
"""

from repro.optim.sgd import SGD
from repro.optim.schedules import ConstantLR, StepLR, CosineAnnealingLR

__all__ = ["SGD", "ConstantLR", "StepLR", "CosineAnnealingLR"]
