"""NeuroSim-style system-level cost model for crossbar accelerators.

The paper's Table I compares area, read energy and read delay of a crossbar
accelerator training a two-layer MLP under the three mapping approaches,
generated with the NeuroSim+ tool at a 14 nm technology node.  NeuroSim is
not available offline, so this package implements a first-order analytical
model of the same structure:

* per-tile crossbar area from the cell size and tile dimensions,
* periphery area/energy/delay from analytical models of the ADCs,
  column multiplexers, word-line decoder, bit-line/select-line switch
  matrices, adders and shift registers,
* read energy from row/column wire capacitances (which grow with the column
  count a mapping requires), ADC conversions, and inter-tile routing,
* read delay from the column multiplexing factor and ADC conversion time.

The absolute numbers are first-order estimates; the quantity of interest is
the *ratio* between mappings (BC and ACM identical, DE paying for twice the
columns), which is what the paper's Table I reports.
"""

from repro.hardware.params import TechnologyParams, DEFAULT_14NM
from repro.hardware.components import (
    ADC,
    ColumnMux,
    WordlineDecoder,
    SwitchMatrix,
    AdderTree,
    ShiftRegister,
    RowDriver,
    ComponentCost,
)
from repro.hardware.accelerator import (
    LayerSpec,
    MappedLayerHardware,
    AcceleratorEstimate,
    estimate_layer,
    estimate_network,
    mlp_layer_specs,
    layer_specs_from_model,
)
from repro.hardware.report import SystemReport, table1_report

__all__ = [
    "TechnologyParams",
    "DEFAULT_14NM",
    "ADC",
    "ColumnMux",
    "WordlineDecoder",
    "SwitchMatrix",
    "AdderTree",
    "ShiftRegister",
    "RowDriver",
    "ComponentCost",
    "LayerSpec",
    "MappedLayerHardware",
    "AcceleratorEstimate",
    "estimate_layer",
    "estimate_network",
    "mlp_layer_specs",
    "layer_specs_from_model",
    "SystemReport",
    "table1_report",
]
