"""Technology and circuit parameters for the hardware cost model.

The defaults approximate a 14 nm logic node with 1T1R-style synapse cells,
in line with the configuration the paper used for NeuroSim+.  Parameters are
deliberately kept explicit and documented so studies can re-run the Table I
comparison for other nodes or cell types.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TechnologyParams:
    """Process and circuit constants used throughout the cost model.

    Attributes
    ----------
    feature_size_nm:
        Lithographic feature size ``F`` in nanometres.
    cell_area_f2:
        Synapse cell area in units of ``F^2`` (1T1R cells are tens of F^2).
    cell_height_f, cell_width_f:
        Cell pitch in units of ``F`` along the word-line and bit-line
        directions; wire lengths scale with these.
    wire_cap_ff_per_um:
        Interconnect capacitance per micrometre, in femtofarads.
    wire_res_ohm_per_um:
        Interconnect resistance per micrometre, in ohms.
    read_voltage:
        Read voltage applied to the rows during an MVM.
    read_pulse_ns:
        Duration of one analog read pulse.
    adc_bits:
        Resolution of the column ADCs.
    adc_energy_pj:
        Energy per ADC conversion, in picojoules.
    adc_area_um2:
        Area of one ADC, in square micrometres.
    adc_conversion_ns:
        Time for one ADC conversion.
    mux_ratio:
        Number of columns sharing one ADC through the column multiplexer.
    logic_gate_area_um2:
        Area of a minimum-size logic gate (used for adders, registers,
        decoders) at this node.
    logic_gate_energy_fj:
        Switching energy of a minimum-size logic gate, in femtojoules.
    logic_delay_ns:
        Delay of a minimum-size logic gate.
    dac_energy_fj:
        Energy to drive one row with the input DAC/driver for one pulse
        (excluding the wire charging energy, which is computed from the wire
        capacitance).
    htree_energy_factor:
        Multiplier applied to inter-tile routing energy per unit of routed
        distance (captures the H-tree/bus between tiles; grows with the
        number of tiles a layer occupies).
    """

    feature_size_nm: float = 14.0
    cell_area_f2: float = 112.0
    cell_height_f: float = 10.0
    cell_width_f: float = 10.0
    wire_cap_ff_per_um: float = 0.2
    wire_res_ohm_per_um: float = 2.0
    read_voltage: float = 0.5
    read_pulse_ns: float = 5.0
    adc_bits: int = 5
    adc_energy_pj: float = 0.3
    adc_area_um2: float = 15.0
    adc_conversion_ns: float = 1.0
    mux_ratio: int = 64
    logic_gate_area_um2: float = 0.01
    logic_gate_energy_fj: float = 0.08
    logic_delay_ns: float = 0.01
    dac_energy_fj: float = 20.0
    htree_energy_factor: float = 2.0

    @property
    def feature_size_um(self) -> float:
        """Feature size in micrometres."""
        return self.feature_size_nm * 1e-3

    @property
    def cell_area_um2(self) -> float:
        """Synapse cell area in square micrometres."""
        return self.cell_area_f2 * self.feature_size_um ** 2

    @property
    def cell_height_um(self) -> float:
        """Cell pitch along a column (bit-line direction), in micrometres."""
        return self.cell_height_f * self.feature_size_um

    @property
    def cell_width_um(self) -> float:
        """Cell pitch along a row (word-line direction), in micrometres."""
        return self.cell_width_f * self.feature_size_um


#: Default parameter set approximating the paper's 14 nm NeuroSim+ configuration.
DEFAULT_14NM = TechnologyParams()
