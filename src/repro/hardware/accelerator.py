"""Accelerator-level area / read-energy / read-delay estimation.

The estimator maps each weight-bearing layer of a network, under a chosen
mapping (BC / DE / ACM), onto fixed-size crossbar tiles and sums the tile and
periphery costs.  Read energy and delay are reported for one training epoch
(forward MVMs over the training set), which is the quantity the paper's
Table I reports for a two-layer MLP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.hardware.components import (
    ADC,
    AdderTree,
    ColumnMux,
    ComponentCost,
    RowDriver,
    ShiftRegister,
    SwitchMatrix,
    WordlineDecoder,
    ZERO_COST,
)
from repro.hardware.params import DEFAULT_14NM, TechnologyParams
from repro.mapping.periphery import periphery_for


@dataclass(frozen=True)
class LayerSpec:
    """Logical description of one weight-bearing layer to be mapped.

    Attributes
    ----------
    name:
        Identifier used in reports.
    num_inputs:
        Fan-in of the layer (crossbar rows).
    num_outputs:
        Logical signed outputs of the layer.
    mvm_count_per_sample:
        Number of MVMs this layer performs per input sample (1 for dense
        layers; for convolutions this is the number of output pixels, since
        the kernel matrix is applied once per output location).
    """

    name: str
    num_inputs: int
    num_outputs: int
    mvm_count_per_sample: int = 1

    def __post_init__(self) -> None:
        if self.num_inputs <= 0 or self.num_outputs <= 0:
            raise ValueError("layer dimensions must be positive")
        if self.mvm_count_per_sample <= 0:
            raise ValueError("mvm_count_per_sample must be positive")


@dataclass
class MappedLayerHardware:
    """Hardware cost breakdown of one layer under one mapping."""

    spec: LayerSpec
    mapping: str
    physical_columns: int
    num_tiles: int
    xbar_area_um2: float
    periphery_area_um2: float
    read_energy_pj_per_mvm: float
    read_delay_ns: float

    @property
    def total_area_um2(self) -> float:
        return self.xbar_area_um2 + self.periphery_area_um2


@dataclass
class AcceleratorEstimate:
    """Aggregated accelerator estimate for a whole network under one mapping."""

    mapping: str
    layers: List[MappedLayerHardware] = field(default_factory=list)
    training_samples: int = 0

    @property
    def xbar_area_um2(self) -> float:
        return sum(layer.xbar_area_um2 for layer in self.layers)

    @property
    def periphery_area_um2(self) -> float:
        return sum(layer.periphery_area_um2 for layer in self.layers)

    @property
    def total_area_um2(self) -> float:
        return self.xbar_area_um2 + self.periphery_area_um2

    @property
    def read_energy_uj_per_epoch(self) -> float:
        """Read energy for one epoch of forward passes, in microjoules."""
        total_pj = sum(
            layer.read_energy_pj_per_mvm * layer.spec.mvm_count_per_sample
            for layer in self.layers
        ) * self.training_samples
        return total_pj * 1e-6

    @property
    def read_delay_ms_per_epoch(self) -> float:
        """Read latency for one epoch of forward passes, in milliseconds.

        Layers execute sequentially (layer pipelining is not modelled), so
        per-sample delay is the sum of layer delays.
        """
        per_sample_ns = sum(
            layer.read_delay_ns * layer.spec.mvm_count_per_sample for layer in self.layers
        )
        return per_sample_ns * self.training_samples * 1e-6


def _physical_columns(mapping: str, num_outputs: int) -> int:
    """Number of crossbar columns the mapping needs for ``num_outputs``."""
    return periphery_for(mapping, num_outputs).num_columns


def estimate_layer(
    spec: LayerSpec,
    mapping: str,
    params: TechnologyParams = DEFAULT_14NM,
    tile_rows: int = 128,
    tile_cols: int = 128,
) -> MappedLayerHardware:
    """Estimate the hardware cost of one layer under one mapping.

    The layer's crossbar matrix has ``spec.num_inputs`` rows and
    ``physical_columns(mapping)`` columns and is partitioned over
    ``tile_rows x tile_cols`` tiles.  Every tile carries its own periphery
    (drivers, decoder, switch matrices, mux, ADC); digital adders combine the
    partial sums of row-tiles and implement the periphery-matrix subtraction.
    """
    physical_columns = _physical_columns(mapping, spec.num_outputs)
    rows = spec.num_inputs
    cols = physical_columns

    row_tiles = math.ceil(rows / tile_rows)
    col_tiles = math.ceil(cols / tile_cols)
    num_tiles = row_tiles * col_tiles

    adc = ADC(params)
    mux = ColumnMux(params)
    decoder = WordlineDecoder(params)
    switches = SwitchMatrix(params)
    adders = AdderTree(params)
    shift = ShiftRegister(params)
    driver = RowDriver(params)

    xbar_area = rows * cols * params.cell_area_um2

    periphery = ZERO_COST
    read_energy_pj = 0.0
    # Row tiles operate in parallel (their partial sums are merged digitally);
    # column tiles share the layer's output adders and registers, so their ADC
    # phases serialise — this is the extra multiplexing delay the paper
    # attributes to DE's additional columns.
    column_tile_delays = [0.0] * col_tiles

    for tile_index in range(num_tiles):
        tile_row_index = tile_index // col_tiles
        tile_col_index = tile_index % col_tiles
        tile_r = min(tile_rows, rows - tile_row_index * tile_rows)
        tile_c = min(tile_cols, cols - tile_col_index * tile_cols)

        tile_cost = (
            adc.cost(tile_c)
            + mux.cost(tile_c)
            + decoder.cost(tile_r)
            + switches.cost(tile_r)
            + switches.cost(tile_c)
            + driver.cost(tile_r, tile_c)
        )
        periphery = periphery + ComponentCost(tile_cost.area_um2, 0.0, 0.0)
        read_energy_pj += tile_cost.energy_pj
        column_tile_delays[tile_col_index] = max(
            column_tile_delays[tile_col_index], tile_cost.delay_ns
        )

    read_delay_ns = sum(column_tile_delays)

    # Digital combination: one subtraction per logical output plus partial-sum
    # accumulation across row tiles, and shift registers for bit-serial input.
    combine = adders.cost(spec.num_outputs, num_operands=1 + row_tiles)
    registers = shift.cost(spec.num_outputs)
    periphery = periphery + ComponentCost(
        combine.area_um2 + registers.area_um2, 0.0, 0.0
    )
    read_energy_pj += combine.energy_pj + registers.energy_pj
    read_delay_ns += combine.delay_ns + registers.delay_ns

    # Inter-tile routing (H-tree): energy grows superlinearly with tile count
    # because partial results travel further as the array footprint grows.
    if num_tiles > 1:
        routing_distance_um = math.sqrt(num_tiles) * tile_cols * params.cell_width_um
        routing_cap_ff = routing_distance_um * params.wire_cap_ff_per_um
        routing_energy = (
            params.htree_energy_factor
            * num_tiles
            * routing_cap_ff
            * params.read_voltage ** 2
            * 1e-3
        )
        read_energy_pj += routing_energy

    return MappedLayerHardware(
        spec=spec,
        mapping=mapping.lower(),
        physical_columns=physical_columns,
        num_tiles=num_tiles,
        xbar_area_um2=xbar_area,
        periphery_area_um2=periphery.area_um2,
        read_energy_pj_per_mvm=read_energy_pj,
        read_delay_ns=read_delay_ns,
    )


def estimate_network(
    specs: Sequence[LayerSpec],
    mapping: str,
    training_samples: int = 1000,
    params: TechnologyParams = DEFAULT_14NM,
    tile_rows: int = 128,
    tile_cols: int = 128,
) -> AcceleratorEstimate:
    """Estimate accelerator cost for a whole network under one mapping."""
    estimate = AcceleratorEstimate(mapping=mapping.lower(), training_samples=training_samples)
    for spec in specs:
        estimate.layers.append(
            estimate_layer(spec, mapping, params=params, tile_rows=tile_rows, tile_cols=tile_cols)
        )
    return estimate


def mlp_layer_specs(
    input_size: int = 400, hidden_size: int = 100, num_classes: int = 10
) -> List[LayerSpec]:
    """Layer specs of the two-layer MLP used in the paper's Table I.

    Defaults follow the NeuroSim MLP example the paper builds on: a
    400-100-10 network (20x20 cropped MNIST digits).
    """
    return [
        LayerSpec("fc1", num_inputs=input_size, num_outputs=hidden_size),
        LayerSpec("fc2", num_inputs=hidden_size, num_outputs=num_classes),
    ]


def layer_specs_from_plan(plan, input_shape=None) -> List[LayerSpec]:
    """Derive :class:`LayerSpec` entries from a compiled inference plan.

    A frozen plan knows every weight-bearing op and — via its cached symbolic
    shape propagation — the exact number of output pixels of each
    convolution, so the hardware estimate uses real per-layer MVM counts
    instead of the geometry guesses :func:`layer_specs_from_model` falls back
    to.  ``input_shape`` (one sample, e.g. ``(1, 16, 16)``) is only needed
    for plans compiled without a recorded input shape, or to estimate at a
    different resolution.
    """
    from repro.runtime.engine import trace_shapes
    from repro.runtime.plan import ConvOp, DenseOp

    specs: List[LayerSpec] = []
    for index, (op, shape) in enumerate(trace_shapes(plan, input_shape)):
        if isinstance(op, DenseOp):
            specs.append(
                LayerSpec(
                    name=f"dense{index}",
                    num_inputs=op.weight.shape[1],
                    num_outputs=op.weight.shape[0],
                )
            )
        elif isinstance(op, ConvOp):
            output_pixels = int(shape[1] * shape[2])  # (C_out, H_out, W_out)
            specs.append(
                LayerSpec(
                    name=f"conv{index}",
                    num_inputs=op.weight.shape[1],
                    num_outputs=op.weight.shape[0],
                    mvm_count_per_sample=output_pixels,
                )
            )
    return specs


def layer_specs_from_model(model) -> List[LayerSpec]:
    """Extract :class:`LayerSpec` entries from a model built with this library.

    Both baseline and mapped layers are recognised; convolutional layers
    contribute one MVM per output spatial location, approximated from the
    layer geometry assuming the input spatial size is carried on the module
    (set by the model factories via ``expected_input_size`` when available).
    """
    from repro.mapping.mapped_layer import MappedConv2d, MappedLinear
    from repro.nn.layers import Conv2d, Linear

    specs: List[LayerSpec] = []
    for index, module in enumerate(model.modules()):
        if isinstance(module, (Linear, MappedLinear)):
            specs.append(
                LayerSpec(
                    name=f"linear{index}",
                    num_inputs=module.in_features,
                    num_outputs=module.out_features,
                )
            )
        elif isinstance(module, (Conv2d, MappedConv2d)):
            fan_in = module.in_channels * module.kernel_size ** 2
            output_pixels = getattr(module, "expected_output_pixels", 64)
            specs.append(
                LayerSpec(
                    name=f"conv{index}",
                    num_inputs=fan_in,
                    num_outputs=module.out_channels,
                    mvm_count_per_sample=output_pixels,
                )
            )
    return specs
