"""Analytical models of the crossbar peripheral circuit components.

Each component exposes area (um^2), energy per use (pJ), and delay (ns)
through a common :class:`ComponentCost` result.  The models are first-order:
they capture how cost scales with the number of rows/columns a mapping
requires, which is what drives the differences between BC, ACM and DE in the
paper's Table I.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.params import TechnologyParams, DEFAULT_14NM


@dataclass(frozen=True)
class ComponentCost:
    """Aggregate cost of one component instance.

    Attributes
    ----------
    area_um2:
        Layout area in square micrometres.
    energy_pj:
        Energy per invocation (one MVM read unless stated otherwise) in
        picojoules.
    delay_ns:
        Latency contribution per invocation in nanoseconds.
    """

    area_um2: float
    energy_pj: float
    delay_ns: float

    def __add__(self, other: "ComponentCost") -> "ComponentCost":
        return ComponentCost(
            area_um2=self.area_um2 + other.area_um2,
            energy_pj=self.energy_pj + other.energy_pj,
            delay_ns=self.delay_ns + other.delay_ns,
        )

    def scaled(self, area: float = 1.0, energy: float = 1.0, delay: float = 1.0) -> "ComponentCost":
        """Return a copy with each field multiplied by the given factor."""
        return ComponentCost(
            area_um2=self.area_um2 * area,
            energy_pj=self.energy_pj * energy,
            delay_ns=self.delay_ns * delay,
        )


ZERO_COST = ComponentCost(0.0, 0.0, 0.0)


class ADC:
    """Column analog-to-digital converter (shared across ``mux_ratio`` columns)."""

    def __init__(self, params: TechnologyParams = DEFAULT_14NM):
        self.params = params

    def cost(self, num_columns: int) -> ComponentCost:
        """Cost of digitising every column of a tile once.

        ``ceil(num_columns / mux_ratio)`` ADCs are instantiated; each performs
        its share of sequential conversions per MVM, so the conversion phase
        lasts ``ceil(num_columns / num_adcs)`` conversion times.
        """
        if num_columns <= 0:
            raise ValueError("num_columns must be positive")
        params = self.params
        num_adcs = math.ceil(num_columns / params.mux_ratio)
        conversions_per_adc = math.ceil(num_columns / num_adcs)
        return ComponentCost(
            area_um2=num_adcs * params.adc_area_um2,
            energy_pj=num_columns * params.adc_energy_pj,
            delay_ns=conversions_per_adc * params.adc_conversion_ns,
        )


class ColumnMux:
    """Analog column multiplexer in front of each shared ADC."""

    def __init__(self, params: TechnologyParams = DEFAULT_14NM):
        self.params = params

    def cost(self, num_columns: int) -> ComponentCost:
        if num_columns <= 0:
            raise ValueError("num_columns must be positive")
        params = self.params
        # One transmission gate per column plus select logic.
        gates = num_columns * 2
        return ComponentCost(
            area_um2=gates * params.logic_gate_area_um2,
            energy_pj=gates * params.logic_gate_energy_fj * 1e-3,
            delay_ns=params.logic_delay_ns * math.ceil(math.log2(max(params.mux_ratio, 2))),
        )


class WordlineDecoder:
    """Word-line (row) decoder activating the tile rows."""

    def __init__(self, params: TechnologyParams = DEFAULT_14NM):
        self.params = params

    def cost(self, num_rows: int) -> ComponentCost:
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        params = self.params
        address_bits = max(1, math.ceil(math.log2(num_rows)))
        gates = num_rows * address_bits
        return ComponentCost(
            area_um2=gates * params.logic_gate_area_um2,
            energy_pj=gates * params.logic_gate_energy_fj * 1e-3,
            delay_ns=address_bits * params.logic_delay_ns,
        )


class SwitchMatrix:
    """Bit-line / select-line switch matrix connecting drivers to the array."""

    def __init__(self, params: TechnologyParams = DEFAULT_14NM):
        self.params = params

    def cost(self, num_lines: int) -> ComponentCost:
        if num_lines <= 0:
            raise ValueError("num_lines must be positive")
        params = self.params
        gates = num_lines * 4
        return ComponentCost(
            area_um2=gates * params.logic_gate_area_um2,
            energy_pj=gates * params.logic_gate_energy_fj * 1e-3,
            delay_ns=params.logic_delay_ns,
        )


class AdderTree:
    """Digital adders combining column outputs through the periphery matrix.

    Every mapping in the paper performs one subtraction per logical output
    (this is the "operational overhead" that is identical for BC, DE and
    ACM); the adder tree also accumulates partial sums across row-tiles.
    """

    def __init__(self, params: TechnologyParams = DEFAULT_14NM):
        self.params = params

    def cost(self, num_outputs: int, operand_bits: int = 16, num_operands: int = 2) -> ComponentCost:
        if num_outputs <= 0:
            raise ValueError("num_outputs must be positive")
        params = self.params
        adders = num_outputs * max(1, num_operands - 1)
        gates_per_adder = operand_bits * 6
        gates = adders * gates_per_adder
        return ComponentCost(
            area_um2=gates * params.logic_gate_area_um2,
            energy_pj=gates * params.logic_gate_energy_fj * 1e-3,
            delay_ns=math.ceil(math.log2(max(num_operands, 2))) * operand_bits * params.logic_delay_ns,
        )


class ShiftRegister:
    """Shift-and-add registers handling bit-serial input streaming."""

    def __init__(self, params: TechnologyParams = DEFAULT_14NM):
        self.params = params

    def cost(self, num_outputs: int, register_bits: int = 16) -> ComponentCost:
        if num_outputs <= 0:
            raise ValueError("num_outputs must be positive")
        params = self.params
        gates = num_outputs * register_bits * 8
        return ComponentCost(
            area_um2=gates * params.logic_gate_area_um2,
            energy_pj=gates * params.logic_gate_energy_fj * 1e-3,
            delay_ns=params.logic_delay_ns,
        )


class RowDriver:
    """Row (word-line) drivers that place the input voltages on the array.

    The energy to charge a row wire grows with the wire length, i.e. with the
    number of columns in the tile — this is the mechanism the paper cites for
    DE's higher read energy ("longer wires for rows of the XBar array").
    """

    def __init__(self, params: TechnologyParams = DEFAULT_14NM):
        self.params = params

    def row_wire_cap_ff(self, num_columns: int) -> float:
        """Capacitance of one row wire spanning ``num_columns`` cells, in fF."""
        length_um = num_columns * self.params.cell_width_um
        return length_um * self.params.wire_cap_ff_per_um

    def cost(self, num_rows: int, num_columns: int) -> ComponentCost:
        if num_rows <= 0 or num_columns <= 0:
            raise ValueError("tile dimensions must be positive")
        params = self.params
        wire_cap_ff = self.row_wire_cap_ff(num_columns)
        # E = C * V^2 per row per read pulse (fF * V^2 -> fJ -> pJ).
        wire_energy_pj = num_rows * wire_cap_ff * params.read_voltage ** 2 * 1e-3
        driver_energy_pj = num_rows * params.dac_energy_fj * 1e-3
        # RC settling of the row wire.
        wire_res = num_columns * params.cell_width_um * params.wire_res_ohm_per_um
        settle_ns = 5.0 * wire_res * wire_cap_ff * 1e-6  # 5 RC, fF*ohm = 1e-6 ns
        driver_area = num_rows * 4 * params.logic_gate_area_um2
        return ComponentCost(
            area_um2=driver_area,
            energy_pj=wire_energy_pj + driver_energy_pj,
            delay_ns=params.read_pulse_ns + settle_ns,
        )
