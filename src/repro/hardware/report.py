"""Table I style reporting of the system-level comparison."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.hardware.accelerator import (
    AcceleratorEstimate,
    LayerSpec,
    estimate_network,
    mlp_layer_specs,
)
from repro.hardware.params import DEFAULT_14NM, TechnologyParams


@dataclass
class SystemReport:
    """System-level comparison of the three mappings for one network.

    Attributes
    ----------
    estimates:
        Per-mapping accelerator estimates, keyed by mapping name.
    """

    estimates: Dict[str, AcceleratorEstimate] = field(default_factory=dict)

    #: Row labels in the order used by the paper's Table I.
    ROW_LABELS = (
        "XBar Area (um^2)",
        "Periphery Area (um^2)",
        "Read Energy (uJ)",
        "Read Delay (ms)",
    )

    def row(self, label: str) -> Dict[str, float]:
        """Return one table row as ``{mapping: value}``."""
        extractors = {
            "XBar Area (um^2)": lambda e: e.xbar_area_um2,
            "Periphery Area (um^2)": lambda e: e.periphery_area_um2,
            "Read Energy (uJ)": lambda e: e.read_energy_uj_per_epoch,
            "Read Delay (ms)": lambda e: e.read_delay_ms_per_epoch,
        }
        if label not in extractors:
            raise KeyError(f"unknown row {label!r}")
        return {name: extractors[label](est) for name, est in self.estimates.items()}

    def ratio(self, label: str, numerator: str = "de", denominator: str = "acm") -> float:
        """Ratio of one metric between two mappings (paper reports DE / ACM)."""
        values = self.row(label)
        return values[numerator] / values[denominator]

    def as_text(self) -> str:
        """Render the comparison as an aligned text table (paper Table I layout)."""
        mappings = list(self.estimates.keys())
        header = f"{'Mapping':28s}" + "".join(f"{m.upper():>12s}" for m in mappings)
        lines = [header]
        for label in self.ROW_LABELS:
            values = self.row(label)
            lines.append(
                f"{label:28s}" + "".join(f"{values[m]:12.3f}" for m in mappings)
            )
        return "\n".join(lines)


def table1_report(
    specs: Sequence[LayerSpec] = None,
    training_samples: int = 1000,
    params: TechnologyParams = DEFAULT_14NM,
    mappings: Sequence[str] = ("bc", "de", "acm"),
    tile_rows: int = 128,
    tile_cols: int = 128,
) -> SystemReport:
    """Generate the paper's Table I for the two-layer MLP accelerator.

    Parameters
    ----------
    specs:
        Layer specifications; defaults to the two-layer MLP of the paper.
    training_samples:
        Number of training samples in one epoch (the paper reports energy and
        delay per epoch of MLP training).
    """
    layer_specs = list(specs) if specs is not None else mlp_layer_specs()
    report = SystemReport()
    for mapping in mappings:
        report.estimates[mapping] = estimate_network(
            layer_specs,
            mapping,
            training_samples=training_samples,
            params=params,
            tile_rows=tile_rows,
            tile_cols=tile_cols,
        )
    return report
