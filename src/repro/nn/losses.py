"""Loss functions and classification metrics."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer class labels.

    The forward pass accepts raw logits of shape ``(N, num_classes)`` and a
    NumPy integer array (or Tensor) of labels with shape ``(N,)``.
    """

    def forward(self, logits: Tensor, targets) -> Tensor:
        labels = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
        labels = labels.astype(int)
        if logits.ndim != 2:
            raise ValueError("CrossEntropyLoss expects (N, num_classes) logits")
        if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
            raise ValueError("labels must be a 1-D array matching the batch size")
        log_probabilities = logits.log_softmax(axis=-1)
        batch = logits.shape[0]
        picked = log_probabilities[(np.arange(batch), labels)]
        return -picked.mean()


class MSELoss(Module):
    """Mean squared error between predictions and targets."""

    def forward(self, predictions: Tensor, targets) -> Tensor:
        target_tensor = targets if isinstance(targets, Tensor) else Tensor(targets)
        difference = predictions - target_tensor
        return (difference * difference).mean()


def accuracy(logits, labels) -> float:
    """Fraction of samples whose arg-max prediction matches the label."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    truth = labels.data if isinstance(labels, Tensor) else np.asarray(labels)
    predictions = scores.argmax(axis=-1)
    return float((predictions == truth.astype(int)).mean())


def count_correct(logits, labels) -> int:
    """Number of samples whose arg-max prediction matches the label.

    Evaluation loops that accumulate correct counts across batches must use
    this rather than ``int(accuracy(...) * len(labels))``: the float mean can
    round just below an integer (e.g. ``(2/3) * 3 == 1.999...``) and the
    truncation then undercounts by one.
    """
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    truth = labels.data if isinstance(labels, Tensor) else np.asarray(labels)
    predictions = scores.argmax(axis=-1)
    return int((predictions == truth.astype(int)).sum())
