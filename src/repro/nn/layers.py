"""Standard (signed-weight) neural-network layers.

These are the *baseline* layers of the paper: they hold ordinary signed
weights.  The crossbar-mapped counterparts, which factor their weights through
a periphery matrix, live in :mod:`repro.mapping.mapped_layer`.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn import init
from repro.tensor import Tensor, functional


class Identity(Module):
    """A no-op module, handy for optional branches (e.g. residual shortcuts)."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs


class Linear(Module):
    """Fully-connected layer computing ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to add a learnable bias.
    rng:
        Random generator used for weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng), name="weight"
        )
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias: Optional[Parameter] = Parameter(
                init.uniform((out_features,), -bound, bound, rng), name="bias"
            )
        else:
            self.bias = None

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs.matmul(self.weight.T)
        if self.bias is not None:
            output = output + self.bias
        return output

    def effective_weight(self) -> np.ndarray:
        """Return the signed weight matrix actually applied to inputs."""
        return self.weight.data.copy()


class Conv2d(Module):
    """2-D convolution layer with signed weights."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng), name="weight")
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            bound = 1.0 / math.sqrt(fan_in)
            self.bias: Optional[Parameter] = Parameter(
                init.uniform((out_channels,), -bound, bound, rng), name="bias"
            )
        else:
            self.bias = None

    def forward(self, inputs: Tensor) -> Tensor:
        return functional.conv2d(
            inputs, self.weight, self.bias, stride=self.stride, padding=self.padding
        )

    def effective_weight(self) -> np.ndarray:
        """Return the signed kernel as a ``(C_out, C_in*kh*kw)`` matrix."""
        return self.weight.data.reshape(self.out_channels, -1).copy()


class BatchNorm2d(Module):
    """Batch normalisation over the channel dimension of ``(N, C, H, W)`` inputs."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones((num_features,)), name="gamma")
        self.beta = Parameter(init.zeros((num_features,)), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.ndim != 4:
            raise ValueError("BatchNorm2d expects (N, C, H, W) inputs")
        axes = (0, 2, 3)
        if self.training:
            mean = inputs.mean(axis=axes, keepdims=True)
            var = inputs.var(axis=axes, keepdims=True)
            new_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean.data.reshape(-1)
            new_var = (1 - self.momentum) * self.running_var + self.momentum * var.data.reshape(-1)
            self.update_buffer("running_mean", new_mean)
            self.update_buffer("running_var", new_var)
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        normalised = (inputs - mean) / (var + self.eps) ** 0.5
        gamma = self.gamma.reshape(1, -1, 1, 1)
        beta = self.beta.reshape(1, -1, 1, 1)
        return normalised * gamma + beta


class BatchNorm1d(Module):
    """Batch normalisation for ``(N, C)`` feature inputs."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones((num_features,)), name="gamma")
        self.beta = Parameter(init.zeros((num_features,)), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.ndim != 2:
            raise ValueError("BatchNorm1d expects (N, C) inputs")
        if self.training:
            mean = inputs.mean(axis=0, keepdims=True)
            var = inputs.var(axis=0, keepdims=True)
            new_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean.data.reshape(-1)
            new_var = (1 - self.momentum) * self.running_var + self.momentum * var.data.reshape(-1)
            self.update_buffer("running_mean", new_mean)
            self.update_buffer("running_var", new_var)
        else:
            mean = Tensor(self.running_mean.reshape(1, -1))
            var = Tensor(self.running_var.reshape(1, -1))
        normalised = (inputs - mean) / (var + self.eps) ** 0.5
        return normalised * self.gamma.reshape(1, -1) + self.beta.reshape(1, -1)


class MaxPool2d(Module):
    """Max-pooling layer."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, inputs: Tensor) -> Tensor:
        return functional.max_pool2d(inputs, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average-pooling layer."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, inputs: Tensor) -> Tensor:
        return functional.avg_pool2d(inputs, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Global average pooling, reducing ``(N, C, H, W)`` to ``(N, C)``."""

    def forward(self, inputs: Tensor) -> Tensor:
        return functional.global_avg_pool2d(inputs)


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.flatten(start_dim=1)


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, inputs: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return inputs
        keep = 1.0 - self.p
        mask = (self._rng.random(inputs.shape) < keep).astype(inputs.data.dtype) / keep
        return inputs * Tensor(mask)
