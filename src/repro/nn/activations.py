"""Activation-function modules."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor


class ReLU(Module):
    """Rectified linear unit, ``max(x, 0)``."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.tanh()


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()


class Softmax(Module):
    """Softmax along a configurable axis (defaults to the last)."""

    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.softmax(axis=self.axis)
