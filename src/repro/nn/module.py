"""Module and parameter containers for the neural-network layer system."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable parameter.

    Parameters carry an optional ``constraint`` tag (for example
    ``"non_negative"``) that optimisers and device-aware update rules can
    inspect; the mapped layers of :mod:`repro.mapping` use it to mark the
    crossbar matrix ``M`` which must stay non-negative during training.
    """

    __slots__ = ("constraint", "name")

    def __init__(self, data, constraint: Optional[str] = None, name: str = ""):
        super().__init__(data, requires_grad=True)
        self.constraint = constraint
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f", constraint={self.constraint}" if self.constraint else ""
        return f"Parameter(shape={self.shape}{tag})"


class Module:
    """Base class for all layers and models.

    Sub-modules and parameters assigned as attributes are registered
    automatically, in assignment order, which gives deterministic parameter
    iteration (important for reproducible training runs).
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that is part of the module state."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        """Replace the contents of a registered buffer."""
        if name not in self._buffers:
            raise KeyError(f"unknown buffer {name!r}")
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its children."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs depth-first."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buffer in self._buffers.items():
            yield (f"{prefix}{name}", buffer)
        for module_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{module_name}.")

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(parameter.size for parameter in self.parameters())

    # ------------------------------------------------------------------ #
    # State management
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter and buffer values (copies)."""
        state = {name: parameter.data.copy() for name, parameter in self.named_parameters()}
        for name, buffer in self.named_buffers():
            state[f"buffer:{name}"] = buffer.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load values previously produced by :meth:`state_dict`."""
        parameters = dict(self.named_parameters())
        for name, value in state.items():
            if name.startswith("buffer:"):
                continue
            if name not in parameters:
                raise KeyError(f"unknown parameter {name!r} in state dict")
            if parameters[name].shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{parameters[name].shape} vs {value.shape}"
                )
            parameters[name].data[...] = value
        buffer_owners = self._collect_buffer_owners()
        for name, value in state.items():
            if not name.startswith("buffer:"):
                continue
            buffer_name = name[len("buffer:"):]
            if buffer_name in buffer_owners:
                owner, local_name = buffer_owners[buffer_name]
                owner.update_buffer(local_name, value)
        self.invalidate_caches()

    def _collect_buffer_owners(self, prefix: str = "") -> Dict[str, Tuple["Module", str]]:
        owners: Dict[str, Tuple[Module, str]] = {}
        for name in self._buffers:
            owners[f"{prefix}{name}"] = (self, name)
        for module_name, module in self._modules.items():
            owners.update(module._collect_buffer_owners(prefix=f"{prefix}{module_name}."))
        return owners

    # ------------------------------------------------------------------ #
    # Train / eval switches
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set the module (and children) to training or evaluation mode."""
        for module in self.modules():
            module.training = mode
            module._invalidate_cache()
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def _invalidate_cache(self) -> None:
        """Drop any derived state this module caches (overridden by layers)."""

    def invalidate_caches(self) -> None:
        """Invalidate cached derived state on this module and all children.

        Called automatically on mode switches and :meth:`load_state_dict`;
        call it manually after mutating parameter data in place outside an
        optimiser step.
        """
        for module in self.modules():
            module._invalidate_cache()

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, *inputs: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, *inputs: Tensor) -> Tensor:
        return self.forward(*inputs)


class Sequential(Module):
    """A module that chains child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._layers: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._layers.append(module)

    def forward(self, inputs: Tensor) -> Tensor:
        outputs = inputs
        for layer in self._layers:
            outputs = layer(outputs)
        return outputs

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def append(self, module: Module) -> "Sequential":
        """Append a module to the chain."""
        setattr(self, f"layer{len(self._layers)}", module)
        self._layers.append(module)
        return self
