"""Neural-network building blocks on top of the autograd engine.

The module system mirrors the small subset of a deep-learning framework that
the paper's experiments need: parameter containers, dense and convolutional
layers, batch normalisation, pooling, the usual activations, and a softmax
cross-entropy loss.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    Linear,
    Conv2d,
    BatchNorm2d,
    BatchNorm1d,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool2d,
    Flatten,
    Dropout,
    Identity,
)
from repro.nn.activations import ReLU, Tanh, Sigmoid, Softmax
from repro.nn.losses import CrossEntropyLoss, MSELoss, accuracy, count_correct
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "BatchNorm1d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "CrossEntropyLoss",
    "MSELoss",
    "accuracy",
    "count_correct",
    "init",
]
