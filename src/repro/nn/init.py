"""Weight initialisation utilities.

All initialisers take an explicit ``numpy.random.Generator`` so that model
construction is fully reproducible across the paper's experiments.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np


def _fan_in_and_fan_out(shape: Sequence[int]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for dense and convolutional weight shapes."""
    if len(shape) < 2:
        raise ValueError("fan in/out requires at least a 2-D shape")
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    # Convolutional weight (C_out, C_in, kh, kw).
    receptive_field = int(np.prod(shape[2:]))
    fan_in = shape[1] * receptive_field
    fan_out = shape[0] * receptive_field
    return fan_in, fan_out


def kaiming_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation suited to ReLU networks."""
    fan_in, _ = _fan_in_and_fan_out(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialisation."""
    fan_in, _ = _fan_in_and_fan_out(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = _fan_in_and_fan_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fan_in_and_fan_out(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def uniform(shape: Sequence[int], low: float, high: float, rng: np.random.Generator) -> np.ndarray:
    """Plain uniform initialisation in ``[low, high]``."""
    return rng.uniform(low, high, size=shape)


def zeros(shape: Sequence[int]) -> np.ndarray:
    """All-zeros initialisation (used for biases)."""
    return np.zeros(shape)


def ones(shape: Sequence[int]) -> np.ndarray:
    """All-ones initialisation (used for batch-norm scales)."""
    return np.ones(shape)


def non_negative_uniform(
    shape: Sequence[int], scale: float, rng: np.random.Generator
) -> np.ndarray:
    """Uniform initialisation on ``[0, scale]``.

    Used for the crossbar matrix ``M`` of the mapped layers, which must stay
    non-negative throughout training (it represents conductances).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return rng.uniform(0.0, scale, size=shape)
