"""Consistent-hash ring with virtual nodes and replication.

The cluster's partition function.  Each worker contributes ``vnodes``
points to a ring of 64-bit hash values (SHA-256, so the layout is
deterministic across processes and interpreter runs — ``hash(str)`` is
salted per process); a key hashes to a point and is owned by the next
``count`` *distinct* workers clockwise from it.  Two properties make this
strictly better than ``hash(key) % num_workers``:

* **Replication falls out of the walk.**  ``owners(key, R)`` is an
  ordered preference list of R distinct workers.  The first entry is the
  *primary* (the classic shard); the rest are replicas a router can fail
  over to without any coordination, because every router computes the
  same list.
* **Resharding is local.**  Adding or removing one worker only moves the
  keys whose clockwise walk crosses that worker's points — an expected
  ``1/N`` of all keys (the virtual nodes keep the variance small), versus
  the near-total remap of modulo partitioning.  That is what makes a
  rolling restart or a capacity change cheap.

Pure stdlib, no cluster imports — the ring is a function of
``(num_workers, vnodes)`` and nothing else, so tests can reason about it
in isolation and any client replica can compute routes offline.
"""

from __future__ import annotations

import bisect
import hashlib
from functools import lru_cache
from typing import List, Tuple

#: Virtual nodes per worker.  64 keeps the per-worker ring share within a
#: few percent of 1/N (the spread shrinks like 1/sqrt(vnodes)) while the
#: whole ring for a 16-worker cluster is still only ~1k points.
DEFAULT_VNODES = 64

#: Default replication factor: every key served by two distinct workers
#: (capped by the worker count), so one dead shard takes nothing offline.
DEFAULT_REPLICAS = 2


def _point(text: str) -> int:
    """A deterministic 64-bit ring position for ``text``."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """The consistent-hash ring for one ``(num_workers, vnodes)`` topology.

    Immutable once built; ``owners`` does one binary search plus a short
    clockwise walk, so routing is O(log(num_workers * vnodes)).
    """

    __slots__ = ("num_workers", "vnodes", "_points", "_owner_at")

    def __init__(self, num_workers: int, vnodes: int = DEFAULT_VNODES) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.num_workers = num_workers
        self.vnodes = vnodes
        # Ties on a point (astronomically unlikely with 64-bit hashes) are
        # broken by worker index, keeping the layout fully deterministic.
        pairs = sorted(
            (_point(f"worker:{worker}:vnode:{vnode}"), worker)
            for worker in range(num_workers)
            for vnode in range(vnodes)
        )
        self._points: List[int] = [point for point, _ in pairs]
        self._owner_at: List[int] = [worker for _, worker in pairs]

    def owners(self, text: str, count: int = 1) -> Tuple[int, ...]:
        """The ordered preference list for ``text``: the first ``count``
        *distinct* workers clockwise from its ring position.

        ``count`` is clamped to ``num_workers`` — asking for more replicas
        than workers yields every worker exactly once.
        """
        count = max(1, min(count, self.num_workers))
        total = len(self._points)
        start = bisect.bisect_right(self._points, _point(text))
        found: List[int] = []
        seen = set()
        for step in range(total):
            worker = self._owner_at[(start + step) % total]
            if worker not in seen:
                seen.add(worker)
                found.append(worker)
                if len(found) == count:
                    break
        return tuple(found)

    def primary(self, text: str) -> int:
        """The classic single shard: the first owner clockwise."""
        return self.owners(text, 1)[0]


@lru_cache(maxsize=128)
def get_ring(num_workers: int, vnodes: int = DEFAULT_VNODES) -> HashRing:
    """Memoized rings — topologies repeat (every request routes through
    one), and a ring is immutable, so sharing one instance is free."""
    return HashRing(num_workers, vnodes)
