"""``python -m repro.serve`` — serve a plan directory over HTTP.

Builds its backend through the unified client layer
(:func:`repro.api.connect`): ``--workers 0`` (the default) serves the
``local:`` backend in-process, ``--workers N`` the sharded ``cluster:``
backend, and the HTTP front-end (:mod:`repro.serve.http`) exposes either
one to the network.  Remote consumers then connect with the same facade::

    client = repro.api.connect("http://host:8100", token=...)

Examples::

    # Single-process serving of every plan in ./plans on port 8100:
    python -m repro.serve --plan-dir ./plans --port 8100

    # Four serving workers behind the same endpoint (consistent-hash ring,
    # every model served by two replicas):
    python -m repro.serve --plan-dir ./plans --port 8100 --workers 4

    # Edge-hardened: bearer-token auth + 429 backpressure past depth 64:
    python -m repro.serve --plan-dir ./plans --auth-token SECRET \\
        --max-queue-depth 64 --max-concurrent-ensembles 8

    # Production posture: self-healing workers (supervised respawn with a
    # crash-loop circuit breaker) + shared-memory transport for batches
    # over 1 MiB:
    python -m repro.serve --plan-dir ./plans --workers 4 --auto-restart \\
        --shm-threshold 1048576

The process serves until interrupted (Ctrl-C), then shuts down
gracefully: in-flight HTTP requests finish, micro-batches drain, worker
processes exit.
"""

from __future__ import annotations

import argparse
import signal
import threading
from typing import List, Optional

from repro.api.connect import connect
from repro.serve.aio import AsyncPlanServer
from repro.serve.http import PlanServer

#: Set by tests (or a signal handler) to stop a running ``main`` promptly.
_stop = threading.Event()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve a directory of compiled inference plans over HTTP.",
    )
    parser.add_argument("--plan-dir", required=True,
                        help="directory of canonically named plan artifacts")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8100,
                        help="bind port; 0 picks an ephemeral port (default: 8100)")
    parser.add_argument("--workers", type=int, default=0,
                        help="serving worker processes; 0 serves in-process "
                             "(default: 0)")
    parser.add_argument("--replicas", type=int, default=2,
                        help="consistent-hash ring replication factor: each "
                             "model served by this many distinct workers, "
                             "capped by --workers; 1 restores single-owner "
                             "sharding (default: 2, cluster backend only)")
    parser.add_argument("--max-batch", default="64",
                        help="micro-batch row cap per scheduler, or 'auto' "
                             "for the adaptive probe-don't-tune cap "
                             "(default: 64)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="micro-batch coalescing window (default: 2.0)")
    parser.add_argument("--capacity", type=int, default=4,
                        help="plans kept resident per process (default: 4)")
    parser.add_argument("--max-queue-depth", type=int, default=None,
                        help="reject (HTTP 429 + Retry-After) deterministic "
                             "requests once a scheduler queue holds this many "
                             "requests (default: unlimited)")
    parser.add_argument("--max-concurrent-ensembles", type=int, default=None,
                        help="reject (HTTP 429 + Retry-After) ensemble "
                             "requests once this many are mid-flight "
                             "(default: unlimited)")
    parser.add_argument("--precision", default=None,
                        choices=("float64", "float32", "int8", "int16"),
                        help="execution precision every served plan is "
                             "lowered to; int8/int16 run grid-exact weight "
                             "ops on the integer kernels (default: float64, "
                             "serve artifacts as stored)")
    parser.add_argument("--auto-restart", action="store_true",
                        help="self-heal the cluster: respawn dead worker "
                             "processes with exponential backoff, opening a "
                             "circuit breaker after repeated crash-loops "
                             "(cluster backend only)")
    parser.add_argument("--max-restarts", type=int, default=5,
                        help="consecutive crashes of one worker before its "
                             "circuit breaker opens (default: 5)")
    parser.add_argument("--shm-threshold", type=int, default=None,
                        metavar="BYTES",
                        help="move request/response arrays of at least BYTES "
                             "over shared memory instead of the worker pipe; "
                             "negative disables (default: 65536, cluster "
                             "backend only)")
    parser.add_argument("--async", dest="async_edge", action="store_true",
                        help="serve through the asyncio edge (event-loop "
                             "accept, keep-alive connection reuse, pipelined "
                             "parsing) instead of the thread-per-connection "
                             "server; same routes and protocol")
    parser.add_argument("--keepalive-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="close idle keep-alive connections after this "
                             "long (default: 30.0, --async edge only)")
    parser.add_argument("--auth-token", default=None, metavar="TOKEN",
                        help="require 'Authorization: Bearer TOKEN' on every "
                             "route except /healthz and /metrics "
                             "(default: open)")
    parser.add_argument("--tls-cert", default=None, metavar="PEM",
                        help="serve HTTPS with this certificate chain "
                             "(requires --tls-key)")
    parser.add_argument("--tls-key", default=None, metavar="PEM",
                        help="private key for --tls-cert")
    parser.add_argument("--log-dir", default=None, metavar="DIR",
                        help="write one logfmt file per worker process "
                             "(worker-N.log) carrying every request's trace "
                             "id (cluster backend only)")
    parser.add_argument("--jobs-dir", default=None, metavar="DIR",
                        help="checkpoint study jobs (POST /v1/studies) here "
                             "so interrupted studies resume on restart "
                             "(default: in-memory only)")
    parser.add_argument("--run-for", type=float, default=None,
                        help="serve for N seconds then exit (default: forever)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-request access log")
    return parser


def build_target(args: argparse.Namespace) -> str:
    """The ``repro.api`` connect target the arguments describe."""
    scheme = "cluster" if args.workers >= 1 else "local"
    return f"{scheme}:{args.plan_dir}"


def build_backend(args: argparse.Namespace):
    """The serving backend the arguments describe (service or cluster).

    Routed through :func:`repro.api.connect` so the CLI, the examples, and
    library consumers all construct backends the exact same way.
    """
    max_batch = (
        "auto" if str(args.max_batch).strip().lower() == "auto"
        else int(args.max_batch)
    )
    options = {
        "capacity": args.capacity,
        "max_batch": max_batch,
        "max_wait_ms": args.max_wait_ms,
    }
    if args.max_queue_depth is not None:
        options["max_queue_depth"] = args.max_queue_depth
    if args.max_concurrent_ensembles is not None:
        options["max_concurrent_ensembles"] = args.max_concurrent_ensembles
    if args.precision is not None:
        options["precision"] = args.precision
    if args.workers >= 1:
        options["workers"] = args.workers
        options["replicas"] = args.replicas
        if args.auto_restart:
            options["auto_restart"] = True
            options["max_restarts"] = args.max_restarts
        if args.shm_threshold is not None:
            options["shm_threshold"] = (
                None if args.shm_threshold < 0 else args.shm_threshold
            )
        if args.log_dir is not None:
            options["log_dir"] = args.log_dir
    return connect(build_target(args), **options).backend


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        # SIGTERM (docker stop, kubectl delete, subprocess.terminate) takes
        # the same graceful-drain path as Ctrl-C and --run-for.
        signal.signal(signal.SIGTERM, lambda signum, frame: _stop.set())
    except ValueError:
        pass  # not the main thread (in-process tests drive _stop directly)
    if (args.tls_cert is None) != (args.tls_key is None):
        build_parser().error("--tls-cert and --tls-key must be given together")
    backend = build_backend(args)
    if args.async_edge:
        server = AsyncPlanServer(
            backend, host=args.host, port=args.port, verbose=not args.quiet,
            auth_token=args.auth_token,
            tls_cert=args.tls_cert, tls_key=args.tls_key,
            jobs_dir=args.jobs_dir,
            keepalive_timeout=args.keepalive_timeout,
        )
    else:
        server = PlanServer(
            backend, host=args.host, port=args.port, verbose=not args.quiet,
            auth_token=args.auth_token,
            tls_cert=args.tls_cert, tls_key=args.tls_key,
            jobs_dir=args.jobs_dir,
        )
    server.start()
    models = backend.models()
    topology = (
        f"{args.workers} worker process(es), "
        f"R={min(args.replicas, args.workers)} replication"
        if args.workers >= 1 else "in-process service"
    )
    if args.precision is not None:
        topology += f", {args.precision} execution"
    if args.async_edge:
        topology += ", asyncio edge"
    print(f"serving {len(models)} plan(s) at {server.url} ({topology})")
    for entry in models:
        shard = f"  worker {entry['worker']}" if "worker" in entry else ""
        print(f"  {entry['name']:32s} digest={entry['digest'][:12]}{shard}")
    print("endpoints: POST /v1/predict  POST /v1/predict_under_variation  "
          "POST /v1/studies  GET /v1/studies/{id}  DELETE /v1/studies/{id}  "
          "GET /v1/models  GET /v1/stats  GET /healthz  GET /metrics  "
          "GET /admin/workers  POST /admin/restart_worker  POST /admin/drain  "
          "GET /admin/rollout  POST /admin/canary  POST /admin/promote  "
          "POST /admin/rollback")
    guards = []
    if args.auth_token is not None:
        guards.append("bearer-token auth")
    if server.tls:
        guards.append("TLS")
    if args.max_queue_depth is not None:
        guards.append(f"429 backpressure past queue depth {args.max_queue_depth}")
    if args.max_concurrent_ensembles is not None:
        guards.append(f"429 backpressure past "
                      f"{args.max_concurrent_ensembles} concurrent ensemble(s)")
    if args.workers >= 1 and args.auto_restart:
        guards.append(f"self-healing workers (breaker after "
                      f"{args.max_restarts} crash-loops)")
    if guards:
        print(f"guards: {', '.join(guards)}")
    token_hint = ", token=..." if args.auth_token is not None else ""
    print(f"client: repro.api.connect('{server.url}'{token_hint})")
    try:
        _stop.wait(timeout=args.run_for)
    except KeyboardInterrupt:
        pass
    finally:
        print("shutting down (draining in-flight requests)...")
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
