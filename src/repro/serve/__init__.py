"""Plan-serving subsystem: registry, micro-batching, HTTP, and sharding.

This package is the request/response layer on top of the compiled runtime —
the step from "a trained model can be frozen into a serialisable
:class:`~repro.runtime.plan.InferencePlan`" to "a deployment serves many
such plans to concurrent clients over the network":

* :class:`PlanRegistry` (:mod:`repro.serve.registry`) — a directory of plan
  artifacts indexed by ``(model, bits, mapping)``, loaded lazily, kept
  resident in a bounded LRU cache, and addressable by content digest.
* :class:`MicroBatchScheduler` (:mod:`repro.serve.scheduler`) — dynamic
  micro-batching: concurrent requests coalesce (up to ``max_batch`` rows /
  ``max_wait_ms``) into single stacked plan executions whose rows scatter
  back onto per-request futures.
* :class:`InferenceService` (:mod:`repro.serve.service`) — the in-process
  façade: deterministic ``predict`` (bit-equivalent to the evaluation
  helpers) and seeded ``predict_under_variation`` Monte-Carlo ensembles
  whose sampled weight stacks are cached per (plan, sigma, samples, seed).
* :class:`PlanServer` (:mod:`repro.serve.http`) — the stdlib HTTP/JSON
  front-end: ``POST /v1/predict``, ``POST /v1/predict_under_variation``,
  ``GET /v1/models``, ``GET /v1/stats``, ``GET /healthz``, with arrays
  carried base64-packed or as nested lists and failures mapped to 4xx.
* :class:`AsyncPlanServer` (:mod:`repro.serve.aio`) — the event-loop
  flavour of the same edge: ``asyncio`` accept, HTTP/1.1 keep-alive with
  idle timeout, pipelined request parsing, and a bounded dispatch pool
  bridging into the blocking schedulers.  Same routes, auth, TLS, drain,
  and ``/metrics`` (both edges share one ``EdgeCore``); thousands of idle
  connections cost file descriptors, not threads.
* :class:`PlanCluster` (:mod:`repro.serve.cluster`) — cross-process
  sharding: N worker processes over one registry directory, models
  partitioned by a stable key hash (:func:`shard_index`), each worker
  running its own schedulers so independent models serve in true parallel.
  Large arrays cross the process boundary over shared memory
  (:mod:`repro.serve.shm`), and ``auto_restart=True`` makes the cluster
  self-healing: dead workers respawn with backoff behind a crash-loop
  circuit breaker.
* :func:`run_variation_study_parallel` (:mod:`repro.serve.pool`) — the
  Fig. 6 study fanned out over a process pool, one worker per independent
  (bits, mapping) training cell.
* :class:`JobManager` (:mod:`repro.serve.jobs`) — asynchronous study jobs:
  a typed sweep spec decomposed into idempotent cells, executed through
  any typed backend, checkpointed to disk after every cell
  (write-rename), and resumed after a worker or manager death with zero
  lost cells.
* Versioned rollout (:mod:`repro.serve.registry`) — ``__vN`` plan
  artifacts published alongside v1, a deterministic per-request-id canary
  split (:func:`canary_bucket`), and atomic promote/rollback without a
  restart.

``python -m repro.serve --plan-dir DIR [--workers N]`` starts the HTTP
endpoint over either backend (:mod:`repro.serve.__main__`).

Consumers should not usually code against these classes directly:
:mod:`repro.api` is the typed, transport-agnostic facade —
``repro.api.connect("local:DIR" | "http://host:port" |
"cluster:DIR?workers=N")`` returns interchangeable clients speaking the
shared request/response dataclasses, and both backends here implement its
typed entry points (``predict_request`` / ``ensemble_request``) natively.
"""

from repro.serve.registry import (
    PlanArtifactError,
    PlanEntry,
    PlanKey,
    PlanRegistry,
    RolloutEntry,
    canary_bucket,
    parse_bits,
)
from repro.serve.scheduler import (
    AUTO_MAX_BATCH,
    AdaptiveMaxBatch,
    MicroBatchScheduler,
    SchedulerStats,
)
from repro.serve.service import InferenceService, VariationPrediction
from repro.serve.http import PlanServer, RequestError
from repro.serve.aio import AsyncPlanServer
from repro.serve.cluster import PlanCluster, shard_index
from repro.serve.shm import DEFAULT_SHM_THRESHOLD, ShmRef
from repro.serve.jobs import JobManager
from repro.serve.pool import StudyCell, run_study_cell, run_variation_study_parallel

__all__ = [
    "AUTO_MAX_BATCH",
    "AdaptiveMaxBatch",
    "AsyncPlanServer",
    "DEFAULT_SHM_THRESHOLD",
    "InferenceService",
    "JobManager",
    "MicroBatchScheduler",
    "PlanArtifactError",
    "PlanCluster",
    "PlanEntry",
    "PlanKey",
    "PlanRegistry",
    "PlanServer",
    "RequestError",
    "RolloutEntry",
    "SchedulerStats",
    "ShmRef",
    "StudyCell",
    "VariationPrediction",
    "canary_bucket",
    "parse_bits",
    "run_study_cell",
    "run_variation_study_parallel",
    "shard_index",
]
