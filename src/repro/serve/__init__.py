"""Plan-serving subsystem: registry, micro-batching, and parallel studies.

This package is the request/response layer on top of the compiled runtime —
the step from "a trained model can be frozen into a serialisable
:class:`~repro.runtime.plan.InferencePlan`" to "a process serves many such
plans to concurrent clients":

* :class:`PlanRegistry` (:mod:`repro.serve.registry`) — a directory of plan
  artifacts indexed by ``(model, bits, mapping)``, loaded lazily, kept
  resident in a bounded LRU cache, and addressable by content digest.
* :class:`MicroBatchScheduler` (:mod:`repro.serve.scheduler`) — dynamic
  micro-batching: concurrent requests coalesce (up to ``max_batch`` rows /
  ``max_wait_ms``) into single stacked plan executions whose rows scatter
  back onto per-request futures.
* :class:`InferenceService` (:mod:`repro.serve.service`) — the façade:
  deterministic ``predict`` (bit-equivalent to the evaluation helpers) and
  seeded ``predict_under_variation`` Monte-Carlo ensembles with per-request
  sigma, returning mean logits and vote confidence.
* :func:`run_variation_study_parallel` (:mod:`repro.serve.pool`) — the
  Fig. 6 study fanned out over a process pool, one worker per independent
  (bits, mapping) training cell.
"""

from repro.serve.registry import PlanEntry, PlanKey, PlanRegistry
from repro.serve.scheduler import MicroBatchScheduler, SchedulerStats
from repro.serve.service import InferenceService, VariationPrediction
from repro.serve.pool import StudyCell, run_study_cell, run_variation_study_parallel

__all__ = [
    "InferenceService",
    "MicroBatchScheduler",
    "PlanEntry",
    "PlanKey",
    "PlanRegistry",
    "SchedulerStats",
    "StudyCell",
    "VariationPrediction",
    "run_study_cell",
    "run_variation_study_parallel",
]
