"""Process-pool driver for the Fig. 6 variation study.

``run_variation_study`` trains one model per (bits, mapping) cell and sweeps
device-variation sigma over it — the cells share nothing (each regenerates
its deterministic synthetic dataset and trains from its own seed), so the
study is embarrassingly parallel across cores.  This module fans the cells
out over a :class:`~concurrent.futures.ProcessPoolExecutor` and reassembles
the exact :class:`VariationStudyResult` the sequential driver produces:
training and sweep seeds are per-cell, so the parallel result is
bit-identical to the sequential one, independent of completion order.

``experiments.fig6.run_variation_study(max_workers=N)`` delegates here, so
existing callers opt in with one argument.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentScale, SCALE_FAST, dataset_for, model_for
from repro.experiments.fig6 import VariationStudyResult
from repro.train.evaluate import VariationSweepResult, variation_sweep
from repro.train.trainer import Trainer, TrainingConfig


@dataclass(frozen=True)
class StudyCell:
    """One independent unit of the study: train + sweep a single model."""

    network: str
    mapping: str
    bits: Optional[int]
    sigmas: Tuple[float, ...]
    scale: ExperimentScale
    seed: int
    use_runtime: Optional[bool]


def run_study_cell(cell: StudyCell) -> Tuple[Optional[int], str, VariationSweepResult]:
    """Train one (bits, mapping) model and sweep it (executed in a worker).

    Module-level (not nested) so it pickles across process boundaries.
    """
    train_set, test_set = dataset_for(cell.network, cell.scale)
    model = model_for(
        cell.network, cell.mapping, quantizer_bits=cell.bits,
        scale=cell.scale, seed=cell.seed,
    )
    config = TrainingConfig(
        epochs=cell.scale.epochs,
        batch_size=cell.scale.batch_size,
        lr=cell.scale.lr,
        activation_bits=8,
        seed=cell.seed,
    )
    Trainer(model, train_set, test_set, config).fit()
    sweep = variation_sweep(
        model,
        test_set,
        sigmas=list(cell.sigmas),
        num_samples=cell.scale.variation_samples,
        seed=cell.seed,
        use_runtime=cell.use_runtime,
    )
    return cell.bits, cell.mapping, sweep


def run_variation_study_parallel(
    network: str = "vgg9",
    bits: Sequence[int] = (1, 3, 4, 6),
    sigmas: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25),
    mappings: Sequence[str] = ("de", "acm", "bc"),
    scale: ExperimentScale = SCALE_FAST,
    seed: int = 1,
    use_runtime: Optional[bool] = None,
    max_workers: Optional[int] = None,
) -> VariationStudyResult:
    """Fig. 6 study with the independent (bits, mapping) cells run in parallel.

    Same signature and result as
    :func:`repro.experiments.fig6.run_variation_study`, plus ``max_workers``
    (defaults to the CPU count).  With one cell or one worker the pool is
    skipped entirely and the cells run in-process.
    """
    cells = [
        StudyCell(
            network=network, mapping=mapping, bits=precision,
            sigmas=tuple(float(s) for s in sigmas), scale=scale,
            seed=seed, use_runtime=use_runtime,
        )
        for precision in bits
        for mapping in mappings
    ]
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    max_workers = max(1, min(max_workers, len(cells)))
    if max_workers == 1 or len(cells) == 1:
        outcomes = [run_study_cell(cell) for cell in cells]
    else:
        with ProcessPoolExecutor(max_workers=max_workers) as executor:
            outcomes = list(executor.map(run_study_cell, cells))

    sweeps: Dict[Tuple[Optional[int], str], VariationSweepResult] = {
        (precision, mapping): sweep for precision, mapping, sweep in outcomes
    }
    result = VariationStudyResult(
        network=network, bits=list(bits), sigmas=[float(s) for s in sigmas]
    )
    for precision in bits:
        result.accuracy[precision] = {}
        result.sweeps[precision] = {}
        for mapping in mappings:
            sweep = sweeps[(precision, mapping)]
            result.accuracy[precision][mapping] = list(sweep.mean_accuracy)
            result.sweeps[precision][mapping] = sweep
    return result
