"""Multi-model plan registry: on-disk artifacts, lazy loading, LRU caching.

A :class:`PlanRegistry` manages a directory of ``InferencePlan.save``
artifacts as the deployment catalogue of a serving process.  Artifacts are
named canonically — ``{model}__{bits}__{mapping}.npz``, e.g.
``lenet__4b__acm.npz`` or ``vgg9__fp32__de.npz`` — so the registry can index
a directory without opening a single file; plans are deserialised only on
first use and a bounded LRU cache keeps the hottest ones resident, evicting
cold plans back to disk (reloading later is transparent).

Every artifact also has a SHA-256 *content digest*, computed lazily and
cached against the file's stat signature.  Digests give deployments an
integrity/version handle: a client can pin ``get_by_digest(digest)`` and be
served exactly the artifact it validated, independent of what key it is
published under.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.api.errors import InvalidRequest
from repro.api.types import parse_bits_token
from repro.runtime.plan import InferencePlan


class PlanArtifactError(RuntimeError):
    """An indexed artifact exists but cannot be deserialised.

    Raised (with the offending path) when a plan file is truncated,
    corrupted, or not a plan at all; the registry itself stays consistent —
    other keys keep serving and a repaired artifact loads on the next get.
    """


def _bits_token(bits: Optional[int]) -> str:
    return "fp32" if bits is None else f"{int(bits)}b"


def parse_bits(token: str) -> Optional[int]:
    """Parse a canonical bits token (``"4b"`` → 4, ``"fp32"`` → None).

    Delegates to the API layer's parser so the token grammar has exactly
    one owner; the typed error is translated back to the ``ValueError``
    this legacy surface has always raised.
    """
    try:
        return parse_bits_token(token)
    except InvalidRequest as error:
        raise ValueError(str(error)) from None


_parse_bits = parse_bits


@dataclass(frozen=True)
class PlanKey:
    """Identity of one served model: (model name, device bits, mapping)."""

    model: str
    bits: Optional[int]
    mapping: str

    def __post_init__(self) -> None:
        # Names must survive the canonical round trip: a model called
        # "a__b" (or "a_", whose trailing underscore merges with the "__"
        # separator) would serialise to a stem that parses back as a
        # different (or no) key, leaving the published artifact unreachable.
        for label, token in (("model", self.model), ("mapping", self.mapping)):
            if not isinstance(token, str) or not token:
                raise ValueError(f"{label} must be a non-empty string")
            if (
                "__" in token
                or token.startswith("_")
                or token.endswith("_")
                or "/" in token
                or "\x00" in token
            ):
                raise ValueError(
                    f"{label} {token!r} may not contain '__', start or end "
                    f"with '_', or contain '/' or NUL (it must round-trip "
                    f"through the canonical file name)"
                )
        if self.bits is not None and (
            isinstance(self.bits, bool)
            or not isinstance(self.bits, int)
            or self.bits < 1
        ):
            raise ValueError(f"bits must be a positive int or None, got {self.bits!r}")

    def canonical(self) -> str:
        """Filesystem-safe canonical stem, e.g. ``lenet__4b__acm``."""
        return f"{self.model}__{_bits_token(self.bits)}__{self.mapping}"

    @classmethod
    def parse(cls, stem: str) -> Optional["PlanKey"]:
        """Inverse of :meth:`canonical`; None for foreign file names."""
        parts = stem.split("__")
        if len(parts) != 3:
            return None
        try:
            return cls(model=parts[0], bits=_parse_bits(parts[1]), mapping=parts[2])
        except ValueError:
            return None


@dataclass
class PlanEntry:
    """One indexed artifact: its key, path, and memoised content digest."""

    key: PlanKey
    path: Path
    _digest: Optional[str] = field(default=None, repr=False)
    _stat: Optional[Tuple[int, int]] = field(default=None, repr=False)

    def digest(self) -> str:
        """SHA-256 hex digest of the artifact bytes (cached until the file
        changes, detected via its size/mtime signature)."""
        stat = self.path.stat()
        signature = (stat.st_size, stat.st_mtime_ns)
        if self._digest is None or self._stat != signature:
            self._digest = hashlib.sha256(self.path.read_bytes()).hexdigest()
            self._stat = signature
        return self._digest


class PlanRegistry:
    """Directory-backed, LRU-cached store of compiled inference plans.

    ``capacity`` bounds how many *deserialised* plans stay in memory at
    once; the on-disk catalogue is unbounded.  All methods are thread-safe,
    so one registry can back every scheduler thread of a serving process.
    """

    def __init__(self, directory, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.capacity = capacity
        self._entries: Dict[PlanKey, PlanEntry] = {}
        self._loaded: "OrderedDict[PlanKey, InferencePlan]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.refresh()

    # ------------------------------------------------------------------ #
    # Catalogue
    # ------------------------------------------------------------------ #
    def refresh(self) -> None:
        """Re-scan the directory for canonically named ``.npz`` artifacts.

        Entries whose path is unchanged are kept (not rebuilt) so their
        memoised content digests survive the re-scan — a polling caller
        (the HTTP ``/v1/models`` and ``/healthz`` handlers refresh on every
        request) must not re-hash every artifact per poll.  A replaced file
        is still detected: :meth:`PlanEntry.digest` self-invalidates on the
        file's size/mtime signature.
        """
        with self._lock:
            fresh: Dict[PlanKey, PlanEntry] = {}
            for path in sorted(self.directory.glob("*.npz")):
                key = PlanKey.parse(path.name[: -len(".npz")])
                if key is None:
                    continue
                existing = self._entries.get(key)
                if existing is not None and existing.path == path:
                    fresh[key] = existing
                else:
                    fresh[key] = PlanEntry(key=key, path=path)
            self._entries = fresh

    def keys(self) -> List[PlanKey]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._entries

    @property
    def cached_keys(self) -> List[PlanKey]:
        """Keys currently resident in the LRU cache, least-recent first."""
        with self._lock:
            return list(self._loaded)

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def publish(
        self, plan: InferencePlan, model: str, bits: Optional[int], mapping: str
    ) -> PlanEntry:
        """Save ``plan`` under its canonical name and index it (hot in LRU)."""
        key = PlanKey(model=model, bits=bits, mapping=mapping)
        path = self.directory / f"{key.canonical()}.npz"
        plan.save(path)
        with self._lock:
            entry = PlanEntry(key=key, path=path)
            self._entries[key] = entry
            self._loaded[key] = plan
            self._loaded.move_to_end(key)
            self._evict_over_capacity()
            return entry

    def publish_model(
        self,
        model_module,
        model: str,
        bits: Optional[int],
        mapping: str,
        optimize: bool = False,
    ) -> PlanEntry:
        """Compile an eager model and publish the resulting plan.

        Uses :func:`repro.train.evaluate.plan_for` — the same plan builder
        the evaluation helpers use — so a model with per-layer variation
        enabled is rejected instead of silently freezing ideal weights.
        ``optimize=True`` applies the plan-level optimiser before saving.
        """
        from repro.train.evaluate import plan_for

        plan = plan_for(model_module, use_runtime=True)
        if optimize:
            from repro.runtime.optimize import optimize_plan

            plan = optimize_plan(plan)
        return self.publish(plan, model=model, bits=bits, mapping=mapping)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, model: str, bits: Optional[int], mapping: str) -> InferencePlan:
        """The plan for ``(model, bits, mapping)``, loading it if evicted."""
        key = PlanKey(model=model, bits=bits, mapping=mapping)
        with self._lock:
            plan = self._loaded.get(key)
            if plan is not None:
                self.hits += 1
                self._loaded.move_to_end(key)
                return plan
            entry = self._entries.get(key)
            if entry is None:
                known = ", ".join(k.canonical() for k in self._entries) or "<none>"
                raise KeyError(
                    f"no plan published for {key.canonical()!r}; available: {known}"
                )
        # Deserialising reads the whole artifact; do it outside the lock so a
        # cold load of one model cannot stall cache hits on every other.
        try:
            plan = InferencePlan.load(entry.path)
        except Exception as error:
            # Truncated download, partial write, or a foreign file under a
            # canonical name: surface one typed error naming the artifact
            # instead of whatever zipfile/numpy internals happened to throw.
            raise PlanArtifactError(
                f"cannot load plan artifact {entry.path}: "
                f"{type(error).__name__}: {error}"
            ) from error
        with self._lock:
            racer = self._loaded.get(key)
            if racer is not None:
                self.hits += 1
                self._loaded.move_to_end(key)
                return racer
            self.misses += 1
            self._loaded[key] = plan
            self._evict_over_capacity()
            return plan

    def describe(self) -> List[dict]:
        """The catalogue as JSON-ready dicts (one per artifact, with digest).

        This is the payload behind the HTTP ``GET /v1/models`` listing:
        key fields, the canonical name, the content digest, and the artifact
        size.  Digests hash each file once and are then cached, so repeated
        listings are cheap.
        """
        with self._lock:
            entries = sorted(
                self._entries.values(), key=lambda entry: entry.key.canonical()
            )
        described = []
        for entry in entries:
            try:
                stat_size = entry.path.stat().st_size
                digest = entry.digest()
            except OSError:
                # Deleted out from under the index; skip rather than fail
                # the whole listing.
                continue
            described.append({
                "model": entry.key.model,
                "bits": entry.key.bits,
                "mapping": entry.key.mapping,
                "name": entry.key.canonical(),
                "digest": digest,
                "size_bytes": stat_size,
            })
        return described

    def entry(self, model: str, bits: Optional[int], mapping: str) -> PlanEntry:
        key = PlanKey(model=model, bits=bits, mapping=mapping)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                raise KeyError(f"no plan published for {key.canonical()!r}")
            return entry

    def digest(self, model: str, bits: Optional[int], mapping: str) -> str:
        """Content digest of the artifact behind one key."""
        return self.entry(model, bits, mapping).digest()

    def get_by_digest(self, digest: str) -> InferencePlan:
        """Resolve a plan by (a prefix of) its content digest.

        A digest names immutable content, so this lookup cannot be satisfied
        by a same-key artifact that was republished with different weights.
        """
        if len(digest) < 8:
            raise ValueError("digest prefix must be at least 8 hex characters")
        with self._lock:
            entries = list(self._entries.values())
        # Hashing reads every candidate artifact; do it outside the lock so
        # a cold digest lookup cannot stall concurrent get()/publish() calls.
        matches = [entry for entry in entries if entry.digest().startswith(digest)]
        if not matches:
            raise KeyError(f"no artifact with digest {digest!r}")
        if len(matches) > 1:
            raise KeyError(f"digest prefix {digest!r} is ambiguous")
        key = matches[0].key
        return self.get(key.model, key.bits, key.mapping)

    def _evict_over_capacity(self) -> None:
        while len(self._loaded) > self.capacity:
            self._loaded.popitem(last=False)
            self.evictions += 1
