"""Multi-model plan registry: on-disk artifacts, lazy loading, LRU caching.

A :class:`PlanRegistry` manages a directory of ``InferencePlan.save``
artifacts as the deployment catalogue of a serving process.  Artifacts are
named canonically — ``{model}__{bits}__{mapping}.npz``, e.g.
``lenet__4b__acm.npz`` or ``vgg9__fp32__de.npz`` — so the registry can index
a directory without opening a single file; plans are deserialised only on
first use and a bounded LRU cache keeps the hottest ones resident, evicting
cold plans back to disk (reloading later is transparent).

Every artifact also has a SHA-256 *content digest*, computed lazily and
cached against the file's stat signature.  Digests give deployments an
integrity/version handle: a client can pin ``get_by_digest(digest)`` and be
served exactly the artifact it validated, independent of what key it is
published under.

Keys additionally carry a *plan version* for staged rollout: publishing
``version=2`` writes ``{model}__{bits}__{mapping}__v2.npz`` alongside the
original artifact, and a per-directory rollout table (``_rollout.json``,
written atomically) decides which version serves live traffic.  A canary
fraction routes a deterministic, request-id-keyed slice of requests to the
candidate version; ``promote``/``rollback`` flip the active version
atomically, without restarting anything that reads the directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.api.errors import InvalidRequest
from repro.api.types import parse_bits_token
from repro.runtime.plan import InferencePlan


class PlanArtifactError(RuntimeError):
    """An indexed artifact exists but cannot be deserialised.

    Raised (with the offending path) when a plan file is truncated,
    corrupted, or not a plan at all; the registry itself stays consistent —
    other keys keep serving and a repaired artifact loads on the next get.
    """


def _bits_token(bits: Optional[int]) -> str:
    return "fp32" if bits is None else f"{int(bits)}b"


def parse_bits(token: str) -> Optional[int]:
    """Parse a canonical bits token (``"4b"`` → 4, ``"fp32"`` → None).

    Delegates to the API layer's parser so the token grammar has exactly
    one owner; the typed error is translated back to the ``ValueError``
    this legacy surface has always raised.
    """
    try:
        return parse_bits_token(token)
    except InvalidRequest as error:
        raise ValueError(str(error)) from None


_parse_bits = parse_bits

#: Rollout-state file kept next to the artifacts (never matches ``*.npz``).
ROLLOUT_FILENAME = "_rollout.json"

#: Canonical version suffix token: ``v2``, ``v3``, ... (``v1`` is implicit —
#: a version-1 key canonicalises to the bare 3-part stem, so an explicit
#: ``__v1`` suffix would alias it and is rejected by :meth:`PlanKey.parse`).
_VERSION_TOKEN = re.compile(r"^v([1-9][0-9]*)$")


def canary_bucket(request_id: str) -> float:
    """Deterministic position of a request id in ``[0, 1)``.

    SHA-256 of the id, first 8 bytes as an unsigned big-endian integer,
    scaled to the unit interval — stable across processes and runs, so a
    canary split is exactly reproducible: the same request id always lands
    on the same side of the fraction.
    """
    digest = hashlib.sha256(request_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RolloutEntry:
    """Rollout state for one base key: active version + optional canary."""

    active: int = 1
    canary_version: Optional[int] = None
    canary_fraction: float = 0.0
    previous: Optional[int] = None

    def resolve(self, request_id: Optional[str]) -> int:
        """The version this request serves from (deterministic per id)."""
        if (
            self.canary_version is None
            or self.canary_fraction <= 0.0
            or request_id is None
        ):
            return self.active
        if canary_bucket(request_id) < self.canary_fraction:
            return self.canary_version
        return self.active

    def to_wire(self) -> Dict[str, object]:
        return {
            "active": self.active,
            "canary_version": self.canary_version,
            "canary_fraction": self.canary_fraction,
            "previous": self.previous,
        }


@dataclass(frozen=True)
class PlanKey:
    """Identity of one served model: (model name, device bits, mapping)
    plus a rollout ``version`` (1 = the original, unsuffixed artifact)."""

    model: str
    bits: Optional[int]
    mapping: str
    version: int = 1

    def __post_init__(self) -> None:
        # Names must survive the canonical round trip: a model called
        # "a__b" (or "a_", whose trailing underscore merges with the "__"
        # separator) would serialise to a stem that parses back as a
        # different (or no) key, leaving the published artifact unreachable.
        for label, token in (("model", self.model), ("mapping", self.mapping)):
            if not isinstance(token, str) or not token:
                raise ValueError(f"{label} must be a non-empty string")
            if (
                "__" in token
                or token.startswith("_")
                or token.endswith("_")
                or "/" in token
                or "\x00" in token
            ):
                raise ValueError(
                    f"{label} {token!r} may not contain '__', start or end "
                    f"with '_', or contain '/' or NUL (it must round-trip "
                    f"through the canonical file name)"
                )
        if self.bits is not None and (
            isinstance(self.bits, bool)
            or not isinstance(self.bits, int)
            or self.bits < 1
        ):
            raise ValueError(f"bits must be a positive int or None, got {self.bits!r}")
        if (
            isinstance(self.version, bool)
            or not isinstance(self.version, int)
            or self.version < 1
        ):
            raise ValueError(
                f"version must be a positive int, got {self.version!r}"
            )

    def base_canonical(self) -> str:
        """The version-blind stem — rollout state and ring routing key."""
        return f"{self.model}__{_bits_token(self.bits)}__{self.mapping}"

    def canonical(self) -> str:
        """Filesystem-safe canonical stem, e.g. ``lenet__4b__acm`` (version
        1) or ``lenet__4b__acm__v2`` (later rollout versions)."""
        base = self.base_canonical()
        return base if self.version == 1 else f"{base}__v{self.version}"

    def base_key(self) -> "PlanKey":
        """This key at version 1 (identity for unversioned keys)."""
        if self.version == 1:
            return self
        return PlanKey(model=self.model, bits=self.bits, mapping=self.mapping)

    @classmethod
    def parse(cls, stem: str) -> Optional["PlanKey"]:
        """Inverse of :meth:`canonical`; None for foreign file names.

        A 4-part stem must end in a ``v{N}`` token with ``N >= 2`` and no
        leading zeros — ``__v1`` (which would alias the bare 3-part stem)
        and malformed tokens like ``v02`` are foreign, so every accepted
        stem round-trips exactly: ``parse(stem).canonical() == stem``.
        """
        parts = stem.split("__")
        version = 1
        if len(parts) == 4:
            match = _VERSION_TOKEN.match(parts[3])
            if match is None:
                return None
            version = int(match.group(1))
            if version < 2:
                return None
        elif len(parts) != 3:
            return None
        try:
            return cls(
                model=parts[0],
                bits=_parse_bits(parts[1]),
                mapping=parts[2],
                version=version,
            )
        except ValueError:
            return None


@dataclass
class PlanEntry:
    """One indexed artifact: its key, path, and memoised content digest."""

    key: PlanKey
    path: Path
    _digest: Optional[str] = field(default=None, repr=False)
    _stat: Optional[Tuple[int, int]] = field(default=None, repr=False)

    def digest(self) -> str:
        """SHA-256 hex digest of the artifact bytes (cached until the file
        changes, detected via its size/mtime signature)."""
        stat = self.path.stat()
        signature = (stat.st_size, stat.st_mtime_ns)
        if self._digest is None or self._stat != signature:
            self._digest = hashlib.sha256(self.path.read_bytes()).hexdigest()
            self._stat = signature
        return self._digest


class PlanRegistry:
    """Directory-backed, LRU-cached store of compiled inference plans.

    ``capacity`` bounds how many *deserialised* plans stay in memory at
    once; the on-disk catalogue is unbounded.  All methods are thread-safe,
    so one registry can back every scheduler thread of a serving process.
    """

    def __init__(self, directory, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.capacity = capacity
        self._entries: Dict[PlanKey, PlanEntry] = {}
        self._loaded: "OrderedDict[PlanKey, InferencePlan]" = OrderedDict()
        self._lock = threading.RLock()
        # Rollout table cache: (stat signature of _rollout.json, entries).
        self._rollout_cache: Tuple[
            Optional[Tuple[int, int]], Dict[str, RolloutEntry]
        ] = (None, {})
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.refresh()

    # ------------------------------------------------------------------ #
    # Catalogue
    # ------------------------------------------------------------------ #
    def refresh(self) -> None:
        """Re-scan the directory for canonically named ``.npz`` artifacts.

        Entries whose path is unchanged are kept (not rebuilt) so their
        memoised content digests survive the re-scan — a polling caller
        (the HTTP ``/v1/models`` and ``/healthz`` handlers refresh on every
        request) must not re-hash every artifact per poll.  A replaced file
        is still detected: :meth:`PlanEntry.digest` self-invalidates on the
        file's size/mtime signature.
        """
        with self._lock:
            fresh: Dict[PlanKey, PlanEntry] = {}
            for path in sorted(self.directory.glob("*.npz")):
                key = PlanKey.parse(path.name[: -len(".npz")])
                if key is None:
                    continue
                existing = self._entries.get(key)
                if existing is not None and existing.path == path:
                    fresh[key] = existing
                else:
                    fresh[key] = PlanEntry(key=key, path=path)
            self._entries = fresh

    def keys(self) -> List[PlanKey]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._entries

    @property
    def cached_keys(self) -> List[PlanKey]:
        """Keys currently resident in the LRU cache, least-recent first."""
        with self._lock:
            return list(self._loaded)

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def publish(
        self,
        plan: InferencePlan,
        model: str,
        bits: Optional[int],
        mapping: str,
        version: int = 1,
    ) -> PlanEntry:
        """Save ``plan`` under its canonical name and index it (hot in LRU)."""
        key = PlanKey(model=model, bits=bits, mapping=mapping, version=version)
        path = self.directory / f"{key.canonical()}.npz"
        plan.save(path)
        with self._lock:
            entry = PlanEntry(key=key, path=path)
            self._entries[key] = entry
            self._loaded[key] = plan
            self._loaded.move_to_end(key)
            self._evict_over_capacity()
            return entry

    def publish_model(
        self,
        model_module,
        model: str,
        bits: Optional[int],
        mapping: str,
        optimize: bool = False,
    ) -> PlanEntry:
        """Compile an eager model and publish the resulting plan.

        Uses :func:`repro.train.evaluate.plan_for` — the same plan builder
        the evaluation helpers use — so a model with per-layer variation
        enabled is rejected instead of silently freezing ideal weights.
        ``optimize=True`` applies the plan-level optimiser before saving.
        """
        from repro.train.evaluate import plan_for

        plan = plan_for(model_module, use_runtime=True)
        if optimize:
            from repro.runtime.optimize import optimize_plan

            plan = optimize_plan(plan)
        return self.publish(plan, model=model, bits=bits, mapping=mapping)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(
        self,
        model: str,
        bits: Optional[int],
        mapping: str,
        version: int = 1,
    ) -> InferencePlan:
        """The plan for ``(model, bits, mapping)``, loading it if evicted."""
        key = PlanKey(model=model, bits=bits, mapping=mapping, version=version)
        with self._lock:
            plan = self._loaded.get(key)
            if plan is not None:
                self.hits += 1
                self._loaded.move_to_end(key)
                return plan
            entry = self._entries.get(key)
            if entry is None:
                known = ", ".join(k.canonical() for k in self._entries) or "<none>"
                raise KeyError(
                    f"no plan published for {key.canonical()!r}; available: {known}"
                )
        # Deserialising reads the whole artifact; do it outside the lock so a
        # cold load of one model cannot stall cache hits on every other.
        try:
            plan = InferencePlan.load(entry.path)
        except Exception as error:
            # Truncated download, partial write, or a foreign file under a
            # canonical name: surface one typed error naming the artifact
            # instead of whatever zipfile/numpy internals happened to throw.
            raise PlanArtifactError(
                f"cannot load plan artifact {entry.path}: "
                f"{type(error).__name__}: {error}"
            ) from error
        with self._lock:
            racer = self._loaded.get(key)
            if racer is not None:
                self.hits += 1
                self._loaded.move_to_end(key)
                return racer
            self.misses += 1
            self._loaded[key] = plan
            self._evict_over_capacity()
            return plan

    def describe(self) -> List[dict]:
        """The catalogue as JSON-ready dicts (one per artifact, with digest).

        This is the payload behind the HTTP ``GET /v1/models`` listing:
        key fields, the canonical name, the content digest, and the artifact
        size.  Digests hash each file once and are then cached, so repeated
        listings are cheap.
        """
        with self._lock:
            entries = sorted(
                self._entries.values(), key=lambda entry: entry.key.canonical()
            )
        described = []
        for entry in entries:
            try:
                stat_size = entry.path.stat().st_size
                digest = entry.digest()
            except OSError:
                # Deleted out from under the index; skip rather than fail
                # the whole listing.
                continue
            described.append({
                "model": entry.key.model,
                "bits": entry.key.bits,
                "mapping": entry.key.mapping,
                "version": entry.key.version,
                "name": entry.key.canonical(),
                "digest": digest,
                "size_bytes": stat_size,
            })
        return described

    def entry(
        self,
        model: str,
        bits: Optional[int],
        mapping: str,
        version: int = 1,
    ) -> PlanEntry:
        key = PlanKey(model=model, bits=bits, mapping=mapping, version=version)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                raise KeyError(f"no plan published for {key.canonical()!r}")
            return entry

    def digest(
        self,
        model: str,
        bits: Optional[int],
        mapping: str,
        version: int = 1,
    ) -> str:
        """Content digest of the artifact behind one key."""
        return self.entry(model, bits, mapping, version=version).digest()

    def get_by_digest(self, digest: str) -> InferencePlan:
        """Resolve a plan by (a prefix of) its content digest.

        A digest names immutable content, so this lookup cannot be satisfied
        by a same-key artifact that was republished with different weights.
        """
        if len(digest) < 8:
            raise ValueError("digest prefix must be at least 8 hex characters")
        with self._lock:
            entries = list(self._entries.values())
        # Hashing reads every candidate artifact; do it outside the lock so
        # a cold digest lookup cannot stall concurrent get()/publish() calls.
        matches = [entry for entry in entries if entry.digest().startswith(digest)]
        if not matches:
            raise KeyError(f"no artifact with digest {digest!r}")
        if len(matches) > 1:
            raise KeyError(f"digest prefix {digest!r} is ambiguous")
        key = matches[0].key
        # The full key (version included) — a digest naming a __v2 artifact
        # must load that artifact, never its version-1 sibling.
        return self.get(key.model, key.bits, key.mapping, version=key.version)

    def _evict_over_capacity(self) -> None:
        while len(self._loaded) > self.capacity:
            self._loaded.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------ #
    # Versioned rollout
    # ------------------------------------------------------------------ #
    @property
    def rollout_path(self) -> Path:
        return self.directory / ROLLOUT_FILENAME

    def rollout_entries(self) -> Dict[str, RolloutEntry]:
        """The directory's rollout table, keyed by base-canonical stem.

        Re-read only when ``_rollout.json``'s stat signature changes, so
        per-request resolution costs one ``stat()``.  Because writers
        replace the file atomically (tmp + ``os.replace``), every reader —
        including cluster workers sharing the directory — sees either the
        old table or the new one, never a torn state.
        """
        path = self.rollout_path
        try:
            stat = path.stat()
        except OSError:
            with self._lock:
                self._rollout_cache = (None, {})
            return {}
        signature = (stat.st_size, stat.st_mtime_ns)
        with self._lock:
            cached_signature, cached = self._rollout_cache
            if cached_signature == signature:
                return cached
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            # Mid-replace on a non-atomic filesystem or a hand-edited file;
            # keep serving the last good table rather than dropping state.
            return self._rollout_cache[1]
        entries: Dict[str, RolloutEntry] = {}
        if isinstance(raw, dict):
            for base, state in raw.items():
                if not isinstance(state, dict):
                    continue
                try:
                    entries[base] = RolloutEntry(
                        active=int(state.get("active", 1)),
                        canary_version=(
                            None if state.get("canary_version") is None
                            else int(state["canary_version"])
                        ),
                        canary_fraction=float(state.get("canary_fraction", 0.0)),
                        previous=(
                            None if state.get("previous") is None
                            else int(state["previous"])
                        ),
                    )
                except (TypeError, ValueError):
                    continue
        with self._lock:
            self._rollout_cache = (signature, entries)
        return entries

    def rollout_entry(self, base_canonical: str) -> Optional[RolloutEntry]:
        return self.rollout_entries().get(base_canonical)

    def rollout_status(self) -> Dict[str, Dict[str, object]]:
        """The rollout table as JSON-ready dicts (``GET /admin/rollout``)."""
        return {
            base: entry.to_wire()
            for base, entry in sorted(self.rollout_entries().items())
        }

    def resolve_key(
        self, key: PlanKey, request_id: Optional[str] = None
    ) -> PlanKey:
        """Apply the rollout table to an unversioned key.

        Explicitly versioned keys pass through untouched (a pinned version
        is a pinned version); version-1 keys with a rollout entry route to
        the active version, or to the canary version for the deterministic
        ``canary_fraction`` slice of request ids.
        """
        if key.version != 1:
            return key
        entry = self.rollout_entries().get(key.canonical())
        if entry is None:
            return key
        version = entry.resolve(request_id)
        if version == key.version:
            return key
        return PlanKey(
            model=key.model, bits=key.bits, mapping=key.mapping, version=version
        )

    def _write_rollout(self, entries: Dict[str, RolloutEntry]) -> None:
        """Atomically replace the rollout table (write-rename)."""
        payload = json.dumps(
            {base: entry.to_wire() for base, entry in sorted(entries.items())},
            indent=2,
            sort_keys=True,
        )
        path = self.rollout_path
        tmp = path.with_name(f".{path.name}.{uuid.uuid4().hex}.tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)
        stat = path.stat()
        with self._lock:
            self._rollout_cache = ((stat.st_size, stat.st_mtime_ns), dict(entries))

    def _require_version(
        self, model: str, bits: Optional[int], mapping: str, version: int
    ) -> PlanKey:
        key = PlanKey(model=model, bits=bits, mapping=mapping, version=version)
        self.refresh()
        with self._lock:
            if key not in self._entries:
                raise KeyError(
                    f"no plan published for {key.canonical()!r}; "
                    f"publish the artifact before rolling it out"
                )
        return key

    def set_canary(
        self,
        model: str,
        bits: Optional[int],
        mapping: str,
        version: int,
        fraction: float,
    ) -> Dict[str, object]:
        """Route ``fraction`` of request-id-bearing traffic to ``version``.

        ``fraction`` must be in ``[0, 1]``; the candidate artifact must
        already be published.  Returns the updated rollout entry.
        """
        fraction = float(fraction)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(
                f"canary fraction must be within [0, 1], got {fraction!r}"
            )
        key = self._require_version(model, bits, mapping, version)
        base = key.base_canonical()
        with self._lock:
            entries = dict(self.rollout_entries())
            current = entries.get(base, RolloutEntry())
            entries[base] = RolloutEntry(
                active=current.active,
                canary_version=key.version,
                canary_fraction=fraction,
                previous=current.previous,
            )
            self._write_rollout(entries)
            return entries[base].to_wire()

    def promote(
        self,
        model: str,
        bits: Optional[int],
        mapping: str,
        version: Optional[int] = None,
    ) -> Dict[str, object]:
        """Make ``version`` (default: the canary) the active version.

        One atomic table write: the old active version is retained as
        ``previous`` (the rollback target) and any canary split is cleared.
        """
        base_key = PlanKey(model=model, bits=bits, mapping=mapping)
        base = base_key.canonical()
        with self._lock:
            entries = dict(self.rollout_entries())
            current = entries.get(base, RolloutEntry())
            if version is None:
                if current.canary_version is None:
                    raise ValueError(
                        f"no canary in flight for {base!r}; "
                        f"pass an explicit version to promote"
                    )
                version = current.canary_version
            key = self._require_version(model, bits, mapping, version)
            entries[base] = RolloutEntry(
                active=key.version,
                canary_version=None,
                canary_fraction=0.0,
                previous=current.active,
            )
            self._write_rollout(entries)
            return entries[base].to_wire()

    def rollback(
        self, model: str, bits: Optional[int], mapping: str
    ) -> Dict[str, object]:
        """Revert to the version the last promote replaced (atomic flip)."""
        base = PlanKey(model=model, bits=bits, mapping=mapping).canonical()
        with self._lock:
            entries = dict(self.rollout_entries())
            current = entries.get(base)
            if current is None or current.previous is None:
                raise ValueError(f"nothing to roll back for {base!r}")
            entries[base] = RolloutEntry(
                active=current.previous,
                canary_version=None,
                canary_fraction=0.0,
                previous=current.active,
            )
            self._write_rollout(entries)
            return entries[base].to_wire()
