"""Resumable study jobs: asynchronous sweep execution with checkpointing.

A :class:`JobManager` turns a typed :class:`~repro.api.types.StudySpec`
into a *study job*: the spec decomposes into ``len(models) * len(sigmas)``
independent **cells** — one seeded
:class:`~repro.api.types.EnsembleRequest` each — executed concurrently
against any backend that speaks the typed protocol (an in-process
:class:`~repro.serve.service.InferenceService`, a
:class:`~repro.serve.cluster.PlanCluster`, or a ``repro.api`` client over
HTTP).  Because a seeded ensemble is a pure function of its request, every
cell is idempotent: re-running one after a worker death, a timeout, or a
whole manager restart produces the exact same bits.

That idempotence is what the durability story leans on:

* after every completed cell the job's partial results are checkpointed to
  ``{checkpoint_dir}/{job_id}.json`` via atomic write-rename, so a crash
  can never leave a torn checkpoint — readers see the previous complete
  snapshot or the new one;
* transient failures (:class:`~repro.api.errors.WorkerDied`,
  :class:`~repro.api.errors.ApiConnectionError`,
  :class:`~repro.api.errors.ApiTimeout`) retry the *cell* with capped
  exponential backoff while the cluster's supervisor heals the shard —
  a SIGKILLed replica mid-study costs retries, never lost cells;
* :meth:`JobManager.resume` re-indexes the checkpoint directory on
  startup and re-enqueues only the missing cells of interrupted jobs, so
  a manager restart re-executes nothing that already completed.

The final :class:`~repro.api.types.StudyResult` orders cells model-major /
sigma-minor — the spec's decomposition order — regardless of completion
or resume order, so an interrupted-and-resumed study is bit-identical to
an uninterrupted one.
"""

from __future__ import annotations

import json
import logging
import os
import re
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Type

import numpy as np

from repro.api.codec import (
    decode_study_cell,
    decode_study_spec,
    encode_study_cell,
    encode_study_spec,
)
from repro.api.errors import (
    ApiConnectionError,
    ApiError,
    ApiTimeout,
    ModelNotFound,
    WorkerDied,
    error_for,
    map_exception,
)
from repro.api.types import (
    EnsembleRequest,
    EnsembleResult,
    StudyCellResult,
    StudyResult,
    StudySpec,
    StudyStatus,
)
from repro.obs import MetricsRegistry, log_event

_LOG = logging.getLogger("repro.serve.jobs")

#: Error classes worth retrying a cell over: the backend (or the network
#: path to it) hiccuped, but the request itself is fine.  Everything else
#: — InvalidRequest, ModelNotFound, auth — fails the job immediately.
RETRYABLE_ERRORS: Tuple[Type[ApiError], ...] = (
    WorkerDied, ApiConnectionError, ApiTimeout,
)

#: Checkpoint document schema version.
CHECKPOINT_FORMAT = 1

#: Job ids must be filesystem- and request-id-grammar-safe.
_JOB_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._\-]{0,63}$")


def _cell_from_ensemble(
    result: EnsembleResult,
    sigma_fraction: float,
    labels: Optional[np.ndarray],
) -> StudyCellResult:
    """Fold one ensemble response into its study cell (scored if labelled)."""
    predictions = np.asarray(result.predictions)
    accuracy: Optional[float] = None
    if labels is not None:
        accuracy = float((predictions == labels).mean())
    return StudyCellResult(
        model=result.model,
        bits=result.bits,
        mapping=result.mapping,
        sigma_fraction=float(sigma_fraction),
        mean_logits=np.asarray(result.mean_logits),
        predictions=predictions,
        confidence=np.asarray(result.confidence, dtype=np.float64),
        accuracy=accuracy,
    )


class _Job:
    """Mutable in-memory state of one study job (guarded by ``lock``)."""

    def __init__(self, job_id: str, spec: StudySpec) -> None:
        self.job_id = job_id
        self.spec = spec
        self.state = "running"
        self.cells: Dict[int, StudyCellResult] = {}
        self.retries = 0
        self.error: Optional[ApiError] = None
        self.lock = threading.Lock()
        self.done_event = threading.Event()
        #: Cells restored from a checkpoint rather than executed here —
        #: the resume tests assert zero re-executions through these.
        self.resumed_cells = 0
        self.executed_cells = 0

    @property
    def total(self) -> int:
        return self.spec.cell_count


class JobManager:
    """Asynchronous study-job executor over one typed backend.

    Parameters
    ----------
    backend:
        Anything with an ``ensemble_request(request)`` method (service,
        cluster, or another client); falls back to ``ensemble(request)``
        for ``repro.api`` clients.
    checkpoint_dir:
        Directory for per-job checkpoint files (atomic write-rename after
        every completed cell).  ``None`` disables persistence — jobs then
        live only as long as the manager.
    max_workers:
        Concurrent cells in flight (per manager).
    cell_retries:
        Transient-failure retries per cell before the job fails.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` to export job counters into
        (instruments are get-or-create, so sharing a server's registry is
        safe); a private registry is created when omitted.
    """

    def __init__(
        self,
        backend: Any,
        checkpoint_dir: Optional[object] = None,
        max_workers: int = 2,
        cell_retries: int = 10,
        retry_backoff: float = 0.05,
        retry_backoff_cap: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if cell_retries < 0:
            raise ValueError("cell_retries must be non-negative")
        if retry_backoff < 0 or retry_backoff_cap < 0:
            raise ValueError("retry backoffs must be non-negative")
        self.backend = backend
        call = getattr(backend, "ensemble_request", None)
        if not callable(call):
            call = getattr(backend, "ensemble")
        self._ensemble: Callable[[EnsembleRequest], EnsembleResult] = call
        self.checkpoint_dir = (
            None if checkpoint_dir is None else Path(str(checkpoint_dir))
        )
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.cell_retries = cell_retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self._jobs: Dict[str, _Job] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="study-cell"
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._build_instruments()

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def _build_instruments(self) -> None:
        self._m_cells = self.metrics.counter(
            "repro_study_cells_total",
            "Study cells finished, by outcome (ok/error/resumed).",
            labels=("outcome",),
        )
        self._m_retries = self.metrics.counter(
            "repro_study_cell_retries_total",
            "Transient-failure retries of study cells (worker death, "
            "connection loss, timeout).",
        )
        self._m_checkpoints = self.metrics.counter(
            "repro_study_checkpoint_writes_total",
            "Atomic checkpoint writes (one per completed cell plus one per "
            "submit/terminal transition).",
        )
        try:
            self.metrics.register_callback(
                "repro_study_jobs",
                "gauge",
                "Study jobs known to this manager, by state.",
                self._collect_job_states,
            )
        except ValueError:
            pass  # registry shared with another manager; one exporter wins

    def _collect_job_states(self) -> List[Tuple[Mapping[str, str], float]]:
        with self._lock:
            jobs = list(self._jobs.values())
        counts = {"running": 0, "done": 0, "failed": 0, "cancelled": 0}
        for job in jobs:
            with job.lock:
                counts[job.state] = counts.get(job.state, 0) + 1
        return [({"state": state}, float(count))
                for state, count in sorted(counts.items())]

    # ------------------------------------------------------------------ #
    # Submission and execution
    # ------------------------------------------------------------------ #
    def submit(self, spec: StudySpec, job_id: Optional[str] = None) -> str:
        """Start a study job; returns its id immediately.

        Cells execute on the manager's worker pool; poll :meth:`status`
        or block on :meth:`wait` for the result.
        """
        if self._closed:
            raise RuntimeError("job manager is closed")
        if not isinstance(spec, StudySpec):
            raise map_exception(
                TypeError(f"submit takes a StudySpec, not {type(spec).__name__}")
            )
        if job_id is None:
            job_id = uuid.uuid4().hex[:16]
        elif not _JOB_ID.match(job_id):
            raise map_exception(ValueError(f"invalid job id {job_id!r}"))
        job = _Job(job_id, spec)
        with self._lock:
            if job_id in self._jobs:
                raise map_exception(
                    ValueError(f"job id {job_id!r} already exists")
                )
            self._jobs[job_id] = job
        self._checkpoint(job)
        log_event(_LOG, "study_submitted", job_id=job_id,
                  cells=job.total, models=len(spec.models),
                  sigmas=len(spec.sigmas), num_samples=spec.num_samples)
        self._enqueue_missing(job)
        return job_id

    def _enqueue_missing(self, job: _Job) -> None:
        with job.lock:
            if job.state != "running":
                return
            missing = [index for index in range(job.total)
                       if index not in job.cells]
        if not missing:
            self._finish_if_complete(job)
            return
        for index in missing:
            self._executor.submit(self._run_cell, job, index)

    def _cell_request(self, job: _Job, index: int) -> EnsembleRequest:
        selector, sigma = job.spec.cell(index)
        return EnsembleRequest(
            images=job.spec.images,
            model=selector.model,
            mapping=selector.mapping,
            bits=selector.bits,
            sigma_fraction=sigma,
            num_samples=job.spec.num_samples,
            seed=job.spec.seed,
            request_id=f"{job.job_id}-c{index}",
        )

    def _run_cell(self, job: _Job, index: int) -> None:
        with job.lock:
            if job.state != "running" or index in job.cells:
                return
        if self._closed:
            return
        request = self._cell_request(job, index)
        attempt = 0
        while True:
            try:
                result = self._ensemble(request)
                break
            except RETRYABLE_ERRORS as error:
                with job.lock:
                    if job.state != "running":
                        return
                    job.retries += 1
                self._m_retries.inc()
                attempt += 1
                if attempt > self.cell_retries or self._closed:
                    self._fail(job, map_exception(error))
                    return
                log_event(_LOG, "study_cell_retry", level=logging.WARNING,
                          job_id=job.job_id, cell=index, attempt=attempt,
                          error=type(error).__name__)
                time.sleep(min(
                    self.retry_backoff * (2 ** (attempt - 1)),
                    self.retry_backoff_cap,
                ))
            except ApiError as error:
                self._fail(job, error)
                return
            except Exception as error:  # noqa: BLE001 - fold to typed
                self._fail(job, map_exception(error))
                return
        _, sigma = job.spec.cell(index)
        cell = _cell_from_ensemble(result, sigma, job.spec.labels)
        with job.lock:
            if job.state != "running" or index in job.cells:
                return
            job.cells[index] = cell
            job.executed_cells += 1
        self._m_cells.inc(outcome="ok")
        self._checkpoint(job)
        self._finish_if_complete(job)

    def _finish_if_complete(self, job: _Job) -> None:
        with job.lock:
            if job.state != "running" or len(job.cells) < job.total:
                return
            job.state = "done"
        self._checkpoint(job)
        job.done_event.set()
        log_event(_LOG, "study_done", job_id=job.job_id, cells=job.total,
                  retries=job.retries, executed=job.executed_cells,
                  resumed=job.resumed_cells)

    def _fail(self, job: _Job, error: ApiError) -> None:
        with job.lock:
            if job.state != "running":
                return
            job.state = "failed"
            job.error = error
        self._m_cells.inc(outcome="error")
        self._checkpoint(job)
        job.done_event.set()
        log_event(_LOG, "study_failed", level=logging.WARNING,
                  job_id=job.job_id, code=error.code, error=error.message)

    # ------------------------------------------------------------------ #
    # Checkpointing and resume
    # ------------------------------------------------------------------ #
    def _checkpoint(self, job: _Job) -> None:
        """Atomically persist the job's current state (write-rename).

        The snapshot *and* the rename happen under the job lock, so a
        later snapshot can never be overwritten by an earlier one racing
        it — checkpoints only ever move forward.
        """
        directory = self.checkpoint_dir
        if directory is None:
            return
        with job.lock:
            document: Dict[str, Any] = {
                "format": CHECKPOINT_FORMAT,
                "job_id": job.job_id,
                "state": job.state,
                "retries": job.retries,
                "spec": encode_study_spec(job.spec),
                "cells": {
                    str(index): encode_study_cell(cell)
                    for index, cell in sorted(job.cells.items())
                },
            }
            if job.error is not None:
                document["error"] = {
                    "code": job.error.code,
                    "message": job.error.message,
                }
            payload = json.dumps(document)
            path = directory / f"{job.job_id}.json"
            tmp = path.with_name(f".{path.name}.{uuid.uuid4().hex}.tmp")
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, path)
        self._m_checkpoints.inc()

    def resume(self) -> List[str]:
        """Re-index the checkpoint directory and restart unfinished jobs.

        Completed and failed jobs load back queryable; interrupted jobs
        re-enqueue **only** their missing cells (completed cells are
        restored verbatim, counted under the ``resumed`` outcome).
        Returns the ids of jobs that resumed execution.
        """
        directory = self.checkpoint_dir
        if directory is None:
            return []
        resumed: List[str] = []
        for path in sorted(directory.glob("*.json")):
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                log_event(_LOG, "study_checkpoint_unreadable",
                          level=logging.WARNING, path=str(path))
                continue
            job = self._load_checkpoint(document)
            if job is None:
                continue
            with self._lock:
                if job.job_id in self._jobs:
                    continue
                self._jobs[job.job_id] = job
            if job.state == "running":
                resumed.append(job.job_id)
                log_event(_LOG, "study_resumed", job_id=job.job_id,
                          done=len(job.cells), total=job.total)
                self._enqueue_missing(job)
            else:
                job.done_event.set()
        return resumed

    def _load_checkpoint(self, document: Any) -> Optional[_Job]:
        try:
            if not isinstance(document, dict):
                raise ValueError("checkpoint must be an object")
            if int(document.get("format", 0)) != CHECKPOINT_FORMAT:
                raise ValueError(
                    f"unsupported checkpoint format {document.get('format')!r}"
                )
            job_id = str(document["job_id"])
            spec, _ = decode_study_spec(document["spec"])
            job = _Job(job_id, spec)
            job.retries = int(document.get("retries", 0))
            cells = document.get("cells", {})
            if not isinstance(cells, dict):
                raise ValueError("cells must be an object")
            for index_text, cell_body in cells.items():
                index = int(index_text)
                if not 0 <= index < job.total:
                    raise ValueError(f"cell index {index} out of range")
                job.cells[index] = decode_study_cell(cell_body)
            job.resumed_cells = len(job.cells)
            if job.resumed_cells:
                self._m_cells.inc(float(job.resumed_cells), outcome="resumed")
            state = str(document.get("state", "running"))
            if state == "done" and len(job.cells) == job.total:
                job.state = "done"
            elif state == "failed":
                job.state = "failed"
                error = document.get("error") or {}
                job.error = error_for(
                    str(error.get("code", "internal")), 500,
                    str(error.get("message", "study failed")),
                )
            elif state == "cancelled":
                # Terminal: a cancelled job never resumes execution, but
                # its status (and partial cell count) stays queryable.
                job.state = "cancelled"
            return job
        except Exception as error:  # noqa: BLE001 - skip, don't crash startup
            log_event(_LOG, "study_checkpoint_invalid",
                      level=logging.WARNING, error=str(error))
            return None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _get(self, job_id: str) -> _Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ModelNotFound(f"no study job {job_id!r}")
        return job

    def status(self, job_id: str) -> StudyStatus:
        """Progress snapshot; carries the result once the job is done."""
        job = self._get(job_id)
        with job.lock:
            result: Optional[StudyResult] = None
            if job.state == "done":
                result = StudyResult(
                    job_id=job.job_id,
                    cells=tuple(job.cells[index] for index in range(job.total)),
                    num_samples=job.spec.num_samples,
                    seed=job.spec.seed,
                )
            return StudyStatus(
                job_id=job.job_id,
                state=job.state,
                cells_total=job.total,
                cells_done=len(job.cells),
                retries=job.retries,
                error_code=None if job.error is None else job.error.code,
                error_message=None if job.error is None else job.error.message,
                result=result,
            )

    def cancel(self, job_id: str) -> StudyStatus:
        """Cancel a running job; idempotent; returns the resulting status.

        A running job flips to the terminal ``"cancelled"`` state: queued
        and in-flight cells drop out at their next state check (their
        results are discarded, never recorded), the checkpoint records the
        terminal state so a restart cannot revive the job, and waiters
        unblock.  Cancelling a job that is already done, failed, or
        cancelled changes nothing and answers the current status; an
        unknown id raises the typed 404
        (:class:`~repro.api.errors.ModelNotFound`), exactly like
        :meth:`status`.
        """
        job = self._get(job_id)
        with job.lock:
            flipped = job.state == "running"
            if flipped:
                job.state = "cancelled"
            done_cells = len(job.cells)
        if flipped:
            self._checkpoint(job)
            job.done_event.set()
            log_event(_LOG, "study_cancelled", job_id=job.job_id,
                      done=done_cells, total=job.total)
        return self.status(job_id)

    def job_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._jobs)

    def execution_counts(self, job_id: str) -> Dict[str, int]:
        """How the job's cells were obtained (resume accounting for tests)."""
        job = self._get(job_id)
        with job.lock:
            return {
                "executed": job.executed_cells,
                "resumed": job.resumed_cells,
                "retries": job.retries,
            }

    def wait(self, job_id: str, timeout: Optional[float] = None) -> StudyStatus:
        """Block until the job reaches a terminal state."""
        job = self._get(job_id)
        if not job.done_event.wait(timeout):
            raise ApiTimeout(
                f"study job {job_id!r} still running after {timeout}s"
            )
        return self.status(job_id)

    def close(self) -> None:
        """Stop executing; unfinished jobs stay resumable on disk."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
