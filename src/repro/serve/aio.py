"""Asyncio HTTP edge: the event-loop flavour of :class:`PlanServer`.

:class:`AsyncPlanServer` serves the exact protocol of
:class:`repro.serve.http.PlanServer` — same routes, auth, TLS, drain,
``/metrics`` — because both edges delegate every parsed request to one
shared :class:`repro.serve.http.EdgeCore`.  What differs is the
transport: instead of one handler thread per connection, a single event
loop accepts connections (``asyncio.start_server``), keeps them alive
across requests (HTTP/1.1 keep-alive with an idle timeout), parses
pipelined requests sequentially in arrival order, and bridges each parsed
request into a bounded thread pool via ``loop.run_in_executor`` — the
blocking micro-batch schedulers underneath are untouched.  Thousands of
idle keep-alive connections therefore cost file descriptors, not threads;
only requests actually mid-dispatch occupy a worker thread.

Connection semantics:

* **Keep-alive** — HTTP/1.1 connections persist across requests (and
  HTTP/1.0 with ``Connection: keep-alive``); an idle connection closes
  after ``keepalive_timeout`` seconds, when the client sends
  ``Connection: close``, or when the server starts draining or shutting
  down — ``POST /admin/drain`` sheds *idle* connections while requests
  already in flight complete normally.
* **Pipelining** — requests buffered behind the current one are parsed
  and answered strictly in order, one at a time; responses are never
  interleaved.
* **Errors close** — like the threaded edge, every error response carries
  ``Connection: close``, because several error paths answer before the
  request body was consumed and the unread bytes would corrupt the
  stream's framing.

Lifecycle mirrors :class:`PlanServer`: ``start()`` spins the event loop
on a background thread and returns once the socket is bound (``port=0``
for ephemeral; see :attr:`url`); ``close()`` stops accepting, lets
in-flight requests finish, closes the study-job manager and (with
``own_backend=True``) the backend.  Both work as context managers, so the
two classes are drop-in interchangeable — the CLI flips between them with
``--async``, and ``repro.api`` clients cannot tell them apart (the
equivalence matrix enforces bit-identical float64 either way).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import logging
import os
import ssl
import threading
import time
from http import HTTPStatus
from typing import Any, Dict, Optional, Set, Tuple

from repro.serve.http import (
    EdgeCore,
    EdgeResponse,
    RequestError,
    _error_body,
    parse_content_length,
    truncated_body_error,
)

_LOG = logging.getLogger("repro.serve.aio")

#: Cap on one request's header section (request line + headers), matching
#: the stdlib ``http.server`` limit the threaded edge inherits.
MAX_HEADER_BYTES = 65536

#: Cap on the number of header lines in one request.
MAX_HEADER_COUNT = 128

#: Seconds one body read may stall before the request maps to a 504,
#: matching the threaded handler's socket timeout.
BODY_TIMEOUT = 30.0

#: Granularity of the idle-connection poll: how quickly an idle keep-alive
#: connection notices a drain or shutdown.  Coarse on purpose — with
#: thousands of idle connections each poll slice is a timer wakeup, so a
#: tight interval taxes the event loop exactly when fan-in is highest;
#: shutdown additionally cancels idle waits outright rather than waiting
#: for a poll tick.
_IDLE_POLL = 1.0


def _default_handler_threads() -> int:
    # The dispatch pool bounds how many requests block in the micro-batch
    # schedulers at once; connections beyond this queue in the event loop
    # (cheap) instead of occupying threads (expensive).  The micro-batcher
    # *wants* several concurrent callers to coalesce, so size generously.
    return min(32, (os.cpu_count() or 1) * 8)


class _ConnectionClosed(Exception):
    """The peer went away (EOF / reset) — unwind the connection quietly."""


class AsyncPlanServer:
    """Event-loop HTTP edge over a shared :class:`EdgeCore`.

    Constructor-compatible with :class:`repro.serve.http.PlanServer`,
    plus:

    ``keepalive_timeout``
        Seconds an idle keep-alive connection is retained before the
        server closes it (default 30).
    ``handler_threads``
        Size of the bounded dispatch pool bridging the event loop into
        the blocking schedulers (default scales with CPU count).
    """

    def __init__(
        self,
        backend: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        own_backend: bool = True,
        verbose: bool = False,
        auth_token: Optional[str] = None,
        tls_cert: Optional[str] = None,
        tls_key: Optional[str] = None,
        jobs_dir: Optional[str] = None,
        keepalive_timeout: float = 30.0,
        handler_threads: Optional[int] = None,
    ) -> None:
        if (tls_cert is None) != (tls_key is None):
            raise ValueError("tls_cert and tls_key must be provided together")
        if keepalive_timeout <= 0:
            raise ValueError("keepalive_timeout must be positive")
        self.backend = backend
        self.own_backend = own_backend
        self.verbose = verbose
        self.keepalive_timeout = float(keepalive_timeout)
        self.core = EdgeCore(backend, auth_token=auth_token, jobs_dir=jobs_dir)
        self.tls = tls_cert is not None
        self._ssl_context: Optional[ssl.SSLContext] = None
        if tls_cert is not None and tls_key is not None:
            context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
            context.load_cert_chain(certfile=tls_cert, keyfile=tls_key)
            self._ssl_context = context
        self._host = host
        self._port = port
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=handler_threads or _default_handler_threads(),
            thread_name_prefix="aio-edge",
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: Set["asyncio.Task[None]"] = set()
        self._address: Optional[Tuple[str, int]] = None
        self._closing = False
        self._closed = False

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def start(self) -> "AsyncPlanServer":
        """Bind the socket, spin the event loop; returns once accepting."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="plan-aio-server", daemon=True
        )
        self._thread.start()
        bound = asyncio.run_coroutine_threadsafe(self._bootstrap(), self._loop)
        # Surfaces bind errors (port in use, bad cert) in the caller.
        bound.result(timeout=30.0)
        return self

    def _run_loop(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    async def _bootstrap(self) -> None:
        server = await asyncio.start_server(
            self._on_connection,
            host=self._host,
            port=self._port,
            ssl=self._ssl_context,
            # Keep-alive fan-in arrives in bursts; match the threaded
            # edge's deep listen backlog so neither drops SYNs first.
            backlog=1024,
        )
        self._server = server
        sockname = server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    @property
    def url(self) -> str:
        host, port = self.address
        scheme = "https" if self.tls else "http"
        return f"{scheme}://{host}:{port}"

    @property
    def metrics(self) -> Any:
        """The edge-level metric registry (merged into /metrics)."""
        return self.core.metrics

    @property
    def jobs(self) -> Any:
        """The study-job manager behind ``POST /v1/studies``."""
        return self.core.jobs

    @property
    def draining(self) -> bool:
        """True while POST /admin/drain has paused new prediction work."""
        return bool(self.core.draining)

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, close backend."""
        if self._closed:
            return
        self._closed = True
        self._closing = True
        if self._loop is not None and self._thread is not None:
            wait = timeout if timeout is not None else 30.0
            done = asyncio.run_coroutine_threadsafe(
                self._shutdown(wait), self._loop
            )
            try:
                done.result(timeout=wait + 5.0)
            except Exception:  # noqa: BLE001 - best-effort; loop stops below
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=wait)
        self.core.drain(timeout)
        self._executor.shutdown(wait=False)
        # Jobs close before the backend they execute through; an unfinished
        # study stays checkpointed on disk and resumes on the next start.
        self.core.jobs.close()
        if self.own_backend:
            self.backend.close()

    async def _shutdown(self, timeout: float) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        tasks = set(self._tasks)
        if tasks:
            # Idle connections notice _closing within one poll interval;
            # in-flight requests finish their dispatch then see it.
            await asyncio.wait(tasks, timeout=timeout)
        leftovers = set(self._tasks)
        for task in leftovers:
            task.cancel()
        if leftovers:
            await asyncio.wait(leftovers, timeout=1.0)

    def __enter__(self) -> "AsyncPlanServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- #
    # Connection handling
    # -------------------------------------------------------------- #
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except _ConnectionClosed:
            pass
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception:  # noqa: BLE001 - connection-local failure
            _LOG.debug("connection handler failed", exc_info=True)
        finally:
            if task is not None:
                self._tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        while True:
            line = await self._await_request_line(reader)
            if line is None:
                return  # idle timeout, drain, shutdown, or clean EOF
            try:
                method, path, version = self._parse_request_line(line)
                headers = await self._read_headers(reader)
            except RequestError as error:
                await self._write_response(
                    writer, self._protocol_error(error), close=True
                )
                return
            keep_alive = self._keep_alive(version, headers)
            body: Optional[bytes] = None
            body_error: Optional[BaseException] = None
            length: Optional[int] = None
            try:
                length = parse_content_length(headers)
                if length is not None:
                    body = await self._read_body(reader, length)
            except asyncio.IncompleteReadError as error:
                body_error = truncated_body_error(
                    len(error.partial), length if length is not None else 0
                )
            except Exception as error:  # noqa: BLE001 - mapped by the core
                body_error = error
            # The blocking part — auth, routing, the micro-batch scheduler
            # call — runs on the bounded dispatch pool; the event loop
            # stays free to accept and parse other connections meanwhile.
            response = await loop.run_in_executor(
                self._executor,
                self.core.handle,
                method,
                path,
                headers,
                body,
                body_error,
            )
            close = response.close or not keep_alive or self._closing
            await self._write_response(writer, response, close=close)
            if close:
                return

    async def _await_request_line(
        self, reader: asyncio.StreamReader
    ) -> Optional[bytes]:
        """Wait for the next request line on an idle connection.

        Polls in small slices so an idle connection notices a drain or a
        shutdown promptly; returns ``None`` when the connection should
        close without an error response (clean EOF, idle timeout, drain,
        shutdown).  A pipelined request already buffered returns
        immediately on the first slice.
        """
        deadline = time.monotonic() + self.keepalive_timeout
        while True:
            if self._closing or self.core.draining:
                return None
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=min(_IDLE_POLL, remaining)
                )
            except asyncio.TimeoutError:
                continue
            except (ConnectionError, OSError):
                return None
            if line == b"":
                return None  # clean EOF: the client hung up between requests
            if line == b"\r\n" or line == b"\n":
                continue  # tolerate stray blank lines between requests
            return line

    def _parse_request_line(self, line: bytes) -> Tuple[str, str, str]:
        try:
            text = line.decode("latin-1").rstrip("\r\n")
            method, path, version = text.split(" ", 2)
        except ValueError:
            raise RequestError(400, "malformed HTTP request line")
        if not version.startswith("HTTP/"):
            raise RequestError(400, f"malformed HTTP version {version!r}")
        return method, path, version

    async def _read_headers(
        self, reader: asyncio.StreamReader
    ) -> Dict[str, str]:
        # One timeout guard around the whole header section (rather than a
        # timer per line): headers almost always arrive in the same packet
        # as the request line, and per-line timers are measurable overhead
        # at high request rates.
        try:
            return await asyncio.wait_for(
                self._read_header_lines(reader), timeout=BODY_TIMEOUT
            )
        except asyncio.TimeoutError:
            raise RequestError(400, "timed out reading request headers")

    async def _read_header_lines(
        self, reader: asyncio.StreamReader
    ) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        total = 0
        for _ in range(MAX_HEADER_COUNT):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                return headers
            total += len(line)
            if total > MAX_HEADER_BYTES:
                raise RequestError(400, "request header section too large")
            try:
                name, _, value = line.decode("latin-1").partition(":")
            except UnicodeDecodeError:
                raise RequestError(400, "undecodable request header")
            if not _:
                raise RequestError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        raise RequestError(400, "too many request headers")

    def _keep_alive(self, version: str, headers: Dict[str, str]) -> bool:
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.1":
            return connection != "close"
        return connection == "keep-alive"

    async def _read_body(
        self, reader: asyncio.StreamReader, length: int
    ) -> bytes:
        if length == 0:
            return b""
        try:
            return await asyncio.wait_for(
                reader.readexactly(length), timeout=BODY_TIMEOUT
            )
        except asyncio.TimeoutError:
            # Maps to the typed 504, matching the threaded edge's socket
            # timeout on a stalled body.
            raise TimeoutError("timed out reading request body")

    def _protocol_error(self, error: RequestError) -> EdgeResponse:
        # Failures before a request exists (bad request line, oversized
        # headers) cannot go through EdgeCore.handle — there is no route
        # to dispatch or meter — but reuse the same error body shape.
        payload = json.dumps(
            _error_body(error.status, error), allow_nan=False
        ).encode("utf-8")
        self.core.observe_request("unknown", "BAD", error.status, 0.0)
        return EdgeResponse(status=error.status, payload=payload, close=True)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: EdgeResponse,
        close: bool,
    ) -> None:
        try:
            reason = HTTPStatus(response.status).phrase
        except ValueError:
            reason = "Unknown"
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.payload)}",
        ]
        for name, value in response.headers.items():
            lines.append(f"{name}: {value}")
        lines.append("Connection: close" if close else "Connection: keep-alive")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        try:
            writer.write(head + response.payload)
            await writer.drain()
        except (ConnectionError, OSError):
            raise _ConnectionClosed()
