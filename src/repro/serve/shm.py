"""Shared-memory array transport for the plan cluster's pipe protocol.

Large request/response arrays crossing the :class:`~repro.serve.cluster.
PlanCluster` process boundary do not need to ride the pickle stream: a
pickled ndarray is copied at least twice per hop (serialise into the pipe,
deserialise out of it) and squeezed through the kernel's pipe buffer in
64 KiB chunks.  Instead, arrays at or above a size threshold are *offloaded*
into a named ``multiprocessing.shared_memory`` segment and replaced in the
message by a tiny :class:`ShmRef` descriptor ``(name, dtype, shape)``; the
receiver attaches the segment, copies the bytes out once, and unlinks it.
Bytes move exactly once per direction and the payload is bit-identical by
construction — the descriptor carries the full dtype string (including
byte order), and the copy is a straight ``memcpy``.

Segment lifecycle is explicit, not left to the interpreter:

* every segment this module creates is immediately *unregistered* from the
  stdlib ``resource_tracker`` — the tracker's automatic cleanup fires at
  unpredictable times (e.g. when a SIGKILL'd worker's tracker reaps its
  registry) and would race the receiving process's attach;
* the **receiver** unlinks a segment right after copying it out (consuming
  a descriptor is destructive);
* senders keep a per-endpoint :class:`SegmentStats` ledger and name every
  segment under a per-endpoint prefix, so when a process dies without
  consuming (or without its replies being consumed), the surviving side
  unlinks the in-flight segments it tracked *and* sweeps ``/dev/shm`` for
  the dead endpoint's prefix (:func:`cleanup_prefix`).  This is what keeps
  a SIGKILL'd worker from leaking segments.

The helpers are deliberately transport-shaped rather than cluster-shaped:
:func:`offload_payload` / :func:`restore_payload` walk the small set of
message shapes the cluster protocol actually sends — bare ndarrays, flat
payload dicts, and array-carrying frozen dataclasses (the shared
``EnsembleResult``) — leaving everything else to pickle untouched.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

#: Default offload threshold (bytes).  Below it, pickling through the pipe
#: is cheaper than two segment syscalls; above it the extra copies dominate.
DEFAULT_SHM_THRESHOLD = 1 << 16

#: Where POSIX shared memory is visible as files on Linux; the leak
#: regression tests (and :func:`cleanup_prefix`) scan it directly.
SHM_DIR = "/dev/shm"


@dataclasses.dataclass(frozen=True)
class ShmRef:
    """Descriptor of one offloaded array: segment name, dtype string, shape.

    The dtype string is ``ndarray.dtype.str`` (it includes byte order), so
    reconstruction is bit-exact on any endianness-matched host — and the
    cluster's workers are forks/spawns of the same interpreter on the same
    machine by construction.
    """

    name: str
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        size = np.dtype(self.dtype).itemsize
        for extent in self.shape:
            size *= extent
        return size


class SegmentStats:
    """Thread-safe counters for one endpoint's shared-memory traffic."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.segments_created = 0
        self.segments_consumed = 0
        self.segments_cleaned = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def created(self, nbytes: int) -> None:
        with self._lock:
            self.segments_created += 1
            self.bytes_sent += nbytes

    def consumed(self, nbytes: int) -> None:
        with self._lock:
            self.segments_consumed += 1
            self.bytes_received += nbytes

    def cleaned(self, count: int) -> None:
        with self._lock:
            self.segments_cleaned += count

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "segments_created": self.segments_created,
                "segments_consumed": self.segments_consumed,
                "segments_cleaned": self.segments_cleaned,
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
            }


def _untrack(name: str) -> None:
    """Remove one segment from the stdlib resource tracker's registry.

    Cleanup here is explicit and accounted; the tracker's end-of-process
    sweep would otherwise unlink segments still awaiting their receiver
    (and spam warnings for the ones we already unlinked ourselves).
    """
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def offload_array(
    array: np.ndarray, name: str, stats: Optional[SegmentStats] = None
) -> ShmRef:
    """Copy ``array`` into a named segment; returns its descriptor.

    The creating side closes its mapping immediately — the segment lives in
    the kernel until the receiver (or a cleanup sweep) unlinks it.
    """
    contiguous = np.ascontiguousarray(array)
    nbytes = max(1, contiguous.nbytes)  # shm segments cannot be 0-sized
    segment = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
    _untrack(segment.name)
    try:
        view = np.ndarray(contiguous.shape, dtype=contiguous.dtype,
                          buffer=segment.buf)
        view[...] = contiguous
        del view
    finally:
        segment.close()
    if stats is not None:
        stats.created(contiguous.nbytes)
    return ShmRef(name=name, dtype=contiguous.dtype.str,
                  shape=tuple(contiguous.shape))


def restore_array(ref: ShmRef, stats: Optional[SegmentStats] = None) -> np.ndarray:
    """Copy a descriptor's bytes back out and unlink the segment.

    Consuming is destructive: the segment is gone afterwards, so a
    descriptor can be restored exactly once.  Raises ``FileNotFoundError``
    when the segment no longer exists (its creator died and was swept).
    """
    segment = shared_memory.SharedMemory(name=ref.name, create=False)
    _untrack(segment.name)
    try:
        view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                          buffer=segment.buf)
        array = np.array(view, copy=True)
        del view
    finally:
        segment.close()
        unlink_segment(ref.name)
    if stats is not None:
        stats.consumed(array.nbytes)
    return array


def unlink_segment(name: str) -> bool:
    """Best-effort unlink of one segment; True if it existed."""
    try:
        shared_memory.SharedMemory(name=name, create=False).unlink()
        return True
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - vanished mid-unlink
        return False


def list_segments(prefix: str) -> List[str]:
    """Names of the live segments under ``prefix`` (empty off-Linux)."""
    try:
        entries = os.listdir(SHM_DIR)
    except OSError:  # pragma: no cover - non-Linux or masked /dev/shm
        return []
    return sorted(entry for entry in entries if entry.startswith(prefix))


def cleanup_prefix(prefix: str, stats: Optional[SegmentStats] = None) -> int:
    """Unlink every segment whose name starts with ``prefix``.

    The survivor's sweep after an endpoint died: any segment the dead
    process created but nobody consumed matches its prefix and is removed
    here.  Returns the number of segments actually unlinked.
    """
    removed = sum(1 for name in list_segments(prefix) if unlink_segment(name))
    if removed and stats is not None:
        stats.cleaned(removed)
    return removed


def _offload_candidate(value: Any, threshold: int) -> bool:
    return (
        isinstance(value, np.ndarray)
        and not value.dtype.hasobject
        and value.nbytes >= threshold
    )


def offload_payload(
    payload: Any,
    threshold: Optional[int],
    allocate_name,
    stats: Optional[SegmentStats] = None,
) -> Tuple[Any, List[str]]:
    """Replace large arrays inside one protocol message by descriptors.

    Walks the cluster protocol's message shapes — a bare ndarray, a flat
    ``{field: value}`` payload dict, or an array-carrying (frozen)
    dataclass such as ``EnsembleResult`` — offloading each qualifying array
    via ``allocate_name()`` (a callable yielding a fresh segment name).
    Returns the rewritten message plus the created segment names, so the
    sender can sweep them if the message never reaches its receiver.
    """
    if threshold is None or threshold < 0:
        return payload, []
    names: List[str] = []

    def lift(value: Any) -> Any:
        if _offload_candidate(value, threshold):
            try:
                ref = offload_array(value, allocate_name(), stats)
            except OSError:
                # /dev/shm full or unavailable: the pipe path is slower but
                # always works, so degrade per-array instead of failing.
                return value
            names.append(ref.name)
            return ref
        return value

    if isinstance(payload, np.ndarray):
        return lift(payload), names
    if isinstance(payload, dict):
        encoded = {field: lift(value) for field, value in payload.items()}
        return (encoded if names else payload), names
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        changes = {
            field.name: lift(getattr(payload, field.name))
            for field in dataclasses.fields(payload)
            if _offload_candidate(getattr(payload, field.name), threshold)
        }
        if changes:
            return dataclasses.replace(payload, **changes), names
    return payload, names


def restore_payload(payload: Any, stats: Optional[SegmentStats] = None) -> Any:
    """Inverse of :func:`offload_payload`: resolve descriptors back to arrays."""

    def lower(value: Any) -> Any:
        if isinstance(value, ShmRef):
            return restore_array(value, stats)
        return value

    if isinstance(payload, ShmRef):
        return restore_array(payload, stats)
    if isinstance(payload, dict):
        if any(isinstance(value, ShmRef) for value in payload.values()):
            return {field: lower(value) for field, value in payload.items()}
        return payload
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        changes = {
            field.name: restore_array(getattr(payload, field.name), stats)
            for field in dataclasses.fields(payload)
            if isinstance(getattr(payload, field.name), ShmRef)
        }
        if changes:
            return dataclasses.replace(payload, **changes)
    return payload
