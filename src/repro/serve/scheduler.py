"""Dynamic micro-batching: coalesce concurrent requests into one execution.

Serving a compiled plan one request at a time wastes the runtime's main
advantage — a batched matmul amortises the per-call overhead (im2col, BLAS
dispatch, Python) over every row.  The :class:`MicroBatchScheduler` closes
that gap for concurrent traffic: requests enqueue individually, a worker
thread coalesces whatever is waiting — up to ``max_batch`` rows, waiting at
most ``max_wait_ms`` after the first request of a batch — into one stacked
execution, and scatters the result rows back onto per-request futures.

The batching policy:

* the worker blocks until a first request arrives, then keeps draining the
  queue until the batch holds ``max_batch`` rows or ``max_wait_ms`` has
  elapsed since that first request (a lone straggler is flushed at the
  deadline, never starved);
* a request that would push the batch past ``max_batch`` rows is held back
  and opens the *next* micro-batch, so an over-full queue yields several
  consecutive capped batches rather than one oversized execution;
* a single request larger than ``max_batch`` on its own is executed as one
  (oversized) batch rather than split, so callers may mix single samples and
  pre-batched arrays freely.

The scheduler is model-agnostic: ``runner`` is any callable mapping a
stacked ``(rows, ...)`` array to a ``(rows, ...)`` result (for serving,
``InferencePlan.run``).  A runner exception fails every future in the
affected batch; later batches are unaffected.

An optional *adaptive* cap (``max_batch="auto"``) probes for the latency
knee instead of trusting a hand-picked constant: the worker times every
near-full batch, and an :class:`AdaptiveMaxBatch` controller doubles the
cap while the median per-row latency holds, then settles at the last cap
before it degraded — the same probe-don't-tune philosophy as
``stacked_image_target``.  Probing happens once; a settled cap never
oscillates under noisy traffic.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple, Union

import numpy as np

_SHUTDOWN = object()

#: The ``max_batch`` sentinel that opts a scheduler into adaptive capping.
AUTO_MAX_BATCH = "auto"


class AdaptiveMaxBatch:
    """Probe-for-the-knee micro-batch cap controller.

    Starts at ``start`` rows and doubles toward ``limit`` while growing
    keeps the *median per-row* execution latency within ``tolerance`` of
    the best cap seen; the first cap that degrades past the tolerance ends
    the probe, reverting to the best cap permanently.  Only near-full
    batches (at least half the current cap) count as probes — a lone
    straggler flushed by the wait deadline says nothing about the cap.

    All methods are thread-safe; :attr:`cap` is read lock-free on the
    collect path (a stale read costs one slightly-off batch, nothing more).
    """

    def __init__(
        self,
        start: int = 8,
        limit: int = 256,
        window: int = 8,
        tolerance: float = 1.25,
    ) -> None:
        if start < 1 or limit < start:
            raise ValueError("need 1 <= start <= limit")
        if window < 1:
            raise ValueError("window must be at least 1")
        if tolerance < 1.0:
            raise ValueError("tolerance must be at least 1.0")
        self.cap = start
        self.limit = limit
        self.window = window
        self.tolerance = tolerance
        self._samples: List[float] = []
        self._best_cap = start
        self._best_per_row = math.inf
        self._settled = False
        self._lock = threading.Lock()

    @property
    def settled(self) -> bool:
        """True once the probe finished and the cap is final."""
        return self._settled

    def record(self, rows: int, seconds: float) -> None:
        """Feed one executed batch's size and wall-clock execution time."""
        if rows < 1 or seconds < 0:
            return
        with self._lock:
            if self._settled or rows * 2 < self.cap:
                return
            self._samples.append(seconds / rows)
            if len(self._samples) < self.window:
                return
            ordered = sorted(self._samples)
            per_row = ordered[len(ordered) // 2]
            self._samples = []
            if per_row <= self._best_per_row * self.tolerance:
                if per_row < self._best_per_row:
                    self._best_per_row = per_row
                    self._best_cap = self.cap
                if self.cap >= self.limit:
                    self.cap = self._best_cap
                    self._settled = True
                else:
                    self.cap = min(self.cap * 2, self.limit)
            else:
                # Growing made per-row latency worse: past the knee.
                self.cap = self._best_cap
                self._settled = True

#: How many per-batch (requests, rows) samples ``SchedulerStats`` retains for
#: inspection; the aggregate counters cover the full process lifetime.
_RECENT_BATCHES = 1024


@dataclass
class SchedulerStats:
    """Batch-composition statistics, maintained by the worker thread.

    Aggregates are lifetime running counters (bounded memory, however long
    the service runs); ``batches`` keeps only the most recent
    ``(num_requests, num_rows)`` pairs for inspection.
    ``mean_rows_per_batch`` near 1 means serial traffic, near ``max_batch``
    means saturated.
    """

    num_batches: int = 0
    num_requests: int = 0
    num_rows: int = 0
    max_rows_per_batch: int = 0
    batches: Deque[Tuple[int, int]] = field(
        default_factory=lambda: deque(maxlen=_RECENT_BATCHES)
    )

    def record(self, requests: int, rows: int) -> None:
        self.num_batches += 1
        self.num_requests += requests
        self.num_rows += rows
        self.max_rows_per_batch = max(self.max_rows_per_batch, rows)
        self.batches.append((requests, rows))

    @property
    def mean_rows_per_batch(self) -> float:
        return self.num_rows / self.num_batches if self.num_batches else 0.0


class MicroBatchScheduler:
    """Thread-based dynamic micro-batching over a single runner callable."""

    def __init__(
        self,
        runner: Callable[[np.ndarray], np.ndarray],
        max_batch: Union[int, str, AdaptiveMaxBatch] = 64,
        max_wait_ms: float = 5.0,
        name: str = "microbatch",
        on_batch: Optional[Callable[[int, int, float], None]] = None,
    ) -> None:
        self._adaptive: Optional[AdaptiveMaxBatch]
        self._max_batch = 0
        if isinstance(max_batch, AdaptiveMaxBatch):
            self._adaptive = max_batch
        elif max_batch == AUTO_MAX_BATCH:
            self._adaptive = AdaptiveMaxBatch()
        elif isinstance(max_batch, bool) or not isinstance(max_batch, int):
            raise ValueError(
                f"max_batch must be an int or 'auto', got {max_batch!r}"
            )
        elif max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        else:
            self._adaptive = None
            self._max_batch = max_batch
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self._runner = runner
        self.max_wait = max_wait_ms / 1000.0
        self.stats = SchedulerStats()
        # Observability hook: called once per executed micro-batch with
        # (num_requests, num_rows, coalesce_wait_seconds) from the worker
        # thread.  Exceptions are swallowed — telemetry must never fail a
        # batch.
        self.on_batch = on_batch
        # SimpleQueue is C-implemented and roughly 4x cheaper per item than
        # queue.Queue; at ~50us per micro-batched request that is the
        # difference between amortising the batching win and eating it.
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._closed = False
        # Serialises submit against close so the shutdown marker is always
        # the last item the queue ever sees — no request can be enqueued
        # after it and stranded with an unresolved future.
        self._submit_lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._loop, name=f"{name}-worker", daemon=True
        )
        self._worker.start()

    @property
    def max_batch(self) -> int:
        """The batch-row cap: fixed, or the adaptive controller's current
        cap while it probes for the knee (``max_batch="auto"``)."""
        if self._adaptive is not None:
            return self._adaptive.cap
        return self._max_batch

    @property
    def adaptive(self) -> Optional[AdaptiveMaxBatch]:
        """The adaptive cap controller, or None for a fixed cap."""
        return self._adaptive

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def submit(self, rows: np.ndarray) -> Future:
        """Enqueue one request; ``rows`` must carry a leading batch axis.

        Returns a future resolving to the runner's output rows for exactly
        this request (the micro-batch it rode in is invisible to the caller).
        """
        array = np.asarray(rows)
        if array.ndim < 1 or array.shape[0] < 1:
            raise ValueError("a request must contain at least one row")
        future: Future = Future()
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._queue.put((array, future))
        return future

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting to be coalesced (approximate).

        This is the backpressure signal: the number of submitted requests
        the worker thread has not yet drained into a micro-batch.  A
        saturated service shows a persistently positive depth; the serving
        layer turns a configurable threshold on it into typed
        ``ApiBackpressure`` / HTTP 429 responses.
        """
        return self._queue.qsize()

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting requests, flush everything queued, join the worker."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "MicroBatchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def _collect(self, first) -> Tuple[list, object, bool]:
        """Coalesce requests after ``first`` until full or the deadline.

        Returns ``(batch, held, stop)``: ``held`` is a request that arrived
        but would have pushed the batch past ``max_batch`` rows — it opens
        the next batch instead of overflowing this one.
        """
        batch = [first]
        rows = first[0].shape[0]
        deadline = time.monotonic() + self.max_wait
        stop = False
        held = None
        while rows < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                stop = True
                break
            if rows + item[0].shape[0] > self.max_batch:
                held = item
                break
            batch.append(item)
            rows += item[0].shape[0]
        return batch, held, stop

    def _execute(self, batch: list, wait: float = 0.0) -> None:
        arrays = [array for array, _ in batch]
        futures = [future for _, future in batch]
        if len(arrays) > 1:
            try:
                stacked = np.concatenate(arrays, axis=0)
            except ValueError:
                # Heterogeneous trailing shapes cannot share a stacked
                # execution; degrade to per-request runs so the offending
                # request fails alone instead of poisoning its batch-mates.
                for item in batch:
                    self._execute([item], wait=wait)
                return
        else:
            stacked = arrays[0]
        sizes = [array.shape[0] for array in arrays]
        self.stats.record(len(batch), sum(sizes))
        if self.on_batch is not None:
            try:
                self.on_batch(len(batch), sum(sizes), wait)
            except Exception:  # noqa: BLE001 - telemetry must never fail a batch
                pass
        run_started = time.monotonic()
        try:
            result = self._runner(stacked)
        except BaseException as error:  # noqa: BLE001 - forwarded to callers
            for future in futures:
                future.set_exception(error)
            return
        if self._adaptive is not None:
            self._adaptive.record(sum(sizes), time.monotonic() - run_started)
        offsets = np.cumsum(sizes[:-1])
        for future, piece in zip(futures, np.split(result, offsets, axis=0)):
            future.set_result(piece)

    def _loop(self) -> None:
        stop = False
        held = None
        while not stop:
            if held is not None:
                item, held = held, None
            else:
                item = self._queue.get()
                if item is _SHUTDOWN:
                    break
            batch_started = time.monotonic()
            batch, held, stop = self._collect(item)
            self._execute(batch, wait=time.monotonic() - batch_started)
        if held is not None:
            self._execute([held])
        # Flush anything enqueued before the shutdown marker that _collect
        # left behind (the marker is guaranteed to be the final item).
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN:
                self._execute([item])
