"""Cross-process plan sharding: one registry directory, N serving workers.

A :class:`PlanCluster` turns a single :class:`~repro.serve.registry.PlanRegistry`
directory into a multi-process serving deployment.  Each worker process
builds its own registry over the shared directory and runs a full
:class:`~repro.serve.service.InferenceService` (one micro-batching
scheduler per model it serves); the parent keeps only the catalogue index
plus one duplex pipe per worker.  Models are partitioned across workers by
a *stable* hash of their canonical key (:func:`shard_index`), so:

* every request for one model always lands on the same worker — its
  micro-batching scheduler sees the full stream for that model and keeps
  coalescing;
* distinct models live in distinct processes, so they execute in true
  parallel, each behind its own GIL;
* the partition is a pure function of ``(key, num_workers)`` — any client
  or router replica computes the same shard without coordination.

The parent/worker protocol is asynchronous: requests carry a correlation
id down the pipe, a pool of handler threads inside the worker serves them
concurrently (so micro-batches still form), and a receiver thread in the
parent scatters replies back onto per-request futures.  Results are exact
— the same float64 arrays an in-process service would return, moved across
a pickle boundary.

**Shared-memory transport** (:mod:`repro.serve.shm`): request/response
arrays at or above ``shm_threshold`` bytes do not ride the pickle stream —
they are copied once into a named ``multiprocessing.shared_memory``
segment and travel as a tiny ``(name, dtype, shape)`` descriptor; the
receiving side copies the bytes out and unlinks the segment.  Results stay
bit-identical (the copy is a memcpy and the descriptor carries the full
dtype), small payloads keep using the pipe, and segment cleanup is
accounted: the parent tracks every in-flight segment per request and
sweeps the per-worker name prefix when a worker dies, so a SIGKILL'd
worker cannot leak ``/dev/shm`` entries.

**Self-healing** (``auto_restart=True``): a supervisor thread watches for
dead workers and respawns each one with bounded exponential backoff
(``restart_backoff`` doubling up to ``max_restart_backoff``).  A worker
that keeps crash-looping — ``max_restarts`` consecutive deaths without
surviving ``stability_window`` seconds — trips its shard's *circuit
breaker*: the supervisor stops respawning it and requests to the shard
fail fast with :class:`~repro.api.errors.WorkerDied` carrying
``breaker_open=True`` until an operator re-admits it via
:meth:`PlanCluster.restart_worker` (which resets the breaker).  While the
breaker is *closed*, every protocol request is idempotent/deterministic,
so :class:`~repro.api.client.ClusterClient` transparently retries requests
that failed with ``WorkerDied`` — the combination loses zero requests
across a worker SIGKILL.

Shutdown is graceful: :meth:`PlanCluster.close` sends each worker a
shutdown sentinel; workers stop reading, finish every in-flight request,
drain their schedulers (:meth:`InferenceService.close`), acknowledge, and
exit.

``PlanCluster`` satisfies the same backend contract as
``InferenceService`` — including the typed
:meth:`~PlanCluster.predict_request` / :meth:`~PlanCluster.ensemble_request`
entry points of the ``repro.api`` layer — so
:class:`~repro.serve.http.PlanServer` can front either interchangeably.
"""

from __future__ import annotations

import hashlib
import itertools
import logging
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.api.backend import typed_ensemble, typed_predict
from repro.api.errors import WorkerDied
from repro.obs import (
    LogfmtFormatter,
    MetricFamily,
    MetricsRegistry,
    log_event,
    relabel,
)
from repro.runtime.intkernels import PRECISIONS
from repro.api.types import (
    EnsembleRequest,
    EnsembleResult,
    PredictRequest,
    PredictResult,
)
from repro.serve.registry import PlanKey, PlanRegistry
from repro.serve.service import InferenceService, VariationPrediction
from repro.serve.shm import (
    DEFAULT_SHM_THRESHOLD,
    SegmentStats,
    cleanup_prefix,
    offload_payload,
    restore_payload,
    unlink_segment,
)

_SHUTDOWN = None

_LOG = logging.getLogger("repro.serve.cluster")

#: Distinguishes the shared-memory prefixes of clusters living in one
#: parent process (tests routinely run several clusters per process).
_CLUSTER_IDS = itertools.count()


def shard_index(key: PlanKey, num_workers: int) -> int:
    """The worker that serves ``key``: a stable hash of the canonical name.

    Uses SHA-256 rather than Python's ``hash`` so the partition is
    deterministic across processes and interpreter runs (``hash(str)`` is
    salted per process).
    """
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    digest = hashlib.sha256(key.canonical().encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_workers


# ---------------------------------------------------------------------- #
# Worker process
# ---------------------------------------------------------------------- #
def _worker_main(
    conn,
    directory: str,
    capacity: int,
    max_batch: int,
    max_wait_ms: float,
    handler_threads: int,
    max_queue_depth: Optional[int] = None,
    max_concurrent_ensembles: Optional[int] = None,
    shm_threshold: Optional[int] = None,
    precision: str = "float64",
    shm_prefix: str = "",
    worker_index: int = 0,
    log_path: Optional[str] = None,
) -> None:
    """Serve requests from the pipe until the shutdown sentinel arrives.

    Module-level so it pickles under the ``spawn`` start method.  Replies
    are ``(request_id, ok, payload)`` where ``payload`` is the result or
    the exception object itself (exceptions re-raise in the caller's
    process with their original type — including the typed ``ApiError``
    subclasses, e.g. backpressure raised by the worker's service).  Arrays
    above ``shm_threshold`` arrive and leave as shared-memory descriptors
    (consumed destructively on receipt), named under ``shm_prefix`` so the
    parent can sweep anything this process leaves behind if it dies.

    With ``log_path`` set, every ``repro.*`` logger in this process writes
    logfmt lines there — each served request logs its trace id, model,
    shard, and latency, so one grep over the worker files reconstructs a
    request's cross-process path.
    """
    if log_path is not None:
        handler = logging.FileHandler(log_path, encoding="utf-8")
        handler.setFormatter(LogfmtFormatter())
        root = logging.getLogger("repro")
        root.addHandler(handler)
        root.setLevel(logging.INFO)
    registry = PlanRegistry(directory, capacity=capacity)
    service = InferenceService(registry, max_batch=max_batch,
                               max_wait_ms=max_wait_ms,
                               max_queue_depth=max_queue_depth,
                               max_concurrent_ensembles=max_concurrent_ensembles,
                               precision=precision,
                               shard=worker_index)
    send_lock = threading.Lock()
    segment_seq = itertools.count()

    def allocate_name() -> str:
        return f"{shm_prefix}{next(segment_seq)}"

    def reply(request_id, ok, payload) -> None:
        names: List[str] = []
        if ok:
            payload, names = offload_payload(payload, shm_threshold,
                                             allocate_name)
        try:
            with send_lock:
                conn.send((request_id, ok, payload))
        except Exception as error:  # unpicklable payload; degrade to a message
            for name in names:  # the descriptors never reached the parent
                unlink_segment(name)
            with send_lock:
                conn.send((request_id, False,
                           RuntimeError(f"{type(payload).__name__}: {error}")))

    def handle(request_id, kind, payload) -> None:
        try:
            payload = restore_payload(payload)
            result = _dispatch(kind, payload)
        except BaseException as error:  # noqa: BLE001 - forwarded to caller
            reply(request_id, False, error)
            return
        reply(request_id, True, result)

    def _dispatch(kind, payload):
        if kind == "predict" or kind == "ensemble":
            try:
                return _run_request(kind, payload)
            except KeyError:
                # The plan may have been published after this worker
                # indexed the directory; re-scan once and retry.
                registry.refresh()
                return _run_request(kind, payload)
        if kind == "models":
            return service.models()
        if kind == "stats":
            return service.stats_summary()
        if kind == "metrics":
            # Families are frozen tuples of str/float — they cross the
            # pickle boundary as-is for the parent to merge and relabel.
            return service.metrics_families()
        if kind == "ping":
            return "pong"
        raise ValueError(f"unknown request kind {kind!r}")

    def _run_request(kind, payload):
        if kind == "predict":
            return service.predict(**payload)
        return service.predict_under_variation(**payload)

    with ThreadPoolExecutor(
        max_workers=handler_threads, thread_name_prefix="plan-worker"
    ) as pool:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is _SHUTDOWN:
                break
            pool.submit(handle, *message)
        # The executor's __exit__ waits for every in-flight request, so all
        # replies are sent before the shutdown acknowledgement below.
    service.close()
    try:
        conn.send((_SHUTDOWN, True, "closed"))
    except (BrokenPipeError, OSError):  # parent already gone
        pass
    conn.close()


# ---------------------------------------------------------------------- #
# Parent-side worker handle
# ---------------------------------------------------------------------- #
class _WorkerClient:
    """One worker process: pipe, pending-future table, receiver thread."""

    def __init__(self, context, index: int, directory: str, capacity: int,
                 max_batch: int, max_wait_ms: float, handler_threads: int,
                 max_queue_depth: Optional[int] = None,
                 max_concurrent_ensembles: Optional[int] = None,
                 shm_threshold: Optional[int] = None,
                 precision: str = "float64",
                 shm_base: str = "", incarnation: int = 0,
                 log_dir: Optional[str] = None) -> None:
        self.index = index
        self.incarnation = incarnation
        self.shm_threshold = shm_threshold
        # One log file per shard, shared by every incarnation (append
        # mode), so restarts do not fragment a shard's request trace.
        log_path = (
            os.path.join(log_dir, f"worker-{index}.log")
            if log_dir is not None else None
        )
        # Segment names are per-(worker, incarnation): "...p..." segments
        # are created by the parent for this worker, "...w..." segments by
        # the worker itself.  Both prefixes are swept when the process dies
        # or the handle is closed, so no incarnation can leak into the next.
        self._parent_prefix = f"{shm_base}p{index}i{incarnation}n"
        self._worker_prefix = f"{shm_base}w{index}i{incarnation}n"
        self._segment_seq = itertools.count()
        self.transport = SegmentStats()
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, directory, capacity, max_batch, max_wait_ms,
                  handler_threads, max_queue_depth, max_concurrent_ensembles,
                  shm_threshold, precision, self._worker_prefix,
                  index, log_path),
            name=f"plan-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self._conn = parent_conn
        # request_id -> (future, names of in-flight shm segments the parent
        # created for this request; swept if the worker dies before
        # consuming them).
        self._pending: Dict[int, Tuple[Future, List[str]]] = {}
        self._ids = itertools.count()
        self._lock = threading.Lock()
        self._closed = False
        # Flipped (exactly once, by the receiver thread or a failed send)
        # when the worker process died rather than shut down: pending
        # futures get the typed WorkerDied and the shard is excluded until
        # a restart replaces this handle.
        self.dead = False
        self._receiver = threading.Thread(
            target=self._receive_loop, name=f"plan-worker-{index}-recv", daemon=True
        )
        self._receiver.start()

    def _allocate_name(self) -> str:
        return f"{self._parent_prefix}{next(self._segment_seq)}"

    def active_segments(self) -> int:
        """Parent-created segments still in flight (0 when drained)."""
        with self._lock:
            return sum(len(names) for _, names in self._pending.values())

    def transport_stats(self) -> Dict[str, object]:
        """JSON-ready shared-memory transport counters (parent side)."""
        stats: Dict[str, object] = dict(self.transport.snapshot())
        stats["active_segments"] = self.active_segments()
        stats["shm_threshold"] = self.shm_threshold
        return stats

    def submit(self, kind: str, payload) -> Future:
        # Offloading copies the request arrays, so it happens before the
        # lock — a big batch must not stall the receiver's reply handling.
        payload, names = offload_payload(payload, self.shm_threshold,
                                         self._allocate_name, self.transport)
        future: Future = Future()
        with self._lock:
            if self._closed:
                self._discard_segments(names)
                raise RuntimeError("cluster is closed")
            if self.dead:
                self._discard_segments(names)
                raise WorkerDied(
                    f"worker {self.index} has died; its shard is excluded "
                    f"until it is restarted",
                    worker_index=self.index,
                )
            request_id = next(self._ids)
            self._pending[request_id] = (future, names)
            try:
                self._conn.send((request_id, kind, payload))
            except (BrokenPipeError, OSError) as error:
                self._pending.pop(request_id, None)
                self._discard_segments(names)
                self.dead = True
                raise WorkerDied(
                    f"worker {self.index} is not reachable: {error}",
                    worker_index=self.index,
                ) from None
        return future

    def _discard_segments(self, names: List[str]) -> None:
        removed = sum(1 for name in names if unlink_segment(name))
        if removed:
            self.transport.cleaned(removed)

    def _receive_loop(self) -> None:
        while True:
            try:
                request_id, ok, payload = self._conn.recv()
            except (EOFError, OSError):
                break
            if request_id is _SHUTDOWN:
                break
            with self._lock:
                entry = self._pending.pop(request_id, None)
            if entry is None:
                continue
            future, names = entry
            # The worker consumed the request segments before dispatching;
            # anything still present (a reply sent before restore, which
            # only a buggy worker could produce) is swept here so no reply
            # path can leak parent-created segments.
            self._discard_segments(names)
            if ok:
                try:
                    payload = restore_payload(payload, self.transport)
                except Exception as error:  # segment swept under us
                    future.set_exception(WorkerDied(
                        f"worker {self.index} reply lost its shared-memory "
                        f"payload: {error}",
                        worker_index=self.index,
                    ))
                    continue
                future.set_result(payload)
            elif isinstance(payload, BaseException):
                future.set_exception(payload)
            else:  # pragma: no cover - defensive
                future.set_exception(RuntimeError(str(payload)))
        with self._lock:
            closed = self._closed
            if not closed:
                # The pipe hit EOF without a shutdown handshake: the worker
                # process died underneath us.  Mark the shard dead *before*
                # failing the stranded futures so no new request can slip
                # into the pending table in between.
                self.dead = True
        if closed:
            self._fail_pending(RuntimeError(f"worker {self.index} exited"))
        else:
            self._fail_pending(WorkerDied(
                f"worker {self.index} died with the request in flight",
                worker_index=self.index,
            ))
        # Sweep both shm prefixes: request segments the dead worker never
        # consumed and reply segments whose descriptors never arrived.
        self._sweep_segments()

    def _fail_pending(self, error: BaseException) -> None:
        with self._lock:
            pending, self._pending = self._pending, {}
        for future, names in pending.values():
            self._discard_segments(names)
            if not future.done():
                future.set_exception(error)

    def _sweep_segments(self) -> None:
        cleanup_prefix(self._parent_prefix, self.transport)
        cleanup_prefix(self._worker_prefix, self.transport)

    def close(self, timeout: Optional[float]) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.send(_SHUTDOWN)
            except (BrokenPipeError, OSError):
                pass
        self._receiver.join(timeout=timeout)
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=1.0)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
        self._fail_pending(RuntimeError(f"worker {self.index} is closed"))
        self._sweep_segments()


# ---------------------------------------------------------------------- #
# The cluster façade
# ---------------------------------------------------------------------- #
class PlanCluster:
    """Multi-process plan serving over one registry directory.

    Parameters mirror :class:`InferenceService` (each worker builds one
    with ``max_batch`` / ``max_wait_ms`` / ``capacity`` /
    ``max_queue_depth`` / ``max_concurrent_ensembles``), plus the process
    topology: ``num_workers`` serving processes and ``handler_threads``
    concurrent requests per worker (keep > 1 or micro-batches cannot
    form).  ``start_method`` selects the multiprocessing context; the
    ``spawn`` default gives workers a clean interpreter regardless of
    parent threads, at the cost of slower startup.

    ``shm_threshold`` switches request/response arrays of at least that
    many bytes onto the shared-memory transport (``None`` or a negative
    value keeps everything on the pipe; ``0`` forces every array through
    shared memory — useful in tests).  ``precision`` is forwarded to every
    worker's service: each worker lowers the plans it serves with
    :meth:`~repro.runtime.plan.InferencePlan.with_precision` when pinning
    them, so a whole cluster can serve through the integer kernels.  ``auto_restart=True`` starts the
    self-healing supervisor: dead workers respawn with exponential backoff
    (``restart_backoff`` doubling per consecutive crash up to
    ``max_restart_backoff``); ``max_restarts`` consecutive crashes — a
    crash "streak" resets once a worker survives ``stability_window``
    seconds — open the shard's circuit breaker instead of retrying
    forever.
    """

    def __init__(
        self,
        directory,
        num_workers: int = 2,
        capacity: int = 4,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        handler_threads: int = 4,
        start_method: str = "spawn",
        max_queue_depth: Optional[int] = None,
        max_concurrent_ensembles: Optional[int] = None,
        shm_threshold: Optional[int] = DEFAULT_SHM_THRESHOLD,
        precision: str = "float64",
        auto_restart: bool = False,
        max_restarts: int = 5,
        restart_backoff: float = 0.05,
        max_restart_backoff: float = 2.0,
        stability_window: float = 2.0,
        log_dir: Optional[str] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if handler_threads < 1:
            raise ValueError("handler_threads must be at least 1")
        if max_restarts < 1:
            raise ValueError("max_restarts must be at least 1")
        if restart_backoff < 0 or max_restart_backoff < 0:
            raise ValueError("restart backoffs must be non-negative")
        if precision not in PRECISIONS:
            # Fail in the parent, not nine spawned workers later.
            raise ValueError(
                f"unknown precision {precision!r}; expected one of {PRECISIONS}"
            )
        # The parent never deserialises a plan; its registry is the
        # catalogue index used for listings (capacity 1 keeps it tiny).
        self.catalogue = PlanRegistry(directory, capacity=1)
        self.num_workers = num_workers
        self.auto_restart = bool(auto_restart)
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self.max_restart_backoff = max_restart_backoff
        self.stability_window = stability_window
        self._context = multiprocessing.get_context(start_method)
        # The trailing "_" terminates the cluster id so close()'s
        # cleanup_prefix for cluster 1 can never match cluster 11's
        # segments in the same process.
        self._shm_base = f"rps{os.getpid():x}c{next(_CLUSTER_IDS)}_"
        # Per-shard structured log files (worker-N.log, logfmt) when set.
        self._log_dir = str(log_dir) if log_dir is not None else None
        if self._log_dir is not None:
            os.makedirs(self._log_dir, exist_ok=True)
        # Kept so worker restarts can spawn identically configured
        # replacements for a dead shard.
        self._worker_config = (str(self.catalogue.directory), capacity,
                               max_batch, max_wait_ms, handler_threads,
                               max_queue_depth, max_concurrent_ensembles,
                               shm_threshold, precision)
        self._workers = [
            self._spawn_worker(index, incarnation=0)
            for index in range(num_workers)
        ]
        self._closed = False
        # Supervisor bookkeeping, all guarded by _sup_lock.  _restart_lock
        # serialises actual worker replacement (supervisor vs. manual
        # restart_worker) without holding up state reads.
        self._sup_lock = threading.Lock()
        self._restart_lock = threading.Lock()
        self._restarts = [0] * num_workers
        self._consecutive = [0] * num_workers
        self._breaker = [False] * num_workers
        self._restart_due: List[Optional[float]] = [None] * num_workers
        self._last_restart: List[Optional[float]] = [None] * num_workers
        self._incarnations = [0] * num_workers
        self._sup_stop = threading.Event()
        # Parent-side registry: worker liveness, breaker/restart state, and
        # shm transport ledgers, all exported live via callbacks (the same
        # state stats_summary() reports).
        self.metrics = MetricsRegistry()
        self._build_instruments()
        self._supervisor: Optional[threading.Thread] = None
        if self.auto_restart:
            self._supervisor = threading.Thread(
                target=self._supervise, name="plan-cluster-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    def _spawn_worker(self, index: int, incarnation: int) -> _WorkerClient:
        return _WorkerClient(
            self._context, index, *self._worker_config,
            shm_base=self._shm_base, incarnation=incarnation,
            log_dir=self._log_dir,
        )

    # ------------------------------------------------------------------ #
    # Observability (parent side)
    # ------------------------------------------------------------------ #
    def _build_instruments(self) -> None:
        metrics = self.metrics
        metrics.register_callback(
            "repro_cluster_worker_up", "gauge",
            "1 while the shard's worker process is alive, else 0.",
            lambda: [
                ({"worker": str(worker.index)}, 0.0 if worker.dead else 1.0)
                for worker in list(self._workers)
            ],
        )
        metrics.register_callback(
            "repro_cluster_breaker_open", "gauge",
            "1 while the shard's circuit breaker is open.",
            self._collect_breakers,
        )
        metrics.register_callback(
            "repro_cluster_worker_restarts_total", "counter",
            "Times each shard's worker has been replaced.",
            self._collect_restarts,
        )
        metrics.register_callback(
            "repro_cluster_worker_consecutive_crashes", "gauge",
            "Current crash streak per shard (resets after stability_window).",
            self._collect_crash_streaks,
        )
        metrics.register_callback(
            "repro_cluster_shm_segments_total", "counter",
            "Shared-memory segments by lifecycle event (created/consumed/"
            "cleaned), per shard, parent side.",
            lambda: self._collect_shm("segments"),
        )
        metrics.register_callback(
            "repro_cluster_shm_bytes_total", "counter",
            "Bytes moved through shared memory per shard and direction, "
            "parent side.",
            lambda: self._collect_shm("bytes"),
        )
        metrics.register_callback(
            "repro_cluster_shm_active_segments", "gauge",
            "Parent-created segments currently in flight per shard.",
            lambda: [
                ({"worker": str(worker.index)}, float(worker.active_segments()))
                for worker in list(self._workers)
            ],
        )

    def _collect_breakers(self) -> Sequence[Tuple[Mapping[str, str], float]]:
        with self._sup_lock:
            flags = list(self._breaker)
        return [({"worker": str(i)}, 1.0 if flag else 0.0)
                for i, flag in enumerate(flags)]

    def _collect_restarts(self) -> Sequence[Tuple[Mapping[str, str], float]]:
        with self._sup_lock:
            counts = list(self._restarts)
        return [({"worker": str(i)}, float(count))
                for i, count in enumerate(counts)]

    def _collect_crash_streaks(
        self,
    ) -> Sequence[Tuple[Mapping[str, str], float]]:
        with self._sup_lock:
            streaks = list(self._consecutive)
        return [({"worker": str(i)}, float(streak))
                for i, streak in enumerate(streaks)]

    def _collect_shm(self, which: str):
        samples = []
        for worker in list(self._workers):
            snapshot = worker.transport.snapshot()
            label = str(worker.index)
            if which == "segments":
                for event in ("created", "consumed", "cleaned"):
                    samples.append((
                        {"worker": label, "event": event},
                        float(snapshot.get(f"segments_{event}", 0)),
                    ))
            else:
                for direction in ("sent", "received"):
                    samples.append((
                        {"worker": label, "direction": direction},
                        float(snapshot.get(f"bytes_{direction}", 0)),
                    ))
        return samples

    def metrics_families(self, timeout: Optional[float] = 5.0) -> List[MetricFamily]:
        """Parent instruments plus every live worker's families.

        Worker families are fetched over the pipe (each worker snapshots
        its own registry) and tagged ``worker="N"``; dead or unresponsive
        workers are skipped rather than failing the scrape — the parent's
        ``repro_cluster_worker_up`` gauge reports them.
        """
        families = self.metrics.collect()
        futures: List[Tuple[int, Future]] = []
        for worker in list(self._workers):
            if worker.dead:
                continue
            try:
                futures.append((worker.index, worker.submit("metrics", None)))
            except (WorkerDied, RuntimeError):
                continue
        for index, future in futures:
            try:
                worker_families = future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - a scrape must never fail
                continue
            families.extend(relabel(worker_families, "worker", str(index)))
        return families

    def health_summary(self) -> Tuple[str, Dict[str, Dict[str, object]]]:
        """(status, per-shard detail) for the health endpoint.

        ``"degraded"`` as soon as any worker is dead or its breaker is
        open — the signal a load balancer acts on — else ``"ok"``.
        """
        detail: Dict[str, Dict[str, object]] = {}
        degraded = False
        with self._sup_lock:
            breakers = list(self._breaker)
            restarts = list(self._restarts)
        for worker in list(self._workers):
            index = worker.index
            alive = not worker.dead
            breaker_open = breakers[index] if index < len(breakers) else False
            if not alive or breaker_open:
                degraded = True
            detail[f"worker-{index}"] = {
                "alive": alive,
                "breaker_open": breaker_open,
                "restarts": restarts[index] if index < len(restarts) else 0,
            }
        return ("degraded" if degraded else "ok"), detail

    def describe_workers(self) -> List[Dict[str, object]]:
        """JSON-ready per-shard process detail (the ``/admin/workers`` body)."""
        with self._sup_lock:
            breakers = list(self._breaker)
            restarts = list(self._restarts)
            streaks = list(self._consecutive)
        described: List[Dict[str, object]] = []
        for worker in list(self._workers):
            index = worker.index
            described.append({
                "index": index,
                "alive": not worker.dead,
                "pid": worker.process.pid,
                "incarnation": worker.incarnation,
                "restarts": restarts[index] if index < len(restarts) else 0,
                "consecutive_crashes":
                    streaks[index] if index < len(streaks) else 0,
                "breaker_open":
                    breakers[index] if index < len(breakers) else False,
                "active_segments": worker.active_segments(),
            })
        return described

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def worker_for(self, model: str, bits: Optional[int], mapping: str) -> int:
        """Index of the worker that serves one plan key."""
        return shard_index(PlanKey(model, bits, mapping), self.num_workers)

    def _route(self, model: str, bits: Optional[int], mapping: str) -> _WorkerClient:
        if self._closed:
            raise RuntimeError("cluster is closed")
        index = self.worker_for(model, bits, mapping)
        worker = self._workers[index]
        if worker.dead:
            with self._sup_lock:
                breaker_open = self._breaker[index]
            if breaker_open:
                raise WorkerDied(
                    f"worker {index} crash-looped {self.max_restarts} time(s); "
                    f"its circuit breaker is open and the shard stays down "
                    f"until restart_worker({index}) re-admits it",
                    worker_index=index, breaker_open=True,
                )
            if self.auto_restart:
                raise WorkerDied(
                    f"worker {index} died and is being respawned; the "
                    f"request is safe to retry shortly",
                    worker_index=index,
                )
            raise WorkerDied(
                f"worker {index} has died; its shard is excluded "
                f"until restart_worker({index})",
                worker_index=index,
            )
        return worker

    @property
    def dead_workers(self) -> List[int]:
        """Indices of workers whose process has died (shards excluded)."""
        return [worker.index for worker in list(self._workers) if worker.dead]

    @property
    def open_breakers(self) -> List[int]:
        """Shards whose circuit breaker is open (no automatic respawn)."""
        with self._sup_lock:
            return [index for index, is_open in enumerate(self._breaker)
                    if is_open]

    # ------------------------------------------------------------------ #
    # Self-healing supervisor
    # ------------------------------------------------------------------ #
    def _supervise(self) -> None:
        while not self._sup_stop.wait(0.02):
            now = time.monotonic()
            for index in range(self.num_workers):
                if self._sup_stop.is_set():
                    return
                try:
                    self._supervise_one(index, now)
                except Exception:  # noqa: BLE001
                    # A failed respawn (fd/process exhaustion mid
                    # crash-storm) must not kill the supervisor: the shard
                    # stays dead, the next tick reschedules it with a
                    # larger backoff, and the breaker still bounds the
                    # loop.  Swallowing here is what keeps self-healing
                    # alive for every other shard too.
                    continue

    def _supervise_one(self, index: int, now: float) -> None:
        with self._sup_lock:
            if self._closed or self._breaker[index]:
                return
            worker = self._workers[index]
            if not worker.dead:
                # Healthy: once the latest respawn has survived the
                # stability window, the crash streak is forgiven.
                last = self._last_restart[index]
                if (self._consecutive[index] and last is not None
                        and now - last >= self.stability_window):
                    self._consecutive[index] = 0
                self._restart_due[index] = None
                return
            if self._consecutive[index] >= self.max_restarts:
                # Crash-looping past the budget: trip the breaker instead
                # of burning CPU respawning a shard that cannot stay up.
                self._breaker[index] = True
                self._restart_due[index] = None
                log_event(_LOG, "breaker_open", level=logging.WARNING,
                          worker=index, crashes=self._consecutive[index])
                return
            due = self._restart_due[index]
            if due is None:
                delay = min(
                    self.restart_backoff * (2 ** self._consecutive[index]),
                    self.max_restart_backoff,
                )
                self._restart_due[index] = now + delay
                return
            if now < due:
                return
            self._restart_due[index] = None
            self._consecutive[index] += 1
        self._respawn(index)

    def _respawn(self, index: int) -> None:
        """Replace one dead worker (supervisor path; spawning is slow, so
        it happens outside ``_sup_lock``)."""
        with self._restart_lock:
            if self._closed:
                return
            old = self._workers[index]
            if not old.dead:  # raced with a manual restart_worker
                return
            old.close(timeout=10.0)
            with self._sup_lock:
                incarnation = self._incarnations[index] + 1
            # May raise under resource exhaustion; counters update only on
            # success so a failed attempt is retried (with backoff) rather
            # than recorded as a restart.
            replacement = self._spawn_worker(index, incarnation)
            with self._sup_lock:
                self._incarnations[index] = incarnation
                self._restarts[index] += 1
                self._last_restart[index] = time.monotonic()
            self._workers[index] = replacement
            log_event(_LOG, "worker_respawned", worker=index,
                      incarnation=incarnation, pid=replacement.process.pid)

    def restart_worker(self, index: int) -> None:
        """Replace one worker process, re-admitting its shard.

        Safe for both dead and live workers (a live one is drained and
        shut down first), so it doubles as a rolling-restart primitive.
        A manual restart also resets the shard's crash streak and closes
        its circuit breaker — this is the operator's re-admission path
        after a crash-loop.  The replacement rebuilds its registry over
        the shared directory and serves the exact same shard — the
        partition is a pure function of ``(key, num_workers)``, so no
        other worker is disturbed.
        """
        if self._closed:
            raise RuntimeError("cluster is closed")
        if not 0 <= index < self.num_workers:
            raise ValueError(
                f"worker index {index} out of range 0..{self.num_workers - 1}"
            )
        with self._restart_lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            old = self._workers[index]
            # For a dead worker this just reaps the corpse and fails any
            # straggler futures; for a live one it is the graceful drain.
            old.close(timeout=30.0)
            with self._sup_lock:
                self._incarnations[index] += 1
                self._restarts[index] += 1
                self._consecutive[index] = 0
                self._breaker[index] = False
                self._restart_due[index] = None
                self._last_restart[index] = time.monotonic()
                incarnation = self._incarnations[index]
            self._workers[index] = self._spawn_worker(index, incarnation)
            log_event(_LOG, "worker_restarted", worker=index,
                      incarnation=incarnation,
                      pid=self._workers[index].process.pid)

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #
    def predict_async(
        self,
        images: np.ndarray,
        *,
        model: str,
        mapping: str,
        bits: Optional[int] = None,
        request_id: Optional[str] = None,
    ) -> Future:
        """Submit a deterministic request to its shard; resolves to logits.

        ``request_id`` crosses the pipe inside the payload, so the worker's
        service logs the same trace id the caller holds.
        """
        worker = self._route(model, bits, mapping)
        payload = {"images": np.asarray(images), "model": model, "bits": bits,
                   "mapping": mapping, "request_id": request_id}
        return worker.submit("predict", payload)

    def predict(
        self,
        images: np.ndarray,
        *,
        model: str,
        mapping: str,
        bits: Optional[int] = None,
        timeout: Optional[float] = 60.0,
        request_id: Optional[str] = None,
    ) -> np.ndarray:
        """Deterministic logits from the worker that owns this model."""
        return self.predict_async(
            images, model=model, bits=bits, mapping=mapping,
            request_id=request_id,
        ).result(timeout=timeout)

    def predict_under_variation(
        self,
        images: np.ndarray,
        *,
        model: str,
        mapping: str,
        bits: Optional[int] = None,
        sigma_fraction: float = 0.1,
        num_samples: int = 25,
        seed: int = 0,
        timeout: Optional[float] = 120.0,
        request_id: Optional[str] = None,
    ) -> VariationPrediction:
        """Seeded Monte-Carlo ensemble request, served by the model's shard."""
        worker = self._route(model, bits, mapping)
        payload = {
            "images": np.asarray(images), "model": model, "bits": bits,
            "mapping": mapping, "sigma_fraction": sigma_fraction,
            "num_samples": num_samples, "seed": seed,
            "request_id": request_id,
        }
        return worker.submit("ensemble", payload).result(timeout=timeout)

    # ------------------------------------------------------------------ #
    # Typed entry points (the repro.api backend contract)
    # ------------------------------------------------------------------ #
    def predict_request(
        self, request: PredictRequest, timeout: Optional[float] = 60.0
    ) -> PredictResult:
        """Serve one typed deterministic request via the owning shard.

        Exceptions crossing the pickle boundary (``KeyError`` for unknown
        plans, ``ValueError`` for bad geometry, typed ``ApiError`` raised
        inside the worker's service) go through the same shared fold
        (:mod:`repro.api.backend`) the in-process service uses, so a
        cluster-backed client reports the identical typed failure.
        """
        return typed_predict(self.predict, request, timeout=timeout)

    def ensemble_request(
        self, request: EnsembleRequest, timeout: Optional[float] = 120.0
    ) -> EnsembleResult:
        """Serve one typed ensemble request via the owning shard."""
        return typed_ensemble(self.predict_under_variation, request,
                              timeout=timeout)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def models(self) -> List[dict]:
        """The shared catalogue with digests, annotated with each shard."""
        self.catalogue.refresh()
        described = self.catalogue.describe()
        for entry in described:
            entry["worker"] = self.worker_for(
                entry["model"], entry["bits"], entry["mapping"]
            )
        return described

    def _supervisor_stats(self, index: int) -> Dict[str, object]:
        with self._sup_lock:
            return {
                "auto_restart": self.auto_restart,
                "restarts": self._restarts[index],
                "consecutive_crashes": self._consecutive[index],
                "breaker_open": self._breaker[index],
            }

    def stats_summary(self, timeout: Optional[float] = 10.0) -> Dict[str, dict]:
        """Per-worker serving statistics (JSON-ready), keyed ``worker-N``.

        Each worker's service stats are annotated parent-side with a
        ``transport`` block (shared-memory segments/bytes moved, in-flight
        segment gauge) and a ``supervisor`` block (restart counts, crash
        streak, breaker state).  A dead worker reports ``{"status":
        {"dead": True}}`` instead of failing the whole listing, so
        monitoring keeps working while a shard is down.
        """
        if self._closed:
            raise RuntimeError("cluster is closed")
        workers = list(self._workers)
        futures: Dict[int, Future] = {}
        for worker in workers:
            if worker.dead:
                continue
            try:
                futures[worker.index] = worker.submit("stats", None)
            except (WorkerDied, RuntimeError):
                pass  # died (or closed) between the check and the send
        summary: Dict[str, dict] = {}
        for worker in workers:
            future = futures.get(worker.index)
            try:
                if future is None:
                    raise WorkerDied(f"worker {worker.index} is dead",
                                     worker_index=worker.index)
                stats = dict(future.result(timeout=timeout))
            except WorkerDied:
                stats = {"status": {"dead": True}}
            stats["transport"] = worker.transport_stats()
            stats["supervisor"] = self._supervisor_stats(worker.index)
            summary[f"worker-{worker.index}"] = stats
        return summary

    def wait_ready(self, timeout: Optional[float] = 60.0) -> None:
        """Block until every worker process answers a ping."""
        futures = [worker.submit("ping", None) for worker in list(self._workers)]
        for future in futures:
            future.result(timeout=timeout)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Drain every worker (in-flight requests and micro-batches) and exit."""
        if self._closed:
            return
        self._closed = True
        self._sup_stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout)
        with self._restart_lock:
            for worker in self._workers:
                worker.close(timeout)
        # Belt and braces: nothing under this cluster's prefix may survive
        # (worker sweeps already ran per handle; this catches a handle
        # replaced mid-close).
        cleanup_prefix(self._shm_base)

    def __enter__(self) -> "PlanCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
