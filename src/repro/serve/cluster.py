"""Cross-process plan sharding: one registry directory, N serving workers.

A :class:`PlanCluster` turns a single :class:`~repro.serve.registry.PlanRegistry`
directory into a multi-process serving deployment.  Each worker process
builds its own registry over the shared directory and runs a full
:class:`~repro.serve.service.InferenceService` (one micro-batching
scheduler per model it serves); the parent keeps only the catalogue index
plus one duplex pipe per worker.  Models are partitioned across workers by
a *stable* hash of their canonical key (:func:`shard_index`), so:

* every request for one model always lands on the same worker — its
  micro-batching scheduler sees the full stream for that model and keeps
  coalescing;
* distinct models live in distinct processes, so they execute in true
  parallel, each behind its own GIL;
* the partition is a pure function of ``(key, num_workers)`` — any client
  or router replica computes the same shard without coordination.

The parent/worker protocol is asynchronous: requests carry a correlation
id down the pipe, a pool of handler threads inside the worker serves them
concurrently (so micro-batches still form), and a receiver thread in the
parent scatters replies back onto per-request futures.  Results are exact
— the same float64 arrays an in-process service would return, moved across
a pickle boundary.

Shutdown is graceful: :meth:`PlanCluster.close` sends each worker a
shutdown sentinel; workers stop reading, finish every in-flight request,
drain their schedulers (:meth:`InferenceService.close`), acknowledge, and
exit.

Worker death is detected, not hung on: the parent's receiver thread sees
the pipe EOF the moment a worker process dies, fails every in-flight
future of that worker with the typed
:class:`~repro.api.errors.WorkerDied`, and excludes the shard — further
requests routed to it fail fast with the same typed error while every
other shard keeps serving — until :meth:`PlanCluster.restart_worker`
spawns a replacement process.

``PlanCluster`` satisfies the same backend contract as
``InferenceService`` — including the typed
:meth:`~PlanCluster.predict_request` / :meth:`~PlanCluster.ensemble_request`
entry points of the ``repro.api`` layer — so
:class:`~repro.serve.http.PlanServer` can front either interchangeably.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Dict, List, Optional

import numpy as np

from repro.api.backend import typed_ensemble, typed_predict
from repro.api.errors import WorkerDied
from repro.api.types import (
    EnsembleRequest,
    EnsembleResult,
    PredictRequest,
    PredictResult,
)
from repro.serve.registry import PlanKey, PlanRegistry
from repro.serve.service import InferenceService, VariationPrediction

_SHUTDOWN = None


def shard_index(key: PlanKey, num_workers: int) -> int:
    """The worker that serves ``key``: a stable hash of the canonical name.

    Uses SHA-256 rather than Python's ``hash`` so the partition is
    deterministic across processes and interpreter runs (``hash(str)`` is
    salted per process).
    """
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    digest = hashlib.sha256(key.canonical().encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_workers


# ---------------------------------------------------------------------- #
# Worker process
# ---------------------------------------------------------------------- #
def _worker_main(
    conn,
    directory: str,
    capacity: int,
    max_batch: int,
    max_wait_ms: float,
    handler_threads: int,
    max_queue_depth: Optional[int] = None,
) -> None:
    """Serve requests from the pipe until the shutdown sentinel arrives.

    Module-level so it pickles under the ``spawn`` start method.  Replies
    are ``(request_id, ok, payload)`` where ``payload`` is the result or
    the exception object itself (exceptions re-raise in the caller's
    process with their original type — including the typed ``ApiError``
    subclasses, e.g. backpressure raised by the worker's service).
    """
    registry = PlanRegistry(directory, capacity=capacity)
    service = InferenceService(registry, max_batch=max_batch,
                               max_wait_ms=max_wait_ms,
                               max_queue_depth=max_queue_depth)
    send_lock = threading.Lock()

    def reply(request_id, ok, payload) -> None:
        try:
            with send_lock:
                conn.send((request_id, ok, payload))
        except Exception as error:  # unpicklable payload; degrade to a message
            with send_lock:
                conn.send((request_id, False,
                           RuntimeError(f"{type(payload).__name__}: {error}")))

    def handle(request_id, kind, payload) -> None:
        try:
            result = _dispatch(kind, payload)
        except BaseException as error:  # noqa: BLE001 - forwarded to caller
            reply(request_id, False, error)
            return
        reply(request_id, True, result)

    def _dispatch(kind, payload):
        if kind == "predict" or kind == "ensemble":
            try:
                return _run_request(kind, payload)
            except KeyError:
                # The plan may have been published after this worker
                # indexed the directory; re-scan once and retry.
                registry.refresh()
                return _run_request(kind, payload)
        if kind == "models":
            return service.models()
        if kind == "stats":
            return service.stats_summary()
        if kind == "ping":
            return "pong"
        raise ValueError(f"unknown request kind {kind!r}")

    def _run_request(kind, payload):
        if kind == "predict":
            return service.predict(**payload)
        return service.predict_under_variation(**payload)

    with ThreadPoolExecutor(
        max_workers=handler_threads, thread_name_prefix="plan-worker"
    ) as pool:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is _SHUTDOWN:
                break
            pool.submit(handle, *message)
        # The executor's __exit__ waits for every in-flight request, so all
        # replies are sent before the shutdown acknowledgement below.
    service.close()
    try:
        conn.send((_SHUTDOWN, True, "closed"))
    except (BrokenPipeError, OSError):  # parent already gone
        pass
    conn.close()


# ---------------------------------------------------------------------- #
# Parent-side worker handle
# ---------------------------------------------------------------------- #
class _WorkerClient:
    """One worker process: pipe, pending-future table, receiver thread."""

    def __init__(self, context, index: int, directory: str, capacity: int,
                 max_batch: int, max_wait_ms: float, handler_threads: int,
                 max_queue_depth: Optional[int] = None) -> None:
        self.index = index
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, directory, capacity, max_batch, max_wait_ms,
                  handler_threads, max_queue_depth),
            name=f"plan-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self._conn = parent_conn
        self._pending: Dict[int, Future] = {}
        self._ids = itertools.count()
        self._lock = threading.Lock()
        self._closed = False
        # Flipped (exactly once, by the receiver thread or a failed send)
        # when the worker process died rather than shut down: pending
        # futures get the typed WorkerDied and the shard is excluded until
        # PlanCluster.restart_worker replaces this handle.
        self.dead = False
        self._receiver = threading.Thread(
            target=self._receive_loop, name=f"plan-worker-{index}-recv", daemon=True
        )
        self._receiver.start()

    def submit(self, kind: str, payload) -> Future:
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            if self.dead:
                raise WorkerDied(
                    f"worker {self.index} has died; its shard is excluded "
                    f"until restart_worker({self.index})"
                )
            request_id = next(self._ids)
            self._pending[request_id] = future
            try:
                self._conn.send((request_id, kind, payload))
            except (BrokenPipeError, OSError) as error:
                self._pending.pop(request_id, None)
                self.dead = True
                raise WorkerDied(
                    f"worker {self.index} is not reachable: {error}"
                ) from None
        return future

    def _receive_loop(self) -> None:
        while True:
            try:
                request_id, ok, payload = self._conn.recv()
            except (EOFError, OSError):
                break
            if request_id is _SHUTDOWN:
                break
            with self._lock:
                future = self._pending.pop(request_id, None)
            if future is None:
                continue
            if ok:
                future.set_result(payload)
            elif isinstance(payload, BaseException):
                future.set_exception(payload)
            else:  # pragma: no cover - defensive
                future.set_exception(RuntimeError(str(payload)))
        with self._lock:
            closed = self._closed
            if not closed:
                # The pipe hit EOF without a shutdown handshake: the worker
                # process died underneath us.  Mark the shard dead *before*
                # failing the stranded futures so no new request can slip
                # into the pending table in between.
                self.dead = True
        if closed:
            self._fail_pending(RuntimeError(f"worker {self.index} exited"))
        else:
            self._fail_pending(WorkerDied(
                f"worker {self.index} died with the request in flight"
            ))

    def _fail_pending(self, error: BaseException) -> None:
        with self._lock:
            pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    def close(self, timeout: Optional[float]) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.send(_SHUTDOWN)
            except (BrokenPipeError, OSError):
                pass
        self._receiver.join(timeout=timeout)
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=1.0)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
        self._fail_pending(RuntimeError(f"worker {self.index} is closed"))


# ---------------------------------------------------------------------- #
# The cluster façade
# ---------------------------------------------------------------------- #
class PlanCluster:
    """Multi-process plan serving over one registry directory.

    Parameters mirror :class:`InferenceService` (each worker builds one
    with ``max_batch`` / ``max_wait_ms`` / ``capacity``), plus the process
    topology: ``num_workers`` serving processes and ``handler_threads``
    concurrent requests per worker (keep > 1 or micro-batches cannot
    form).  ``start_method`` selects the multiprocessing context; the
    ``spawn`` default gives workers a clean interpreter regardless of
    parent threads, at the cost of slower startup.
    """

    def __init__(
        self,
        directory,
        num_workers: int = 2,
        capacity: int = 4,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        handler_threads: int = 4,
        start_method: str = "spawn",
        max_queue_depth: Optional[int] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if handler_threads < 1:
            raise ValueError("handler_threads must be at least 1")
        # The parent never deserialises a plan; its registry is the
        # catalogue index used for listings (capacity 1 keeps it tiny).
        self.catalogue = PlanRegistry(directory, capacity=1)
        self.num_workers = num_workers
        self._context = multiprocessing.get_context(start_method)
        # Kept so restart_worker can spawn an identically configured
        # replacement for a dead shard.
        self._worker_config = (str(self.catalogue.directory), capacity,
                               max_batch, max_wait_ms, handler_threads,
                               max_queue_depth)
        self._workers = [
            _WorkerClient(self._context, index, *self._worker_config)
            for index in range(num_workers)
        ]
        self._closed = False

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def worker_for(self, model: str, bits: Optional[int], mapping: str) -> int:
        """Index of the worker that serves one plan key."""
        return shard_index(PlanKey(model, bits, mapping), self.num_workers)

    def _route(self, model: str, bits: Optional[int], mapping: str) -> _WorkerClient:
        if self._closed:
            raise RuntimeError("cluster is closed")
        worker = self._workers[self.worker_for(model, bits, mapping)]
        if worker.dead:
            raise WorkerDied(
                f"worker {worker.index} has died; its shard is excluded "
                f"until restart_worker({worker.index})"
            )
        return worker

    @property
    def dead_workers(self) -> List[int]:
        """Indices of workers whose process has died (shards excluded)."""
        return [worker.index for worker in self._workers if worker.dead]

    def restart_worker(self, index: int) -> None:
        """Replace one worker process, re-admitting its shard.

        Safe for both dead and live workers (a live one is drained and
        shut down first), so it doubles as a rolling-restart primitive.
        The replacement rebuilds its registry over the shared directory
        and serves the exact same shard — the partition is a pure function
        of ``(key, num_workers)``, so no other worker is disturbed.
        """
        if self._closed:
            raise RuntimeError("cluster is closed")
        if not 0 <= index < self.num_workers:
            raise ValueError(
                f"worker index {index} out of range 0..{self.num_workers - 1}"
            )
        old = self._workers[index]
        # For a dead worker this just reaps the corpse and fails any
        # straggler futures; for a live one it is the graceful drain.
        old.close(timeout=30.0)
        self._workers[index] = _WorkerClient(
            self._context, index, *self._worker_config
        )

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #
    def predict_async(
        self,
        images: np.ndarray,
        *,
        model: str,
        mapping: str,
        bits: Optional[int] = None,
    ) -> Future:
        """Submit a deterministic request to its shard; resolves to logits."""
        worker = self._route(model, bits, mapping)
        payload = {"images": np.asarray(images), "model": model, "bits": bits,
                   "mapping": mapping}
        return worker.submit("predict", payload)

    def predict(
        self,
        images: np.ndarray,
        *,
        model: str,
        mapping: str,
        bits: Optional[int] = None,
        timeout: Optional[float] = 60.0,
    ) -> np.ndarray:
        """Deterministic logits from the worker that owns this model."""
        return self.predict_async(
            images, model=model, bits=bits, mapping=mapping
        ).result(timeout=timeout)

    def predict_under_variation(
        self,
        images: np.ndarray,
        *,
        model: str,
        mapping: str,
        bits: Optional[int] = None,
        sigma_fraction: float = 0.1,
        num_samples: int = 25,
        seed: int = 0,
        timeout: Optional[float] = 120.0,
    ) -> VariationPrediction:
        """Seeded Monte-Carlo ensemble request, served by the model's shard."""
        worker = self._route(model, bits, mapping)
        payload = {
            "images": np.asarray(images), "model": model, "bits": bits,
            "mapping": mapping, "sigma_fraction": sigma_fraction,
            "num_samples": num_samples, "seed": seed,
        }
        return worker.submit("ensemble", payload).result(timeout=timeout)

    # ------------------------------------------------------------------ #
    # Typed entry points (the repro.api backend contract)
    # ------------------------------------------------------------------ #
    def predict_request(
        self, request: PredictRequest, timeout: Optional[float] = 60.0
    ) -> PredictResult:
        """Serve one typed deterministic request via the owning shard.

        Exceptions crossing the pickle boundary (``KeyError`` for unknown
        plans, ``ValueError`` for bad geometry, typed ``ApiError`` raised
        inside the worker's service) go through the same shared fold
        (:mod:`repro.api.backend`) the in-process service uses, so a
        cluster-backed client reports the identical typed failure.
        """
        return typed_predict(self.predict, request, timeout=timeout)

    def ensemble_request(
        self, request: EnsembleRequest, timeout: Optional[float] = 120.0
    ) -> EnsembleResult:
        """Serve one typed ensemble request via the owning shard."""
        return typed_ensemble(self.predict_under_variation, request,
                              timeout=timeout)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def models(self) -> List[dict]:
        """The shared catalogue with digests, annotated with each shard."""
        self.catalogue.refresh()
        described = self.catalogue.describe()
        for entry in described:
            entry["worker"] = self.worker_for(
                entry["model"], entry["bits"], entry["mapping"]
            )
        return described

    def stats_summary(self, timeout: Optional[float] = 10.0) -> Dict[str, dict]:
        """Per-worker serving statistics (JSON-ready), keyed ``worker-N``.

        A dead worker reports ``{"status": {"dead": True}}`` instead of
        failing the whole listing, so monitoring keeps working while a
        shard is down.
        """
        if self._closed:
            raise RuntimeError("cluster is closed")
        futures: Dict[int, Future] = {}
        for worker in self._workers:
            if worker.dead:
                continue
            try:
                futures[worker.index] = worker.submit("stats", None)
            except WorkerDied:
                pass  # died between the check and the send
        summary: Dict[str, dict] = {}
        for worker in self._workers:
            future = futures.get(worker.index)
            try:
                if future is None:
                    raise WorkerDied(f"worker {worker.index} is dead")
                summary[f"worker-{worker.index}"] = future.result(timeout=timeout)
            except WorkerDied:
                summary[f"worker-{worker.index}"] = {"status": {"dead": True}}
        return summary

    def wait_ready(self, timeout: Optional[float] = 60.0) -> None:
        """Block until every worker process answers a ping."""
        futures = [worker.submit("ping", None) for worker in self._workers]
        for future in futures:
            future.result(timeout=timeout)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Drain every worker (in-flight requests and micro-batches) and exit."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.close(timeout)

    def __enter__(self) -> "PlanCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
