"""Cross-process plan sharding: one registry directory, N serving workers.

A :class:`PlanCluster` turns a single :class:`~repro.serve.registry.PlanRegistry`
directory into a multi-process serving deployment.  Each worker process
builds its own registry over the shared directory and runs a full
:class:`~repro.serve.service.InferenceService` (one micro-batching
scheduler per model it serves); the parent keeps only the catalogue index
plus one duplex pipe per worker.  Models are partitioned across workers by
a consistent-hash ring with virtual nodes (:mod:`repro.serve.ring`): each
key's ordered owner list is the first ``replicas`` distinct workers
clockwise from its ring position, so:

* every model is served by R distinct workers (``replicas``, default 2,
  capped by ``num_workers``) — one dead or breaker-open shard degrades a
  model to R-1 replicas instead of taking it offline;
* requests route to the least-loaded live replica (ties prefer ring
  order, so an idle model sticks to its primary and its micro-batching
  scheduler keeps coalescing), and a request stranded by a worker death
  fails over to the next replica *immediately* instead of waiting for the
  respawn;
* the partition is a pure function of ``(key, num_workers, replicas)`` —
  any client or router replica computes the same owner list without
  coordination — and adding/removing a worker moves only ~1/N of keys, so
  :meth:`PlanCluster.restart_worker` is a zero-downtime rolling restart;
* with ``replicas=1`` the ring degrades to the pre-replication semantics
  exactly: one owner per key, fail-fast on a dead shard.

The parent/worker protocol is asynchronous: requests carry a correlation
id down the pipe, a pool of handler threads inside the worker serves them
concurrently (so micro-batches still form), and a receiver thread in the
parent scatters replies back onto per-request futures.  Results are exact
— the same float64 arrays an in-process service would return, moved across
a pickle boundary.

**Shared-memory transport** (:mod:`repro.serve.shm`): request/response
arrays at or above ``shm_threshold`` bytes do not ride the pickle stream —
they are copied once into a named ``multiprocessing.shared_memory``
segment and travel as a tiny ``(name, dtype, shape)`` descriptor; the
receiving side copies the bytes out and unlinks the segment.  Results stay
bit-identical (the copy is a memcpy and the descriptor carries the full
dtype), small payloads keep using the pipe, and segment cleanup is
accounted: the parent tracks every in-flight segment per request and
sweeps the per-worker name prefix when a worker dies, so a SIGKILL'd
worker cannot leak ``/dev/shm`` entries.

**Self-healing** (``auto_restart=True``): a supervisor thread watches for
dead workers and respawns each one with bounded exponential backoff
(``restart_backoff`` doubling up to ``max_restart_backoff``).  A worker
that keeps crash-looping — ``max_restarts`` consecutive deaths without
surviving ``stability_window`` seconds — trips its shard's *circuit
breaker*: the supervisor stops respawning it and requests to the shard
fail fast with :class:`~repro.api.errors.WorkerDied` carrying
``breaker_open=True`` until an operator re-admits it via
:meth:`PlanCluster.restart_worker` (which resets the breaker).  While the
breaker is *closed*, every protocol request is idempotent/deterministic,
so :class:`~repro.api.client.ClusterClient` transparently retries requests
that failed with ``WorkerDied`` — the combination loses zero requests
across a worker SIGKILL.  Under replication (R >= 2) the ring absorbs the
death *before* the client ever sees it: a breaker-open or dead owner is
skipped in favour of a live replica (counted by
``repro_ring_failover_total``), and ``WorkerDied`` reaches the caller only
when every one of a key's R owners is unavailable — with
``breaker_open=True`` only when *all* of them are breaker-open.

Shutdown is graceful: :meth:`PlanCluster.close` sends each worker a
shutdown sentinel; workers stop reading, finish every in-flight request,
drain their schedulers (:meth:`InferenceService.close`), acknowledge, and
exit.

``PlanCluster`` satisfies the same backend contract as
``InferenceService`` — including the typed
:meth:`~PlanCluster.predict_request` / :meth:`~PlanCluster.ensemble_request`
entry points of the ``repro.api`` layer — so
:class:`~repro.serve.http.PlanServer` can front either interchangeably.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.backend import typed_ensemble, typed_predict
from repro.api.errors import WorkerDied
from repro.obs import (
    LogfmtFormatter,
    MetricFamily,
    MetricsRegistry,
    log_event,
    relabel,
)
from repro.runtime.intkernels import PRECISIONS
from repro.api.types import (
    EnsembleRequest,
    EnsembleResult,
    PredictRequest,
    PredictResult,
)
from repro.serve.registry import PlanKey, PlanRegistry
from repro.serve.ring import (
    DEFAULT_REPLICAS,
    DEFAULT_VNODES,
    HashRing,
    get_ring,
)
from repro.serve.service import InferenceService, VariationPrediction
from repro.serve.shm import (
    DEFAULT_SHM_THRESHOLD,
    SegmentStats,
    cleanup_prefix,
    offload_payload,
    restore_payload,
    unlink_segment,
)

_SHUTDOWN = None

_LOG = logging.getLogger("repro.serve.cluster")

#: Distinguishes the shared-memory prefixes of clusters living in one
#: parent process (tests routinely run several clusters per process).
_CLUSTER_IDS = itertools.count()


def shard_index(key: PlanKey, num_workers: int) -> int:
    """The primary owner of ``key``: its first worker on the consistent-
    hash ring (:mod:`repro.serve.ring`).

    SHA-256-based point hashing keeps the partition deterministic across
    processes and interpreter runs (``hash(str)`` is salted per process);
    the ring keeps it *stable under resizing* — changing ``num_workers``
    by one moves only ~1/N of keys, where the old modulo partition moved
    nearly all of them.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be at least 1")
    return get_ring(num_workers).primary(key.canonical())


# ---------------------------------------------------------------------- #
# Worker process
# ---------------------------------------------------------------------- #
def _worker_main(
    conn,
    directory: str,
    capacity: int,
    max_batch: Union[int, str],
    max_wait_ms: float,
    handler_threads: int,
    max_queue_depth: Optional[int] = None,
    max_concurrent_ensembles: Optional[int] = None,
    shm_threshold: Optional[int] = None,
    precision: str = "float64",
    shm_prefix: str = "",
    worker_index: int = 0,
    log_path: Optional[str] = None,
) -> None:
    """Serve requests from the pipe until the shutdown sentinel arrives.

    Module-level so it pickles under the ``spawn`` start method.  Replies
    are ``(request_id, ok, payload)`` where ``payload`` is the result or
    the exception object itself (exceptions re-raise in the caller's
    process with their original type — including the typed ``ApiError``
    subclasses, e.g. backpressure raised by the worker's service).  Arrays
    above ``shm_threshold`` arrive and leave as shared-memory descriptors
    (consumed destructively on receipt), named under ``shm_prefix`` so the
    parent can sweep anything this process leaves behind if it dies.

    With ``log_path`` set, every ``repro.*`` logger in this process writes
    logfmt lines there — each served request logs its trace id, model,
    shard, and latency, so one grep over the worker files reconstructs a
    request's cross-process path.
    """
    if log_path is not None:
        handler = logging.FileHandler(log_path, encoding="utf-8")
        handler.setFormatter(LogfmtFormatter())
        root = logging.getLogger("repro")
        root.addHandler(handler)
        root.setLevel(logging.INFO)
    registry = PlanRegistry(directory, capacity=capacity)
    service = InferenceService(registry, max_batch=max_batch,
                               max_wait_ms=max_wait_ms,
                               max_queue_depth=max_queue_depth,
                               max_concurrent_ensembles=max_concurrent_ensembles,
                               precision=precision,
                               shard=worker_index)
    send_lock = threading.Lock()
    segment_seq = itertools.count()

    def allocate_name() -> str:
        return f"{shm_prefix}{next(segment_seq)}"

    def reply(request_id, ok, payload) -> None:
        names: List[str] = []
        if ok:
            payload, names = offload_payload(payload, shm_threshold,
                                             allocate_name)
        try:
            with send_lock:
                conn.send((request_id, ok, payload))
        except Exception as error:  # unpicklable payload; degrade to a message
            for name in names:  # the descriptors never reached the parent
                unlink_segment(name)
            with send_lock:
                conn.send((request_id, False,
                           RuntimeError(f"{type(payload).__name__}: {error}")))

    def handle(request_id, kind, payload) -> None:
        try:
            payload = restore_payload(payload)
            result = _dispatch(kind, payload)
        except BaseException as error:  # noqa: BLE001 - forwarded to caller
            reply(request_id, False, error)
            return
        reply(request_id, True, result)

    def _dispatch(kind, payload):
        if kind == "predict" or kind == "ensemble":
            try:
                return _run_request(kind, payload)
            except KeyError:
                # The plan may have been published after this worker
                # indexed the directory; re-scan once and retry.
                registry.refresh()
                return _run_request(kind, payload)
        if kind == "refresh":
            # Parent-broadcast re-scan (a plan was published after this
            # worker indexed the directory): every replica picks up the
            # new key, not just the one that happened to hit the KeyError.
            registry.refresh()
            return len(registry)
        if kind == "models":
            return service.models()
        if kind == "stats":
            return service.stats_summary()
        if kind == "metrics":
            # Families are frozen tuples of str/float — they cross the
            # pickle boundary as-is for the parent to merge and relabel.
            return service.metrics_families()
        if kind == "ping":
            return "pong"
        raise ValueError(f"unknown request kind {kind!r}")

    def _run_request(kind, payload):
        if kind == "predict":
            return service.predict(**payload)
        return service.predict_under_variation(**payload)

    with ThreadPoolExecutor(
        max_workers=handler_threads, thread_name_prefix="plan-worker"
    ) as pool:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is _SHUTDOWN:
                break
            pool.submit(handle, *message)
        # The executor's __exit__ waits for every in-flight request, so all
        # replies are sent before the shutdown acknowledgement below.
    service.close()
    try:
        conn.send((_SHUTDOWN, True, "closed"))
    except (BrokenPipeError, OSError):  # parent already gone
        pass
    conn.close()


# ---------------------------------------------------------------------- #
# Parent-side worker handle
# ---------------------------------------------------------------------- #
class _WorkerClient:
    """One worker process: pipe, pending-future table, receiver thread."""

    def __init__(self, context, index: int, directory: str, capacity: int,
                 max_batch: Union[int, str], max_wait_ms: float,
                 handler_threads: int,
                 max_queue_depth: Optional[int] = None,
                 max_concurrent_ensembles: Optional[int] = None,
                 shm_threshold: Optional[int] = None,
                 precision: str = "float64",
                 shm_base: str = "", incarnation: int = 0,
                 log_dir: Optional[str] = None) -> None:
        self.index = index
        self.incarnation = incarnation
        self.shm_threshold = shm_threshold
        # One log file per shard, shared by every incarnation (append
        # mode), so restarts do not fragment a shard's request trace.
        log_path = (
            os.path.join(log_dir, f"worker-{index}.log")
            if log_dir is not None else None
        )
        # Segment names are per-(worker, incarnation): "...p..." segments
        # are created by the parent for this worker, "...w..." segments by
        # the worker itself.  Both prefixes are swept when the process dies
        # or the handle is closed, so no incarnation can leak into the next.
        self._parent_prefix = f"{shm_base}p{index}i{incarnation}n"
        self._worker_prefix = f"{shm_base}w{index}i{incarnation}n"
        self._segment_seq = itertools.count()
        self.transport = SegmentStats()
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, directory, capacity, max_batch, max_wait_ms,
                  handler_threads, max_queue_depth, max_concurrent_ensembles,
                  shm_threshold, precision, self._worker_prefix,
                  index, log_path),
            name=f"plan-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self._conn = parent_conn
        # request_id -> (future, names of in-flight shm segments the parent
        # created for this request; swept if the worker dies before
        # consuming them).
        self._pending: Dict[int, Tuple[Future, List[str]]] = {}
        self._ids = itertools.count()
        self._lock = threading.Lock()
        self._closed = False
        # Flipped (exactly once, by the receiver thread or a failed send)
        # when the worker process died rather than shut down: pending
        # futures get the typed WorkerDied and the shard is excluded until
        # a restart replaces this handle.
        self.dead = False
        # Set by the cluster just before a rolling restart drains this
        # handle: the router prefers any other live replica, so with
        # replicas >= 2 the restart is zero-downtime.  The handle still
        # serves as a last resort (replicas=1 keeps today's semantics).
        self.retiring = False
        self._receiver = threading.Thread(
            target=self._receive_loop, name=f"plan-worker-{index}-recv", daemon=True
        )
        self._receiver.start()

    def _allocate_name(self) -> str:
        return f"{self._parent_prefix}{next(self._segment_seq)}"

    def active_segments(self) -> int:
        """Parent-created segments still in flight (0 when drained)."""
        with self._lock:
            return sum(len(names) for _, names in self._pending.values())

    def load(self) -> int:
        """Requests currently in flight — the router's least-loaded signal."""
        with self._lock:
            return len(self._pending)

    def transport_stats(self) -> Dict[str, object]:
        """JSON-ready shared-memory transport counters (parent side)."""
        stats: Dict[str, object] = dict(self.transport.snapshot())
        stats["active_segments"] = self.active_segments()
        stats["shm_threshold"] = self.shm_threshold
        return stats

    def submit(self, kind: str, payload) -> Future:
        # Offloading copies the request arrays, so it happens before the
        # lock — a big batch must not stall the receiver's reply handling.
        payload, names = offload_payload(payload, self.shm_threshold,
                                         self._allocate_name, self.transport)
        future: Future = Future()
        with self._lock:
            if self._closed:
                self._discard_segments(names)
                raise RuntimeError("cluster is closed")
            if self.dead:
                self._discard_segments(names)
                raise WorkerDied(
                    f"worker {self.index} has died; its shard is excluded "
                    f"until it is restarted",
                    worker_index=self.index,
                )
            request_id = next(self._ids)
            self._pending[request_id] = (future, names)
            try:
                self._conn.send((request_id, kind, payload))
            except (BrokenPipeError, OSError) as error:
                self._pending.pop(request_id, None)
                self._discard_segments(names)
                self.dead = True
                raise WorkerDied(
                    f"worker {self.index} is not reachable: {error}",
                    worker_index=self.index,
                ) from None
        return future

    def _discard_segments(self, names: List[str]) -> None:
        removed = sum(1 for name in names if unlink_segment(name))
        if removed:
            self.transport.cleaned(removed)

    def _receive_loop(self) -> None:
        while True:
            try:
                request_id, ok, payload = self._conn.recv()
            except (EOFError, OSError):
                break
            if request_id is _SHUTDOWN:
                break
            with self._lock:
                entry = self._pending.pop(request_id, None)
            if entry is None:
                continue
            future, names = entry
            # The worker consumed the request segments before dispatching;
            # anything still present (a reply sent before restore, which
            # only a buggy worker could produce) is swept here so no reply
            # path can leak parent-created segments.
            self._discard_segments(names)
            if ok:
                try:
                    payload = restore_payload(payload, self.transport)
                except Exception as error:  # segment swept under us
                    future.set_exception(WorkerDied(
                        f"worker {self.index} reply lost its shared-memory "
                        f"payload: {error}",
                        worker_index=self.index,
                    ))
                    continue
                future.set_result(payload)
            elif isinstance(payload, BaseException):
                future.set_exception(payload)
            else:  # pragma: no cover - defensive
                future.set_exception(RuntimeError(str(payload)))
        with self._lock:
            closed = self._closed
            if not closed:
                # The pipe hit EOF without a shutdown handshake: the worker
                # process died underneath us.  Mark the shard dead *before*
                # failing the stranded futures so no new request can slip
                # into the pending table in between.
                self.dead = True
        if closed:
            self._fail_pending(RuntimeError(f"worker {self.index} exited"))
        else:
            self._fail_pending(WorkerDied(
                f"worker {self.index} died with the request in flight",
                worker_index=self.index,
            ))
        # Sweep both shm prefixes: request segments the dead worker never
        # consumed and reply segments whose descriptors never arrived.
        self._sweep_segments()

    def _fail_pending(self, error: BaseException) -> None:
        with self._lock:
            pending, self._pending = self._pending, {}
        for future, names in pending.values():
            self._discard_segments(names)
            if not future.done():
                future.set_exception(error)

    def _sweep_segments(self) -> None:
        cleanup_prefix(self._parent_prefix, self.transport)
        cleanup_prefix(self._worker_prefix, self.transport)

    def close(self, timeout: Optional[float]) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.send(_SHUTDOWN)
            except (BrokenPipeError, OSError):
                pass
        self._receiver.join(timeout=timeout)
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=1.0)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
        self._fail_pending(RuntimeError(f"worker {self.index} is closed"))
        self._sweep_segments()


# ---------------------------------------------------------------------- #
# The cluster façade
# ---------------------------------------------------------------------- #
class PlanCluster:
    """Multi-process plan serving over one registry directory.

    Parameters mirror :class:`InferenceService` (each worker builds one
    with ``max_batch`` / ``max_wait_ms`` / ``capacity`` /
    ``max_queue_depth`` / ``max_concurrent_ensembles``), plus the process
    topology: ``num_workers`` serving processes and ``handler_threads``
    concurrent requests per worker (keep > 1 or micro-batches cannot
    form).  ``start_method`` selects the multiprocessing context; the
    ``spawn`` default gives workers a clean interpreter regardless of
    parent threads, at the cost of slower startup.

    ``replicas`` is the replication factor R (capped by ``num_workers``):
    each model's ordered owner list is the first R distinct workers
    clockwise from its key's position on a consistent-hash ring with
    ``vnodes`` virtual nodes per worker (:mod:`repro.serve.ring`).
    Requests go to the least-loaded live owner, fail over to the next on a
    worker death, and fail fast with ``breaker_open=True`` only when every
    owner's circuit breaker is open.  ``replicas=1`` reproduces the
    pre-ring single-shard semantics exactly.

    ``shm_threshold`` switches request/response arrays of at least that
    many bytes onto the shared-memory transport (``None`` or a negative
    value keeps everything on the pipe; ``0`` forces every array through
    shared memory — useful in tests).  ``precision`` is forwarded to every
    worker's service: each worker lowers the plans it serves with
    :meth:`~repro.runtime.plan.InferencePlan.with_precision` when pinning
    them, so a whole cluster can serve through the integer kernels.  ``auto_restart=True`` starts the
    self-healing supervisor: dead workers respawn with exponential backoff
    (``restart_backoff`` doubling per consecutive crash up to
    ``max_restart_backoff``); ``max_restarts`` consecutive crashes — a
    crash "streak" resets once a worker survives ``stability_window``
    seconds — open the shard's circuit breaker instead of retrying
    forever.
    """

    def __init__(
        self,
        directory,
        num_workers: int = 2,
        replicas: int = DEFAULT_REPLICAS,
        vnodes: int = DEFAULT_VNODES,
        capacity: int = 4,
        max_batch: Union[int, str] = 64,
        max_wait_ms: float = 2.0,
        handler_threads: int = 4,
        start_method: str = "spawn",
        max_queue_depth: Optional[int] = None,
        max_concurrent_ensembles: Optional[int] = None,
        shm_threshold: Optional[int] = DEFAULT_SHM_THRESHOLD,
        precision: str = "float64",
        auto_restart: bool = False,
        max_restarts: int = 5,
        restart_backoff: float = 0.05,
        max_restart_backoff: float = 2.0,
        stability_window: float = 2.0,
        log_dir: Optional[str] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        if handler_threads < 1:
            raise ValueError("handler_threads must be at least 1")
        if max_restarts < 1:
            raise ValueError("max_restarts must be at least 1")
        if restart_backoff < 0 or max_restart_backoff < 0:
            raise ValueError("restart backoffs must be non-negative")
        if precision not in PRECISIONS:
            # Fail in the parent, not nine spawned workers later.
            raise ValueError(
                f"unknown precision {precision!r}; expected one of {PRECISIONS}"
            )
        # The parent never deserialises a plan; its registry is the
        # catalogue index used for listings (capacity 1 keeps it tiny).
        self.catalogue = PlanRegistry(directory, capacity=1)
        self.num_workers = num_workers
        self.replicas = replicas
        #: R capped by the worker count — what the router actually uses.
        self.effective_replicas = min(replicas, num_workers)
        self._ring: HashRing = get_ring(num_workers, vnodes)
        self.auto_restart = bool(auto_restart)
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self.max_restart_backoff = max_restart_backoff
        self.stability_window = stability_window
        self._context = multiprocessing.get_context(start_method)
        # The trailing "_" terminates the cluster id so close()'s
        # cleanup_prefix for cluster 1 can never match cluster 11's
        # segments in the same process.
        self._shm_base = f"rps{os.getpid():x}c{next(_CLUSTER_IDS)}_"
        # Per-shard structured log files (worker-N.log, logfmt) when set.
        self._log_dir = str(log_dir) if log_dir is not None else None
        if self._log_dir is not None:
            os.makedirs(self._log_dir, exist_ok=True)
        # Kept so worker restarts can spawn identically configured
        # replacements for a dead shard.
        self._worker_config = (str(self.catalogue.directory), capacity,
                               max_batch, max_wait_ms, handler_threads,
                               max_queue_depth, max_concurrent_ensembles,
                               shm_threshold, precision)
        self._workers = [
            self._spawn_worker(index, incarnation=0)
            for index in range(num_workers)
        ]
        self._closed = False
        # Supervisor bookkeeping, all guarded by _sup_lock.  _restart_lock
        # serialises actual worker replacement (supervisor vs. manual
        # restart_worker) without holding up state reads.
        self._sup_lock = threading.Lock()
        self._restart_lock = threading.Lock()
        self._restarts = [0] * num_workers
        self._consecutive = [0] * num_workers
        self._breaker = [False] * num_workers
        self._restart_due: List[Optional[float]] = [None] * num_workers
        self._last_restart: List[Optional[float]] = [None] * num_workers
        self._incarnations = [0] * num_workers
        self._sup_stop = threading.Event()
        # Parent-side registry: worker liveness, breaker/restart state, and
        # shm transport ledgers, all exported live via callbacks (the same
        # state stats_summary() reports).
        self.metrics = MetricsRegistry()
        self._build_instruments()
        self._supervisor: Optional[threading.Thread] = None
        if self.auto_restart:
            self._supervisor = threading.Thread(
                target=self._supervise, name="plan-cluster-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    def _spawn_worker(self, index: int, incarnation: int) -> _WorkerClient:
        return _WorkerClient(
            self._context, index, *self._worker_config,
            shm_base=self._shm_base, incarnation=incarnation,
            log_dir=self._log_dir,
        )

    # ------------------------------------------------------------------ #
    # Observability (parent side)
    # ------------------------------------------------------------------ #
    def _build_instruments(self) -> None:
        metrics = self.metrics
        self._routed_total = metrics.counter(
            "repro_ring_routed_total",
            "Requests routed per worker and role (primary = the key's "
            "first ring owner, replica = any later owner).",
            labels=("worker", "role"),
        )
        self._failover_total = metrics.counter(
            "repro_ring_failover_total",
            "Requests routed past an unavailable owner to a live replica, "
            "by skipped worker and reason.",
            labels=("worker", "reason"),
        )
        self._refresh_broadcasts = metrics.counter(
            "repro_cluster_registry_refreshes_total",
            "Registry re-scan broadcasts to every live worker (a plan was "
            "published after cluster start).",
        )
        metrics.register_callback(
            "repro_ring_replicas", "gauge",
            "Replication factor: configured R and effective R (capped by "
            "the worker count).",
            lambda: [({"kind": "configured"}, float(self.replicas)),
                     ({"kind": "effective"}, float(self.effective_replicas))],
        )
        metrics.register_callback(
            "repro_ring_vnodes", "gauge",
            "Virtual nodes per worker on the consistent-hash ring.",
            lambda: [({}, float(self._ring.vnodes))],
        )
        metrics.register_callback(
            "repro_ring_model_replicas_live", "gauge",
            "Live (alive, breaker closed) owners per served model key.",
            self._collect_model_replicas,
        )
        metrics.register_callback(
            "repro_cluster_worker_up", "gauge",
            "1 while the shard's worker process is alive, else 0.",
            lambda: [
                ({"worker": str(worker.index)}, 0.0 if worker.dead else 1.0)
                for worker in list(self._workers)
            ],
        )
        metrics.register_callback(
            "repro_cluster_breaker_open", "gauge",
            "1 while the shard's circuit breaker is open.",
            self._collect_breakers,
        )
        metrics.register_callback(
            "repro_cluster_worker_restarts_total", "counter",
            "Times each shard's worker has been replaced.",
            self._collect_restarts,
        )
        metrics.register_callback(
            "repro_cluster_worker_consecutive_crashes", "gauge",
            "Current crash streak per shard (resets after stability_window).",
            self._collect_crash_streaks,
        )
        metrics.register_callback(
            "repro_cluster_shm_segments_total", "counter",
            "Shared-memory segments by lifecycle event (created/consumed/"
            "cleaned), per shard, parent side.",
            lambda: self._collect_shm("segments"),
        )
        metrics.register_callback(
            "repro_cluster_shm_bytes_total", "counter",
            "Bytes moved through shared memory per shard and direction, "
            "parent side.",
            lambda: self._collect_shm("bytes"),
        )
        metrics.register_callback(
            "repro_cluster_shm_active_segments", "gauge",
            "Parent-created segments currently in flight per shard.",
            lambda: [
                ({"worker": str(worker.index)}, float(worker.active_segments()))
                for worker in list(self._workers)
            ],
        )

    def _collect_breakers(self) -> Sequence[Tuple[Mapping[str, str], float]]:
        with self._sup_lock:
            flags = list(self._breaker)
        return [({"worker": str(i)}, 1.0 if flag else 0.0)
                for i, flag in enumerate(flags)]

    def _collect_restarts(self) -> Sequence[Tuple[Mapping[str, str], float]]:
        with self._sup_lock:
            counts = list(self._restarts)
        return [({"worker": str(i)}, float(count))
                for i, count in enumerate(counts)]

    def _collect_crash_streaks(
        self,
    ) -> Sequence[Tuple[Mapping[str, str], float]]:
        with self._sup_lock:
            streaks = list(self._consecutive)
        return [({"worker": str(i)}, float(streak))
                for i, streak in enumerate(streaks)]

    def _collect_model_replicas(
        self,
    ) -> Sequence[Tuple[Mapping[str, str], float]]:
        workers, breakers, _, _ = self._snapshot_state()
        available = [not worker.dead and not breakers[worker.index]
                     for worker in workers]
        samples = []
        # Ring placement is version-blind: a __v2 artifact lives on the same
        # shards as its base model, so requests routed by base key can be
        # canaried onto it inside the worker without re-routing.
        for base in dict.fromkeys(k.base_canonical()
                                  for k in self.catalogue.keys()):
            owners = self._ring.owners(base, self.effective_replicas)
            live = sum(1 for index in owners if available[index])
            samples.append(({"model": base}, float(live)))
        return samples

    def _collect_shm(self, which: str):
        samples = []
        for worker in list(self._workers):
            snapshot = worker.transport.snapshot()
            label = str(worker.index)
            if which == "segments":
                for event in ("created", "consumed", "cleaned"):
                    samples.append((
                        {"worker": label, "event": event},
                        float(snapshot.get(f"segments_{event}", 0)),
                    ))
            else:
                for direction in ("sent", "received"):
                    samples.append((
                        {"worker": label, "direction": direction},
                        float(snapshot.get(f"bytes_{direction}", 0)),
                    ))
        return samples

    def metrics_families(self, timeout: Optional[float] = 5.0) -> List[MetricFamily]:
        """Parent instruments plus every live worker's families.

        Worker families are fetched over the pipe (each worker snapshots
        its own registry) and tagged ``worker="N"``; dead or unresponsive
        workers are skipped rather than failing the scrape — the parent's
        ``repro_cluster_worker_up`` gauge reports them.
        """
        families = self.metrics.collect()
        futures: List[Tuple[int, Future]] = []
        for worker in list(self._workers):
            if worker.dead:
                continue
            try:
                futures.append((worker.index, worker.submit("metrics", None)))
            except (WorkerDied, RuntimeError):
                continue
        for index, future in futures:
            try:
                worker_families = future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - a scrape must never fail
                continue
            families.extend(relabel(worker_families, "worker", str(index)))
        return families

    def _snapshot_state(
        self,
    ) -> Tuple[List[_WorkerClient], List[bool], List[int], List[int]]:
        """One consistent (workers, breakers, restarts, streaks) snapshot.

        Handle swaps during a restart happen under the same lock, so no
        reader can observe a respawn half-applied — a worker is never
        counted dead under the old handle while its restart is already in
        the counters (or vice versa).
        """
        with self._sup_lock:
            return (list(self._workers), list(self._breaker),
                    list(self._restarts), list(self._consecutive))

    def health_summary(self) -> Tuple[str, Dict[str, Dict[str, object]]]:
        """(status, detail) for the health endpoint.

        ``"degraded"`` as soon as any worker is dead or its breaker is
        open — the signal a load balancer acts on — else ``"ok"``.  The
        detail maps ``worker-N`` to per-shard liveness and, under the
        ``"models"`` key, each served model to its replica health:
        ``{"replicas": R, "live": n, "state": ...}`` where ``state`` is
        ``"ok"`` (all R owners live), ``"degraded"`` (serving on fewer
        than R replicas), or ``"down"`` (no live owner — the only case
        where requests for the model actually fail).
        """
        detail: Dict[str, Dict[str, object]] = {}
        degraded = False
        workers, breakers, restarts, _ = self._snapshot_state()
        available = [False] * self.num_workers
        for worker in workers:
            index = worker.index
            alive = not worker.dead
            breaker_open = breakers[index] if index < len(breakers) else False
            available[index] = alive and not breaker_open
            if not alive or breaker_open:
                degraded = True
            detail[f"worker-{index}"] = {
                "alive": alive,
                "breaker_open": breaker_open,
                "restarts": restarts[index] if index < len(restarts) else 0,
            }
        models: Dict[str, Dict[str, object]] = {}
        # Version-blind placement: all versions of a model share the base
        # stem's ring owners, so health is reported once per base model.
        for base in dict.fromkeys(k.base_canonical()
                                  for k in self.catalogue.keys()):
            owners = self._ring.owners(base, self.effective_replicas)
            live = sum(1 for index in owners if available[index])
            state = ("ok" if live == len(owners)
                     else "degraded" if live else "down")
            models[base] = {
                "replicas": len(owners), "live": live, "state": state,
            }
        detail["models"] = models
        return ("degraded" if degraded else "ok"), detail

    def describe_workers(self) -> List[Dict[str, object]]:
        """JSON-ready per-shard process detail (the ``/admin/workers`` body).

        Besides process liveness, each entry carries the shard's ring
        placement: every model key the worker owns, split into the keys it
        is *primary* for (first ring owner) and the keys it backs as a
        *replica*.
        """
        workers, breakers, restarts, streaks = self._snapshot_state()
        ownership: Dict[int, Dict[str, List[str]]] = {
            worker.index: {"primary": [], "replica": []}
            for worker in workers
        }
        for base in dict.fromkeys(k.base_canonical()
                                  for k in self.catalogue.keys()):
            owners = self._ring.owners(base, self.effective_replicas)
            for position, index in enumerate(owners):
                if index in ownership:
                    role = "primary" if position == 0 else "replica"
                    ownership[index][role].append(base)
        described: List[Dict[str, object]] = []
        for worker in workers:
            index = worker.index
            described.append({
                "index": index,
                "alive": not worker.dead,
                "retiring": worker.retiring,
                "pid": worker.process.pid,
                "incarnation": worker.incarnation,
                "restarts": restarts[index] if index < len(restarts) else 0,
                "consecutive_crashes":
                    streaks[index] if index < len(streaks) else 0,
                "breaker_open":
                    breakers[index] if index < len(breakers) else False,
                "active_segments": worker.active_segments(),
                "load": worker.load(),
                "serves": ownership.get(index,
                                        {"primary": [], "replica": []}),
            })
        return described

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def worker_for(self, model: str, bits: Optional[int], mapping: str) -> int:
        """Index of the *primary* worker for one plan key (its first ring
        owner — where requests land while every replica is idle)."""
        return self._ring.primary(PlanKey(model, bits, mapping).canonical())

    def replicas_for(
        self, model: str, bits: Optional[int], mapping: str
    ) -> Tuple[int, ...]:
        """The key's ordered owner list: primary first, then replicas."""
        return self._ring.owners(
            PlanKey(model, bits, mapping).canonical(), self.effective_replicas
        )

    def _no_replica_error(
        self, owners: Tuple[int, ...], breakers: List[bool]
    ) -> WorkerDied:
        """The typed error when every owner of a key is unavailable.

        ``breaker_open=True`` (the operator-action fail-fast signal) only
        when *all* owners are breaker-open; any mix that includes a merely
        dead worker stays retryable.
        """
        primary = owners[0]
        phrase = (f"worker {primary}" if len(owners) == 1
                  else "all replicas " + "/".join(str(i) for i in owners))
        if all(breakers[index] for index in owners):
            return WorkerDied(
                f"{phrase} crash-looped; the circuit breaker(s) are open "
                f"and the key stays down until restart_worker() re-admits "
                f"a replica",
                worker_index=primary, breaker_open=True,
            )
        if self.auto_restart:
            return WorkerDied(
                f"{phrase} died and respawns are in progress; the request "
                f"is safe to retry shortly",
                worker_index=primary,
            )
        return WorkerDied(
            f"{phrase} has died; the key is excluded until "
            f"restart_worker() re-admits a replica",
            worker_index=primary,
        )

    def _select_worker(
        self,
        model: str,
        bits: Optional[int],
        mapping: str,
        excluded: Mapping[int, BaseException],
    ) -> _WorkerClient:
        """The least-loaded live owner of a key, failing over in ring
        order past dead / breaker-open / retiring replicas.

        ``excluded`` maps owner indices this call already tried (the
        worker died with the request in flight) to the error they raised;
        when no owner remains the most recent of those errors is re-raised
        — for ``replicas=1`` that reproduces the single-shard semantics
        exactly.
        """
        if self._closed:
            raise RuntimeError("cluster is closed")
        owners = self.replicas_for(model, bits, mapping)
        workers, breakers, _, _ = self._snapshot_state()
        candidates: List[Tuple[int, _WorkerClient]] = []
        retiring: List[Tuple[int, _WorkerClient]] = []
        skipped: List[Tuple[int, str]] = []
        for position, index in enumerate(owners):
            worker = workers[index]
            if index in excluded:
                skipped.append((index, "died_in_flight"))
                continue
            if worker.dead:
                skipped.append((index, "dead"))
                continue
            if breakers[index]:
                skipped.append((index, "breaker_open"))
                continue
            if worker.retiring:
                # Draining for a rolling restart: last resort only.
                retiring.append((position, worker))
                continue
            candidates.append((position, worker))
        if not candidates and retiring:
            # replicas=1 (or everything else down): ride out the drain the
            # way the pre-ring cluster did rather than failing the key.
            candidates = retiring[:1]
        elif retiring and candidates:
            skipped.extend((worker.index, "retiring")
                           for _, worker in retiring)
        if not candidates:
            if excluded:
                # Re-raise what the last attempt actually saw.
                raise next(reversed(list(excluded.values())))
            raise self._no_replica_error(owners, breakers)
        position, chosen = min(
            candidates, key=lambda entry: (entry[1].load(), entry[0])
        )
        for index, reason in skipped:
            self._failover_total.inc(worker=str(index), reason=reason)
        self._routed_total.inc(
            worker=str(chosen.index),
            role="primary" if chosen.index == owners[0] else "replica",
        )
        return chosen

    def _ensure_catalogued(
        self, model: str, bits: Optional[int], mapping: str
    ) -> None:
        """Heal the publish-after-start gap before routing.

        A key missing from the parent catalogue triggers one re-scan; if
        the scan finds it (the plan was published after cluster start),
        every live worker is told to re-index too — otherwise only the
        replica that happened to receive a request would heal via its
        KeyError path, leaving the other R-1 replicas serving 404s.
        """
        key = PlanKey(model, bits, mapping)
        if key in self.catalogue:
            return
        self.catalogue.refresh()
        if key in self.catalogue:
            self.refresh_workers()

    def refresh_workers(self, timeout: Optional[float] = 30.0) -> None:
        """Broadcast a registry re-scan to every live worker.

        Waits for the acknowledgements (bounded by ``timeout``) so that a
        request routed immediately afterwards cannot hit a stale replica;
        workers that die mid-broadcast are skipped — their replacement
        re-indexes the directory on spawn anyway.
        """
        futures: List[Future] = []
        workers, _, _, _ = self._snapshot_state()
        for worker in workers:
            if worker.dead:
                continue
            try:
                futures.append(worker.submit("refresh", None))
            except (WorkerDied, RuntimeError):
                continue
        for future in futures:
            try:
                future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - dead replica heals on respawn
                continue
        self._refresh_broadcasts.inc()

    # ------------------------------------------------------------------ #
    # Versioned rollout (admin surface; the shared plan directory is the
    # source of truth, so one `_rollout.json` write is seen by every
    # worker's registry on its next stat of the file)
    # ------------------------------------------------------------------ #
    def set_canary(
        self,
        model: str,
        bits: Optional[int],
        mapping: str,
        version: int,
        fraction: float,
    ) -> Dict[str, Any]:
        """Canary ``fraction`` of traffic onto ``version``, cluster-wide.

        The refresh broadcast makes every replica index the versioned
        artifact *before* the first canaried request can route to it —
        without it only the replica that happened to take the first
        request would heal via its KeyError path.
        """
        state = self.catalogue.set_canary(model, bits, mapping, version,
                                          fraction)
        self.refresh_workers()
        log_event(_LOG, "rollout_canary", model=model, mapping=mapping,
                  bits=bits, version=version, fraction=fraction)
        return state

    def promote(
        self,
        model: str,
        bits: Optional[int],
        mapping: str,
        version: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Atomically make ``version`` (default: the canary) active."""
        state = self.catalogue.promote(model, bits, mapping, version)
        self.refresh_workers()
        log_event(_LOG, "rollout_promote", model=model, mapping=mapping,
                  bits=bits, active=state.get("active"))
        return state

    def rollback(
        self, model: str, bits: Optional[int], mapping: str
    ) -> Dict[str, Any]:
        """Atomically revert to the previously active version."""
        state = self.catalogue.rollback(model, bits, mapping)
        log_event(_LOG, "rollout_rollback", model=model, mapping=mapping,
                  bits=bits, active=state.get("active"))
        return state

    def rollout_status(self) -> Dict[str, Dict[str, Any]]:
        """The rollout table as JSON-ready dicts."""
        return self.catalogue.rollout_status()

    @property
    def dead_workers(self) -> List[int]:
        """Indices of workers whose process has died (shards excluded).

        Read through the same snapshot the restart path writes, so a
        respawning worker can never appear dead here while its restart is
        already counted elsewhere.
        """
        workers, _, _, _ = self._snapshot_state()
        return [worker.index for worker in workers if worker.dead]

    @property
    def open_breakers(self) -> List[int]:
        """Shards whose circuit breaker is open (no automatic respawn)."""
        with self._sup_lock:
            return [index for index, is_open in enumerate(self._breaker)
                    if is_open]

    # ------------------------------------------------------------------ #
    # Self-healing supervisor
    # ------------------------------------------------------------------ #
    def _supervise(self) -> None:
        while not self._sup_stop.wait(0.02):
            now = time.monotonic()
            for index in range(self.num_workers):
                if self._sup_stop.is_set():
                    return
                try:
                    self._supervise_one(index, now)
                except Exception:  # noqa: BLE001
                    # A failed respawn (fd/process exhaustion mid
                    # crash-storm) must not kill the supervisor: the shard
                    # stays dead, the next tick reschedules it with a
                    # larger backoff, and the breaker still bounds the
                    # loop.  Swallowing here is what keeps self-healing
                    # alive for every other shard too.
                    continue

    def _supervise_one(self, index: int, now: float) -> None:
        with self._sup_lock:
            if self._closed or self._breaker[index]:
                return
            worker = self._workers[index]
            if not worker.dead:
                # Healthy: once the latest respawn has survived the
                # stability window, the crash streak is forgiven.
                last = self._last_restart[index]
                if (self._consecutive[index] and last is not None
                        and now - last >= self.stability_window):
                    self._consecutive[index] = 0
                self._restart_due[index] = None
                return
            if self._consecutive[index] >= self.max_restarts:
                # Crash-looping past the budget: trip the breaker instead
                # of burning CPU respawning a shard that cannot stay up.
                self._breaker[index] = True
                self._restart_due[index] = None
                log_event(_LOG, "breaker_open", level=logging.WARNING,
                          worker=index, crashes=self._consecutive[index])
                return
            due = self._restart_due[index]
            if due is None:
                delay = min(
                    self.restart_backoff * (2 ** self._consecutive[index]),
                    self.max_restart_backoff,
                )
                self._restart_due[index] = now + delay
                return
            if now < due:
                return
            self._restart_due[index] = None
            self._consecutive[index] += 1
        self._respawn(index)

    def _respawn(self, index: int) -> None:
        """Replace one dead worker (supervisor path; spawning is slow, so
        it happens outside ``_sup_lock``)."""
        with self._restart_lock:
            if self._closed:
                return
            old = self._workers[index]
            if not old.dead:  # raced with a manual restart_worker
                return
            old.retiring = True
            old.close(timeout=10.0)
            with self._sup_lock:
                incarnation = self._incarnations[index] + 1
            # May raise under resource exhaustion; counters update only on
            # success so a failed attempt is retried (with backoff) rather
            # than recorded as a restart.
            replacement = self._spawn_worker(index, incarnation)
            # Counters and the handle swap commit atomically: no reader
            # can see the restart counted while the dead handle still
            # routes (or the new handle live with a stale streak).
            with self._sup_lock:
                self._incarnations[index] = incarnation
                self._restarts[index] += 1
                self._last_restart[index] = time.monotonic()
                self._workers[index] = replacement
            log_event(_LOG, "worker_respawned", worker=index,
                      incarnation=incarnation, pid=replacement.process.pid)

    def restart_worker(self, index: int) -> None:
        """Replace one worker process, re-admitting its shard.

        Safe for both dead and live workers (a live one is drained and
        shut down first), so it doubles as a rolling-restart primitive —
        and with ``replicas >= 2`` a *zero-downtime* one: the handle is
        marked retiring before the drain, so new requests for its keys
        route to their other live owners for the whole restart window.
        A manual restart also resets the shard's crash streak and closes
        its circuit breaker — this is the operator's re-admission path
        after a crash-loop.  The replacement rebuilds its registry over
        the shared directory and serves the exact same ring positions —
        the partition is a pure function of ``(key, num_workers,
        replicas)``, so no other worker is disturbed.
        """
        if self._closed:
            raise RuntimeError("cluster is closed")
        if not 0 <= index < self.num_workers:
            raise ValueError(
                f"worker index {index} out of range 0..{self.num_workers - 1}"
            )
        with self._restart_lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            old = self._workers[index]
            # Route new work to the other replicas before draining; with
            # replicas=1 the router still uses the retiring handle as the
            # last resort, preserving the pre-ring behavior.
            old.retiring = True
            # For a dead worker this just reaps the corpse and fails any
            # straggler futures; for a live one it is the graceful drain.
            old.close(timeout=30.0)
            with self._sup_lock:
                incarnation = self._incarnations[index] + 1
            replacement = self._spawn_worker(index, incarnation)
            # Swap and counters commit atomically (see _respawn).
            with self._sup_lock:
                self._incarnations[index] = incarnation
                self._restarts[index] += 1
                self._consecutive[index] = 0
                self._breaker[index] = False
                self._restart_due[index] = None
                self._last_restart[index] = time.monotonic()
                self._workers[index] = replacement
            log_event(_LOG, "worker_restarted", worker=index,
                      incarnation=incarnation,
                      pid=replacement.process.pid)

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #
    def _submit_routed(
        self,
        kind: str,
        payload: Dict[str, object],
        model: str,
        bits: Optional[int],
        mapping: str,
        excluded: Dict[int, BaseException],
    ) -> Tuple[_WorkerClient, Future]:
        """Select an owner and submit, failing over on submit-time races.

        A worker that dies between selection and the pipe send (or a
        handle drained for a rolling restart) is recorded in ``excluded``
        and the next owner is tried at once; ``_select_worker`` raises the
        recorded error when the key has no owner left.
        """
        while True:
            worker = self._select_worker(model, bits, mapping, excluded)
            try:
                return worker, worker.submit(kind, payload)
            except WorkerDied as error:
                excluded[worker.index] = error
            except RuntimeError as error:
                if self._closed:
                    raise
                excluded[worker.index] = error

    def _request(
        self,
        kind: str,
        payload: Dict[str, object],
        model: str,
        bits: Optional[int],
        mapping: str,
        timeout: Optional[float],
    ):
        """One synchronous request with immediate replica failover.

        A ``WorkerDied`` from an in-flight request does not wait for the
        supervisor's respawn: the same (idempotent, deterministic) payload
        is resubmitted to the key's next live owner right away.  Only when
        every owner has been tried or is unavailable does the typed error
        surface to the caller — at which point ``ClusterClient``'s
        backoff-retry loop takes over (or, for ``breaker_open=True``, the
        caller fails fast).
        """
        self._ensure_catalogued(model, bits, mapping)
        excluded: Dict[int, BaseException] = {}
        while True:
            worker, future = self._submit_routed(
                kind, payload, model, bits, mapping, excluded
            )
            try:
                return future.result(timeout=timeout)
            except WorkerDied as error:
                excluded[worker.index] = error

    def predict_async(
        self,
        images: np.ndarray,
        *,
        model: str,
        mapping: str,
        bits: Optional[int] = None,
        request_id: Optional[str] = None,
    ) -> Future:
        """Submit a deterministic request to a live owner; resolves to logits.

        ``request_id`` crosses the pipe inside the payload, so the worker's
        service logs the same trace id the caller holds.  Submit-time
        failover applies, but once the future is handed out the request is
        pinned to its worker — a death after that surfaces as
        ``WorkerDied`` on the future (callers wanting transparent failover
        use :meth:`predict`).
        """
        self._ensure_catalogued(model, bits, mapping)
        payload = {"images": np.asarray(images), "model": model, "bits": bits,
                   "mapping": mapping, "request_id": request_id}
        _, future = self._submit_routed("predict", payload, model, bits,
                                        mapping, {})
        return future

    def predict(
        self,
        images: np.ndarray,
        *,
        model: str,
        mapping: str,
        bits: Optional[int] = None,
        timeout: Optional[float] = 60.0,
        request_id: Optional[str] = None,
    ) -> np.ndarray:
        """Deterministic logits from a live owner of this model."""
        payload = {"images": np.asarray(images), "model": model, "bits": bits,
                   "mapping": mapping, "request_id": request_id}
        return self._request("predict", payload, model, bits, mapping,
                             timeout)

    def predict_under_variation(
        self,
        images: np.ndarray,
        *,
        model: str,
        mapping: str,
        bits: Optional[int] = None,
        sigma_fraction: float = 0.1,
        num_samples: int = 25,
        seed: int = 0,
        timeout: Optional[float] = 120.0,
        request_id: Optional[str] = None,
    ) -> VariationPrediction:
        """Seeded Monte-Carlo ensemble request, served by a live owner.

        Ensemble sampling is a pure function of the request (model digest,
        sigma, samples, seed), so failover between replicas is bit-exact.
        """
        payload = {
            "images": np.asarray(images), "model": model, "bits": bits,
            "mapping": mapping, "sigma_fraction": sigma_fraction,
            "num_samples": num_samples, "seed": seed,
            "request_id": request_id,
        }
        return self._request("ensemble", payload, model, bits, mapping,
                             timeout)

    # ------------------------------------------------------------------ #
    # Typed entry points (the repro.api backend contract)
    # ------------------------------------------------------------------ #
    def predict_request(
        self, request: PredictRequest, timeout: Optional[float] = 60.0
    ) -> PredictResult:
        """Serve one typed deterministic request via the owning shard.

        Exceptions crossing the pickle boundary (``KeyError`` for unknown
        plans, ``ValueError`` for bad geometry, typed ``ApiError`` raised
        inside the worker's service) go through the same shared fold
        (:mod:`repro.api.backend`) the in-process service uses, so a
        cluster-backed client reports the identical typed failure.
        """
        return typed_predict(self.predict, request, timeout=timeout)

    def ensemble_request(
        self, request: EnsembleRequest, timeout: Optional[float] = 120.0
    ) -> EnsembleResult:
        """Serve one typed ensemble request via the owning shard."""
        return typed_ensemble(self.predict_under_variation, request,
                              timeout=timeout)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def models(self) -> List[dict]:
        """The shared catalogue with digests, annotated with each key's
        primary worker and full replica list."""
        self.catalogue.refresh()
        described = self.catalogue.describe()
        for entry in described:
            owners = self.replicas_for(
                entry["model"], entry["bits"], entry["mapping"]
            )
            entry["worker"] = owners[0]
            entry["replicas"] = list(owners)
        return described

    def stats_summary(self, timeout: Optional[float] = 10.0) -> Dict[str, dict]:
        """Per-worker serving statistics (JSON-ready), keyed ``worker-N``.

        Each worker's service stats are annotated parent-side with a
        ``transport`` block (shared-memory segments/bytes moved, in-flight
        segment gauge) and a ``supervisor`` block (restart counts, crash
        streak, breaker state).  A dead worker reports ``{"status":
        {"dead": True}}`` instead of failing the whole listing, so
        monitoring keeps working while a shard is down.  Liveness and
        supervisor counters come from one state snapshot, so this listing,
        ``dead_workers``, and ``/admin/workers`` agree at every point of a
        rolling restart.
        """
        if self._closed:
            raise RuntimeError("cluster is closed")
        workers, breakers, restarts, streaks = self._snapshot_state()
        futures: Dict[int, Future] = {}
        for worker in workers:
            if worker.dead:
                continue
            try:
                futures[worker.index] = worker.submit("stats", None)
            except (WorkerDied, RuntimeError):
                pass  # died (or closed) between the check and the send
        summary: Dict[str, dict] = {}
        for worker in workers:
            future = futures.get(worker.index)
            try:
                if future is None:
                    raise WorkerDied(f"worker {worker.index} is dead",
                                     worker_index=worker.index)
                stats = dict(future.result(timeout=timeout))
            except WorkerDied:
                stats = {"status": {"dead": True}}
            stats["transport"] = worker.transport_stats()
            stats["supervisor"] = {
                "auto_restart": self.auto_restart,
                "restarts": restarts[worker.index],
                "consecutive_crashes": streaks[worker.index],
                "breaker_open": breakers[worker.index],
            }
            summary[f"worker-{worker.index}"] = stats
        return summary

    def wait_ready(self, timeout: Optional[float] = 60.0) -> None:
        """Block until every worker process answers a ping."""
        futures = [worker.submit("ping", None) for worker in list(self._workers)]
        for future in futures:
            future.result(timeout=timeout)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Drain every worker (in-flight requests and micro-batches) and exit."""
        if self._closed:
            return
        self._closed = True
        self._sup_stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout)
        with self._restart_lock:
            for worker in self._workers:
                worker.close(timeout)
        # Belt and braces: nothing under this cluster's prefix may survive
        # (worker sweeps already ran per handle; this catches a handle
        # replaced mid-close).
        cleanup_prefix(self._shm_base)

    def __enter__(self) -> "PlanCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
