"""HTTP front-end: the serving stack as a stdlib JSON-over-HTTP endpoint.

Two interchangeable edges serve the same protocol:

* :class:`PlanServer` — the threaded ``http.server`` edge (one handler
  thread per connection);
* :class:`~repro.serve.aio.AsyncPlanServer` — the ``asyncio`` edge
  (event-loop accept, keep-alive reuse, pipelined parsing, bounded
  executor into the same micro-batch schedulers).

Both delegate every parsed request to one shared :class:`EdgeCore` — the
transport-agnostic route table, auth check, drain flag, study-job
manager, and metrics registry — so the two edges *cannot* diverge: a new
route, a changed error mapping, or an auth tweak lands in both at once.
The wire protocol:

``POST /v1/predict``
    ``{"model", "mapping", "bits", "images", "encoding"?}`` → deterministic
    logits.  ``images`` is a wire array payload (base64-packed or nested
    lists, see :mod:`repro.runtime.wire`); ``bits`` is an int, ``null``, or
    a canonical token (``"4b"``, ``"fp32"``); ``encoding`` picks the
    response array form (``"b64"`` default, ``"list"``).
``POST /v1/predict_under_variation``
    The ensemble flavour: adds ``sigma_fraction``, ``num_samples``,
    ``seed``; returns mean logits, majority-vote predictions, vote
    confidence, and per-class vote counts.
``GET /v1/models``
    The registry catalogue with content digests.
``GET /v1/stats``
    Per-model micro-batching statistics.
``POST /v1/studies`` / ``GET /v1/studies/{id}`` / ``DELETE /v1/studies/{id}``
    Asynchronous study jobs (:mod:`repro.serve.jobs`): submit a typed
    sweep spec (models × sigmas), poll for the checkpointed, resumable
    :class:`~repro.api.types.StudyResult`, or cancel a running job.
    Submission answers immediately with the job's status document;
    polling survives server restarts when the server was given a
    ``jobs_dir``.  ``DELETE`` is idempotent — cancelling a finished or
    already-cancelled job answers 200 with its unchanged status — and an
    unknown id answers the typed 404 (``model_not_found``), exactly like
    ``GET``.
``GET /healthz``
    Liveness probe: ``"ok"``, ``"degraded"`` (a cluster shard is dead or
    its breaker is open; 503 with per-shard detail under ``workers`` and —
    for a replicated cluster — per-model replica health under
    ``replication``, distinguishing a model *down* from one degraded to
    R-1 live replicas), or ``"draining"``.
``GET /metrics``
    Prometheus text exposition (no auth, like ``/healthz``): the server's
    edge instruments merged with the backend's — per-worker families
    tagged ``worker="N"`` for a cluster backend.
``GET /admin/workers`` / ``POST /admin/restart_worker`` / ``POST /admin/drain``
    The operator surface (bearer auth required): per-shard process detail,
    rolling restart of one worker (body ``{"worker": N}``; also the
    breaker re-admission path), and pausing/resuming new prediction work
    (optional body ``{"drain": false}`` resumes).
``GET /admin/rollout`` / ``POST /admin/canary`` / ``POST /admin/promote``
/ ``POST /admin/rollback``
    Versioned plan rollout: inspect the rollout table, canary a traffic
    fraction onto a published ``__vN`` artifact (body ``{"model",
    "mapping", "bits"?, "version", "fraction"}``), then promote it to
    active or revert — all without a restart.

Every response echoes an ``X-Request-Id`` header — the client's, when it
sent a valid one, else server-assigned — and the same id is threaded into
the typed request the backend serves, so worker-side structured logs line
up with the HTTP exchange.

Malformed requests are mapped to proper 4xx responses (400 bad payloads,
404 unknown models/paths, 405 wrong method, 413 oversized body) with a JSON
error body carrying the stable machine-readable ``code`` of the typed
:mod:`repro.api.errors` hierarchy; a closed backend answers 503, a
scheduler queue past the backend's ``max_queue_depth`` answers 429 with a
``Retry-After`` header, and (with ``auth_token`` set) a request without
the matching ``Authorization: Bearer`` token answers 401 — the token
compare is constant-time.  A request body shorter than its declared
``Content-Length`` (the client died or lied) answers 400 with an explicit
"truncated" message instead of a misleading JSON-parse failure — the body
is read in a loop until the declared length or EOF, so a slow client
dribbling its body in segments is served normally.  Responses carried
base64-packed as float64 are bit-equivalent to in-process results.

Shutdown is graceful: :meth:`PlanServer.close` stops accepting
connections, waits for in-flight requests to finish, and then closes the
backend — which drains every in-flight micro-batch — before returning.

The handlers are thin codecs (:mod:`repro.api.codec`) over the shared
request/response dataclasses: the backend contract (satisfied by
``InferenceService`` and ``PlanCluster``) is the typed pair
``predict_request(PredictRequest) -> PredictResult`` /
``ensemble_request(EnsembleRequest) -> EnsembleResult`` plus ``models()``,
``stats_summary()``, ``close()``.
"""

from __future__ import annotations

import hmac
import json
import logging
import math
import ssl
import threading
import time
from dataclasses import dataclass, field, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.api.codec import (
    _key_fields,
    decode_ensemble_request,
    decode_predict_request,
    decode_study_spec,
    encode_ensemble_result,
    encode_error,
    encode_predict_result,
    encode_study_status,
)
from repro.api.errors import ApiAuthError, ApiBackpressure, map_exception
from repro.serve.jobs import JobManager
from repro.obs import (
    REQUEST_ID_HEADER,
    MetricsRegistry,
    log_event,
    new_request_id,
    render,
    valid_request_id,
)

_LOG = logging.getLogger("repro.serve.http")

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Hard cap on request body size; a request over this answers 413 before
#: any bytes are read.
MAX_BODY_BYTES = 1 << 30

#: Largest chunk one body-read loop iteration asks the transport for.
_READ_CHUNK = 1 << 20

#: Machine-readable codes for the protocol-level failures that are not
#: typed API errors (they never reach a backend).
_PROTOCOL_CODES = {
    400: "invalid_request",
    404: "not_found",
    405: "method_not_allowed",
    413: "payload_too_large",
    503: "unavailable",
}

#: Lower-cased header key the trace id travels under.
_REQUEST_ID_KEY = REQUEST_ID_HEADER.lower()


class RequestError(ValueError):
    """An HTTP-visible protocol failure with an explicit status code.

    A ``ValueError`` subclass so that one escaping through the shared
    exception mapping still reads as an invalid request (400); the
    explicit ``status``/``code`` carried here win whenever the HTTP layer
    handles it itself (404 unknown path, 405 method, 413 oversized body).
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = _PROTOCOL_CODES.get(status, "internal")


def _status_for(error: BaseException) -> int:
    """Map an exception onto the HTTP status it should produce.

    Typed errors carry their own status; everything else goes through the
    shared :func:`repro.api.errors.map_exception`, so the HTTP mapping can
    never drift from what the other transports report.
    """
    if isinstance(error, RequestError):
        return error.status
    return map_exception(error).status


def _error_body(status: int, error: BaseException) -> dict:
    if isinstance(error, RequestError):
        return encode_error(error, status=status, code=error.code)
    return encode_error(error, status=status)


# ---------------------------------------------------------------------- #
# Shared body plumbing (used by both the threaded and the asyncio edge)
# ---------------------------------------------------------------------- #
def parse_content_length(headers: Mapping[str, str]) -> Optional[int]:
    """Validate a (lower-cased) header map's ``Content-Length``.

    Returns ``None`` when the header is absent (a body-less request),
    the parsed length otherwise; raises :class:`RequestError` 400 for an
    unparseable or negative value and 413 past :data:`MAX_BODY_BYTES` —
    *before* any body byte is read.
    """
    length_header = headers.get("content-length")
    if length_header is None:
        return None
    try:
        length = int(length_header)
    except ValueError:
        raise RequestError(400, f"invalid Content-Length {length_header!r}")
    if length < 0:
        raise RequestError(400, "Content-Length must be non-negative")
    if length > MAX_BODY_BYTES:
        raise RequestError(413, f"request body over {MAX_BODY_BYTES} bytes")
    return length


def truncated_body_error(got: int, expected: int) -> RequestError:
    """The 400 a body shorter than its declared Content-Length maps to.

    One constructor for both edges, so the sync and async servers answer
    a truncating client with the identical message.
    """
    return RequestError(
        400,
        f"request body truncated: expected {expected} bytes, got {got}",
    )


def read_exact(read: Callable[[int], bytes], length: int) -> bytes:
    """Read exactly ``length`` bytes from a blocking ``read`` callable.

    A single ``read(length)`` may legally return fewer bytes (a slow or
    segmented client); this loops until the declared length arrives, and
    a genuine EOF short of it raises the explicit truncation 400 instead
    of letting the partial body surface as a misleading JSON error.
    """
    if length == 0:
        return b""
    chunks = []
    remaining = length
    while remaining > 0:
        chunk = read(min(remaining, _READ_CHUNK))
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    data = b"".join(chunks)
    if len(data) < length:
        raise truncated_body_error(len(data), length)
    return data


@dataclass
class EdgeResponse:
    """One rendered HTTP response, transport-agnostic.

    ``close`` asks the transport to drop the connection after writing —
    set on every error response, because several error paths respond
    before the request body was consumed and the unread bytes would be
    parsed as the next request line under keep-alive.
    """

    status: int
    payload: bytes
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    close: bool = False


class EdgeCore:
    """The transport-agnostic core of the HTTP edge.

    Owns everything about the protocol that is not socket plumbing: the
    route table, bearer-token auth (constant-time compare), the drain
    flag, the study-job manager, the edge metrics registry, and in-flight
    request accounting.  A transport parses one request off its
    connection (method, path, lower-cased headers, raw body bytes) and
    calls :meth:`handle`; everything after that — dispatch, typed-error
    mapping, metrics, structured logging — happens here, identically for
    the threaded and the asyncio edge.
    """

    def __init__(
        self,
        backend,
        auth_token: Optional[str] = None,
        jobs_dir: Optional[str] = None,
    ) -> None:
        self.backend = backend
        self.auth_token = auth_token
        # While True, prediction routes answer 503 and /healthz reports
        # "draining"; flipped by POST /admin/drain (bool writes are atomic
        # under the GIL, so no lock).
        self.draining = False
        # Edge-level instruments; /metrics merges these with the backend's.
        self.metrics = MetricsRegistry()
        self._m_requests = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP exchanges by route, method, and status code.",
            labels=("route", "method", "status"),
        )
        self._m_latency = self.metrics.histogram(
            "repro_http_request_latency_seconds",
            "HTTP exchange latency by route.",
            labels=("route",),
        )
        self.metrics.register_callback(
            "repro_http_inflight_requests", "gauge",
            "Requests currently mid-handling.",
            lambda: [({}, float(self._inflight))],
        )
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        # The study-job subsystem rides on the edge registry so /metrics
        # exports its counters; with a checkpoint directory, interrupted
        # studies found on disk resume before the first request arrives.
        self.jobs = JobManager(backend, checkpoint_dir=jobs_dir,
                               metrics=self.metrics)
        resumed = self.jobs.resume()
        if resumed:
            log_event(_LOG, "studies_resumed", jobs=len(resumed))
        self._routes: Dict[Tuple[str, str], Callable[..., EdgeResponse]] = {
            ("GET", "/healthz"): self._handle_health,
            ("GET", "/metrics"): self._handle_metrics,
            ("GET", "/v1/models"): self._handle_models,
            ("GET", "/v1/stats"): self._handle_stats,
            ("POST", "/v1/predict"): self._handle_predict,
            ("POST", "/v1/predict_under_variation"): self._handle_ensemble,
            ("POST", "/v1/studies"): self._handle_study_submit,
            ("GET", "/admin/workers"): self._handle_admin_workers,
            ("POST", "/admin/restart_worker"): self._handle_admin_restart,
            ("POST", "/admin/drain"): self._handle_admin_drain,
            ("GET", "/admin/rollout"): self._handle_admin_rollout,
            ("POST", "/admin/canary"): self._handle_admin_canary,
            ("POST", "/admin/promote"): self._handle_admin_promote,
            ("POST", "/admin/rollback"): self._handle_admin_rollback,
        }
        self._route_paths = {path for _, path in self._routes}

    # -------------------------------------------------------------- #
    # In-flight accounting (drain support for both transports)
    # -------------------------------------------------------------- #
    def request_started(self) -> None:
        with self._inflight_cv:
            self._inflight += 1

    def request_finished(self) -> None:
        with self._inflight_cv:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_cv.notify_all()

    def drain(self, timeout: Optional[float]) -> bool:
        """Wait until no request is mid-handling; True if fully drained."""
        with self._inflight_cv:
            return self._inflight_cv.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )

    # -------------------------------------------------------------- #
    # Dispatch
    # -------------------------------------------------------------- #
    def handle(
        self,
        method: str,
        path: str,
        headers: Mapping[str, str],
        body: Optional[bytes] = None,
        body_error: Optional[BaseException] = None,
    ) -> EdgeResponse:
        """One parsed request in, one rendered response out.

        ``headers`` must carry lower-cased keys.  ``body`` is the raw
        request body (``None`` when the request had no ``Content-Length``).
        A transport that failed to obtain the body (bad or oversized
        Content-Length, truncation, a read timeout) passes the failure as
        ``body_error`` instead; it is raised *after* the auth check so the
        status precedence matches the pre-split behaviour (401 before
        400/413), then mapped like every other error.
        """
        path = path.split("?", 1)[0]
        # The two parameterised routes collapse onto a single metrics
        # label so job ids cannot grow cardinality.
        study_id: Optional[str] = None
        if path.startswith("/v1/studies/"):
            study_id = path[len("/v1/studies/"):]
        # The trace id of this exchange: the client's (echoed) when it
        # sent a valid X-Request-Id, otherwise server-assigned here.
        supplied = headers.get(_REQUEST_ID_KEY)
        request_id = (
            supplied if valid_request_id(supplied) else new_request_id()
        )
        status = 0
        started = time.monotonic()
        self.request_started()
        try:
            try:
                # The liveness probe and metrics scrape stay open so
                # orchestrators and scrapers can poll without holding the
                # secret; everything else requires the token.
                if path not in ("/healthz", "/metrics"):
                    self._check_auth(headers)
                if body_error is not None:
                    raise body_error
                if study_id is not None:
                    if method == "GET":
                        response = self._handle_study_get(study_id, request_id)
                    elif method == "DELETE":
                        response = self._handle_study_cancel(study_id,
                                                             request_id)
                    else:
                        raise RequestError(
                            405, f"{method} is not allowed on {path}"
                        )
                else:
                    handler = self._routes.get((method, path))
                    if handler is None:
                        if path in self._route_paths:
                            raise RequestError(
                                405, f"{method} is not allowed on {path}"
                            )
                        raise RequestError(404, f"unknown path {path!r}")
                    response = handler(body, request_id)
            except Exception as error:  # noqa: BLE001 - becomes JSON
                response = self._error_response(error, request_id)
            status = response.status
            return response
        finally:
            self.request_finished()
            elapsed = time.monotonic() - started
            # Unknown paths collapse onto one label value so a scanner
            # cannot grow the metric cardinality without bound.
            if study_id is not None:
                route = "/v1/studies/{id}"
            else:
                route = path if path in self._route_paths else "unknown"
            self.observe_request(route, method, status, elapsed)
            log_event(_LOG, "http_request", request_id=request_id,
                      route=route, method=method, status=status,
                      latency_ms=elapsed * 1000.0)

    def observe_request(
        self, route: str, method: str, status: int, elapsed: float
    ) -> None:
        try:
            self._m_requests.inc(route=route, method=method,
                                 status=str(status))
            self._m_latency.observe(elapsed, route=route)
        except Exception:  # noqa: BLE001 - telemetry must never fail a request
            pass

    # -------------------------------------------------------------- #
    # Response construction
    # -------------------------------------------------------------- #
    def _payload_response(
        self,
        status: int,
        payload: bytes,
        request_id: str,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> EdgeResponse:
        merged = dict(headers or {})
        # Every response — success or error — echoes the trace id.
        merged[REQUEST_ID_HEADER] = request_id
        return EdgeResponse(status=status, payload=payload,
                            content_type=content_type, headers=merged,
                            close=close)

    def _json(
        self,
        status: int,
        body: dict,
        request_id: str,
        headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> EdgeResponse:
        payload = json.dumps(body, allow_nan=False).encode("utf-8")
        return self._payload_response(status, payload, request_id,
                                      headers=headers, close=close)

    def _error_response(
        self, error: BaseException, request_id: str
    ) -> EdgeResponse:
        # Several error paths (unknown route, 405, 413, bad Content-Length)
        # respond before the request body was read; under HTTP/1.1
        # keep-alive the unread bytes would be parsed as the next request
        # line, corrupting every later exchange on the connection.  Closing
        # after any error keeps the stream unambiguous.
        status = _status_for(error)
        headers: Dict[str, str] = {}
        if isinstance(error, ApiBackpressure):
            # Retry-After is integral seconds per RFC 9110; round up so the
            # hint is never shorter than the backend asked for.
            headers["Retry-After"] = str(max(1, math.ceil(error.retry_after)))
        if isinstance(error, ApiAuthError):
            headers["WWW-Authenticate"] = "Bearer"
        return self._json(status, _error_body(status, error), request_id,
                          headers=headers, close=True)

    # -------------------------------------------------------------- #
    # Plumbing
    # -------------------------------------------------------------- #
    def _check_auth(self, headers: Mapping[str, str]) -> None:
        """Enforce the optional shared bearer token (constant-time compare)."""
        token = self.auth_token
        if token is None:
            return
        supplied = headers.get("authorization", "")
        expected = f"Bearer {token}"
        # hmac.compare_digest keeps the comparison constant-time in the
        # length-equal case, so the token cannot be recovered byte-by-byte
        # from response timing.
        if not hmac.compare_digest(
            supplied.encode("utf-8"), expected.encode("utf-8")
        ):
            raise ApiAuthError(
                "missing or invalid bearer token; send "
                "'Authorization: Bearer <token>'"
            )

    def _json_body(self, body: Optional[bytes]) -> dict:
        if body is None:
            raise RequestError(400, "Content-Length header is required")
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(400, f"request body is not valid JSON: {error}")
        if not isinstance(parsed, dict):
            raise RequestError(400, "request body must be a JSON object")
        return parsed

    def _optional_json_body(self, body: Optional[bytes]) -> dict:
        """Like :meth:`_json_body`, but a body-less request is ``{}``
        (the admin routes take their arguments as optional)."""
        if body is None:
            return {}
        return self._json_body(body)

    # -------------------------------------------------------------- #
    # Routes
    # -------------------------------------------------------------- #
    def _handle_health(self, body: Optional[bytes],
                       request_id: str) -> EdgeResponse:
        models = len(self.backend.models())
        status = "ok"
        detail = None
        if self.draining:
            status = "draining"
        else:
            summarize = getattr(self.backend, "health_summary", None)
            if callable(summarize):
                status, detail = summarize()
        if status == "ok":
            return self._json(200, {"status": "ok", "models": models},
                              request_id)
        doc: dict = {"status": status, "models": models}
        if detail is not None:
            detail = dict(detail)
            # A replicated cluster reports per-model replica health under
            # "models"; surfaced separately so operators can tell a model
            # *down* (no live replica) from one degraded to R-1 replicas.
            replication = detail.pop("models", None)
            doc["workers"] = detail
            if replication is not None:
                doc["replication"] = replication
        # 503 so load balancers eject the endpoint on their health probe
        # alone; the body still carries the per-shard specifics.
        return self._json(503, doc, request_id)

    def _handle_metrics(self, body: Optional[bytes],
                        request_id: str) -> EdgeResponse:
        families = list(self.metrics.collect())
        collect = getattr(self.backend, "metrics_families", None)
        if callable(collect):
            families.extend(collect())
        payload = render(families).encode("utf-8")
        return self._payload_response(200, payload, request_id,
                                      content_type=METRICS_CONTENT_TYPE)

    def _handle_admin_workers(self, body: Optional[bytes],
                              request_id: str) -> EdgeResponse:
        describe = getattr(self.backend, "describe_workers", None)
        if not callable(describe):
            raise RequestError(
                404, "backend has no worker processes to describe"
            )
        return self._json(200, {"workers": describe()}, request_id)

    def _handle_admin_restart(self, body: Optional[bytes],
                              request_id: str) -> EdgeResponse:
        restart = getattr(self.backend, "restart_worker", None)
        if not callable(restart):
            raise RequestError(
                404, "backend has no worker processes to restart"
            )
        parsed = self._json_body(body)
        worker = parsed.get("worker")
        if isinstance(worker, bool) or not isinstance(worker, int):
            raise RequestError(400, "body must carry an integer 'worker'")
        restart(worker)
        log_event(_LOG, "admin_restart_worker", request_id=request_id,
                  worker=worker)
        return self._json(200, {"restarted": worker}, request_id)

    def _handle_admin_drain(self, body: Optional[bytes],
                            request_id: str) -> EdgeResponse:
        parsed = self._optional_json_body(body)
        drain = parsed.get("drain", True)
        if not isinstance(drain, bool):
            raise RequestError(400, "'drain' must be a boolean")
        self.draining = drain
        log_event(_LOG, "admin_drain", request_id=request_id,
                  draining=drain)
        return self._json(200, {"draining": drain}, request_id)

    def _handle_models(self, body: Optional[bytes],
                       request_id: str) -> EdgeResponse:
        return self._json(200, {"models": self.backend.models()}, request_id)

    def _handle_stats(self, body: Optional[bytes],
                      request_id: str) -> EdgeResponse:
        return self._json(200, {"stats": self.backend.stats_summary()},
                          request_id)

    # The two prediction routes are nothing but codec shells: JSON body ->
    # shared request dataclass -> typed backend entry point -> shared
    # result dataclass -> JSON body.  All validation lives in the codec
    # and the dataclasses themselves, so every transport applies it
    # identically.
    def _reject_if_draining(self) -> None:
        if self.draining:
            raise RequestError(
                503, "server is draining; no new prediction work is accepted"
            )

    def _handle_predict(self, body: Optional[bytes],
                        request_id: str) -> EdgeResponse:
        self._reject_if_draining()
        request, encoding = decode_predict_request(self._json_body(body))
        request = replace(request, request_id=request_id)
        result = self.backend.predict_request(request)
        return self._json(200, encode_predict_result(result,
                                                     encoding=encoding),
                          request_id)

    def _handle_ensemble(self, body: Optional[bytes],
                         request_id: str) -> EdgeResponse:
        self._reject_if_draining()
        request, encoding = decode_ensemble_request(self._json_body(body))
        request = replace(request, request_id=request_id)
        result = self.backend.ensemble_request(request)
        return self._json(200, encode_ensemble_result(result,
                                                      encoding=encoding),
                          request_id)

    # -------------------------------------------------------------- #
    # Study jobs
    # -------------------------------------------------------------- #
    def _handle_study_submit(self, body: Optional[bytes],
                             request_id: str) -> EdgeResponse:
        self._reject_if_draining()
        spec, _ = decode_study_spec(self._json_body(body))
        job_id = self.jobs.submit(spec)
        log_event(_LOG, "study_submitted", request_id=request_id,
                  job_id=job_id, cells=spec.cell_count)
        return self._json(200, encode_study_status(self.jobs.status(job_id)),
                          request_id)

    def _handle_study_get(self, job_id: str, request_id: str) -> EdgeResponse:
        # Polling stays allowed while draining: a drained server still
        # finishes and reports the studies it accepted.
        status = self.jobs.status(job_id)
        return self._json(200, encode_study_status(status), request_id)

    def _handle_study_cancel(self, job_id: str,
                             request_id: str) -> EdgeResponse:
        # Cancellation is idempotent and allowed while draining (it only
        # sheds work); an unknown id raises the typed 404 from the manager.
        status = self.jobs.cancel(job_id)
        log_event(_LOG, "study_cancel", request_id=request_id,
                  job_id=job_id, state=status.state)
        return self._json(200, encode_study_status(status), request_id)

    # -------------------------------------------------------------- #
    # Versioned rollout admin
    # -------------------------------------------------------------- #
    def _rollout_backend(self, attr: str):
        method = getattr(self.backend, attr, None)
        if not callable(method):
            raise RequestError(404, "backend has no versioned-rollout surface")
        return method

    def _handle_admin_rollout(self, body: Optional[bytes],
                              request_id: str) -> EdgeResponse:
        status = self._rollout_backend("rollout_status")
        return self._json(200, {"rollout": status()}, request_id)

    def _handle_admin_canary(self, body: Optional[bytes],
                             request_id: str) -> EdgeResponse:
        set_canary = self._rollout_backend("set_canary")
        parsed = self._json_body(body)
        model, bits, mapping = _key_fields(parsed)
        version = parsed.get("version")
        fraction = parsed.get("fraction")
        if isinstance(version, bool) or not isinstance(version, int):
            raise RequestError(400, "body must carry an integer 'version'")
        if isinstance(fraction, bool) or not isinstance(fraction, (int, float)):
            raise RequestError(400, "body must carry a numeric 'fraction'")
        state = set_canary(model, bits, mapping, version, float(fraction))
        log_event(_LOG, "admin_canary", request_id=request_id,
                  model=model, version=version, fraction=fraction)
        return self._json(200, {"rollout": state}, request_id)

    def _handle_admin_promote(self, body: Optional[bytes],
                              request_id: str) -> EdgeResponse:
        promote = self._rollout_backend("promote")
        parsed = self._json_body(body)
        model, bits, mapping = _key_fields(parsed)
        version = parsed.get("version")
        if version is not None and (
            isinstance(version, bool) or not isinstance(version, int)
        ):
            raise RequestError(400, "'version' must be an integer when given")
        state = promote(model, bits, mapping, version)
        log_event(_LOG, "admin_promote", request_id=request_id,
                  model=model, active=state.get("active"))
        return self._json(200, {"rollout": state}, request_id)

    def _handle_admin_rollback(self, body: Optional[bytes],
                               request_id: str) -> EdgeResponse:
        rollback = self._rollout_backend("rollback")
        parsed = self._json_body(body)
        model, bits, mapping = _key_fields(parsed)
        state = rollback(model, bits, mapping)
        log_event(_LOG, "admin_rollback", request_id=request_id,
                  model=model, active=state.get("active"))
        return self._json(200, {"rollout": state}, request_id)


class _Handler(BaseHTTPRequestHandler):
    """Thin transport: socket/body plumbing; the protocol lives in EdgeCore."""

    protocol_version = "HTTP/1.1"
    # Idle keep-alive connections drop after this long, so they can never
    # hold the server open across a shutdown.
    timeout = 30.0
    server_version = "repro-serve/1.0"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # pragma: no cover - disabled in tests
            super().log_message(format, *args)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        core = self.server.core
        headers = {key.lower(): value for key, value in self.headers.items()}
        body: Optional[bytes] = None
        body_error: Optional[BaseException] = None
        try:
            length = parse_content_length(headers)
            if length is not None:
                body = read_exact(self.rfile.read, length)
        except Exception as error:  # noqa: BLE001 - mapped by the core
            body_error = error
        response = core.handle(method, self.path, headers, body, body_error)
        if response.close:
            self.close_connection = True
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.payload)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        try:
            self.wfile.write(response.payload)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass


class _PlanHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server: socket lifecycle around one EdgeCore."""

    # Handler threads are daemonic: an idle keep-alive connection must not
    # block shutdown.  In-flight *requests* are tracked explicitly instead
    # (by the core), so close() can drain real work and ignore idle sockets.
    daemon_threads = True
    # With daemon threads there is nothing for server_close() to join.
    block_on_close = False
    # http.server's default listen backlog (5) drops connection bursts on
    # the floor — clients stall in SYN retransmit.  An edge accepting
    # hundreds of keep-alive clients needs a real backlog.
    request_queue_size = 1024

    def __init__(self, address, core: EdgeCore, verbose: bool) -> None:
        self.core = core
        self.verbose = verbose
        super().__init__(address, _Handler)


class PlanServer:
    """Lifecycle wrapper: serve a backend over HTTP until closed.

    ``port=0`` binds an ephemeral port (see :attr:`url` after
    :meth:`start`).  With ``own_backend=True`` (default) closing the server
    also closes the backend, draining its in-flight micro-batches.
    ``auth_token`` turns on shared-token auth: every route except
    ``/healthz`` and ``/metrics`` requires ``Authorization: Bearer
    <token>`` and answers 401 otherwise (clients: ``HttpClient(url,
    token=...)`` or ``repro.api.connect(url, token=...)``).

    ``tls_cert``/``tls_key`` (both or neither) terminate TLS on the
    listening socket; :attr:`url` turns ``https://`` and clients verify
    with ``HttpClient(url, cafile=...)``.

    :class:`~repro.serve.aio.AsyncPlanServer` is the drop-in asyncio
    flavour of this class — same constructor surface, same routes (they
    share one :class:`EdgeCore`), event-loop concurrency instead of a
    thread per connection.
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        own_backend: bool = True,
        verbose: bool = False,
        auth_token: Optional[str] = None,
        tls_cert: Optional[str] = None,
        tls_key: Optional[str] = None,
        jobs_dir: Optional[str] = None,
    ) -> None:
        if (tls_cert is None) != (tls_key is None):
            raise ValueError(
                "tls_cert and tls_key must be provided together"
            )
        self.backend = backend
        self.own_backend = own_backend
        self.core = EdgeCore(backend, auth_token=auth_token,
                             jobs_dir=jobs_dir)
        self._httpd = _PlanHTTPServer((host, port), self.core, verbose)
        self.tls = tls_cert is not None
        if tls_cert is not None and tls_key is not None:
            context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
            context.load_cert_chain(certfile=tls_cert, keyfile=tls_key)
            self._httpd.socket = context.wrap_socket(
                self._httpd.socket, server_side=True
            )
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def metrics(self) -> MetricsRegistry:
        """The server's edge-level metric registry (merged into /metrics)."""
        return self.core.metrics

    @property
    def jobs(self) -> JobManager:
        """The study-job manager behind ``POST /v1/studies``."""
        return self.core.jobs

    @property
    def draining(self) -> bool:
        """True while POST /admin/drain has paused new prediction work."""
        return self.core.draining

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        host, port = self._httpd.server_address[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        scheme = "https" if self.tls else "http"
        return f"{scheme}://{host}:{port}"

    def start(self) -> "PlanServer":
        """Begin serving on a background thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="plan-http-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, close backend."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=timeout)
        self.core.drain(timeout)
        # Jobs close before the backend they execute through; an unfinished
        # study stays checkpointed on disk and resumes on the next start.
        self.core.jobs.close()
        if self.own_backend:
            self.backend.close()
        self._httpd.server_close()

    def __enter__(self) -> "PlanServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
