"""HTTP front-end: the serving stack as a stdlib JSON-over-HTTP endpoint.

:class:`PlanServer` exposes a *backend* — an in-process
:class:`~repro.serve.service.InferenceService` or a multi-process
:class:`~repro.serve.cluster.PlanCluster` — over a threaded
``http.server`` endpoint, making the registry + scheduler stack reachable
from other processes and languages.  The wire protocol:

``POST /v1/predict``
    ``{"model", "mapping", "bits", "images", "encoding"?}`` → deterministic
    logits.  ``images`` is a wire array payload (base64-packed or nested
    lists, see :mod:`repro.runtime.wire`); ``bits`` is an int, ``null``, or
    a canonical token (``"4b"``, ``"fp32"``); ``encoding`` picks the
    response array form (``"b64"`` default, ``"list"``).
``POST /v1/predict_under_variation``
    The ensemble flavour: adds ``sigma_fraction``, ``num_samples``,
    ``seed``; returns mean logits, majority-vote predictions, vote
    confidence, and per-class vote counts.
``GET /v1/models``
    The registry catalogue with content digests.
``GET /v1/stats``
    Per-model micro-batching statistics.
``GET /healthz``
    Liveness probe.

Malformed requests are mapped to proper 4xx responses (400 bad payloads,
404 unknown models/paths, 405 wrong method, 413 oversized body) with a JSON
error body; a closed backend answers 503.  Responses carried base64-packed
as float64 are bit-equivalent to in-process results.

Shutdown is graceful: :meth:`PlanServer.close` stops accepting
connections, waits for in-flight requests to finish, and then closes the
backend — which drains every in-flight micro-batch — before returning.

The backend contract (satisfied by ``InferenceService`` and
``PlanCluster``): ``predict(images, *, model, bits, mapping)``,
``predict_under_variation(images, *, model, bits, mapping, sigma_fraction,
num_samples, seed)``, ``models()``, ``stats_summary()``, ``close()``.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from repro.runtime.wire import WireFormatError, decode_array, encode_array
from repro.serve.registry import PlanArtifactError, parse_bits

#: Hard cap on request body size; a request over this answers 413 before
#: any bytes are read.
MAX_BODY_BYTES = 1 << 30


class RequestError(Exception):
    """An HTTP-visible request failure with an explicit status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _status_for(error: BaseException) -> int:
    """Map a backend exception onto the HTTP status it should produce."""
    if isinstance(error, RequestError):
        return error.status
    if isinstance(error, KeyError):
        return 404  # unknown plan key
    if isinstance(error, (WireFormatError, ValueError, TypeError)):
        return 400  # malformed payload / geometry
    if isinstance(error, FutureTimeoutError):
        return 504
    if isinstance(error, PlanArtifactError):
        return 500
    if isinstance(error, RuntimeError):
        return 503  # backend closed / shutting down
    return 500


def _error_body(status: int, error: BaseException) -> dict:
    message = str(error)
    if isinstance(error, KeyError) and error.args:
        # KeyError str() wraps its message in quotes; unwrap for clients.
        message = str(error.args[0])
    return {"error": {
        "status": status,
        "type": type(error).__name__,
        "message": message,
    }}


def _parse_bits_field(value) -> Optional[int]:
    """The ``bits`` request field: int, null, or a canonical token."""
    if value is None or isinstance(value, int):
        return value
    if isinstance(value, str):
        return parse_bits(value)
    raise RequestError(400, f"bits must be an int, null, or token, not {value!r}")


class _Handler(BaseHTTPRequestHandler):
    """Route table + JSON plumbing; state lives on the server object."""

    protocol_version = "HTTP/1.1"
    # Idle keep-alive connections drop after this long, so they can never
    # hold the server open across a shutdown.
    timeout = 30.0
    server_version = "repro-serve/1.0"

    # -------------------------------------------------------------- #
    # Plumbing
    # -------------------------------------------------------------- #
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # pragma: no cover - disabled in tests
            super().log_message(format, *args)

    def _send_json(self, status: int, body: dict) -> None:
        payload = json.dumps(body, allow_nan=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(payload)

    def _send_error_json(self, status: int, error: BaseException) -> None:
        # Several error paths (unknown route, 405, 413, bad Content-Length)
        # respond before the request body was read; under HTTP/1.1
        # keep-alive the unread bytes would be parsed as the next request
        # line, corrupting every later exchange on the connection.  Closing
        # after any error keeps the stream unambiguous.
        self.close_connection = True
        self._send_json(status, _error_body(status, error))

    def _read_request_body(self) -> dict:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise RequestError(400, "Content-Length header is required")
        try:
            length = int(length_header)
        except ValueError:
            raise RequestError(400, f"invalid Content-Length {length_header!r}")
        if length < 0:
            raise RequestError(400, "Content-Length must be non-negative")
        if length > MAX_BODY_BYTES:
            raise RequestError(413, f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(400, f"request body is not valid JSON: {error}")
        if not isinstance(body, dict):
            raise RequestError(400, "request body must be a JSON object")
        return body

    def _require(self, body: dict, field: str):
        if field not in body:
            raise RequestError(400, f"missing required field {field!r}")
        return body[field]

    @staticmethod
    def _response_encoding(body: dict) -> str:
        encoding = body.get("encoding", "b64")
        if encoding not in ("b64", "list"):
            raise RequestError(
                400, f"encoding must be 'b64' or 'list', not {encoding!r}"
            )
        return encoding

    # -------------------------------------------------------------- #
    # Routes
    # -------------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        routes = {
            ("GET", "/healthz"): self._handle_health,
            ("GET", "/v1/models"): self._handle_models,
            ("GET", "/v1/stats"): self._handle_stats,
            ("POST", "/v1/predict"): self._handle_predict,
            ("POST", "/v1/predict_under_variation"): self._handle_ensemble,
        }
        path = self.path.split("?", 1)[0]
        self.server.request_started()
        try:
            handler = routes.get((method, path))
            if handler is None:
                known_paths = {route_path for _, route_path in routes}
                if path in known_paths:
                    raise RequestError(405, f"{method} is not allowed on {path}")
                raise RequestError(404, f"unknown path {path!r}")
            handler()
        except Exception as error:  # noqa: BLE001 - every failure becomes JSON
            try:
                self._send_error_json(_status_for(error), error)
            except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
                pass
        finally:
            self.server.request_finished()

    def _handle_health(self) -> None:
        self._send_json(200, {
            "status": "ok",
            "models": len(self.server.backend.models()),
        })

    def _handle_models(self) -> None:
        self._send_json(200, {"models": self.server.backend.models()})

    def _handle_stats(self) -> None:
        self._send_json(200, {"stats": self.server.backend.stats_summary()})

    def _predict_args(self) -> Tuple[dict, np.ndarray, dict, str]:
        body = self._read_request_body()
        images = decode_array(self._require(body, "images"))
        key_kwargs = {
            "model": self._require(body, "model"),
            "mapping": self._require(body, "mapping"),
            "bits": _parse_bits_field(body.get("bits")),
        }
        if not isinstance(key_kwargs["model"], str):
            raise RequestError(400, "model must be a string")
        if not isinstance(key_kwargs["mapping"], str):
            raise RequestError(400, "mapping must be a string")
        return body, images, key_kwargs, self._response_encoding(body)

    def _handle_predict(self) -> None:
        _, images, key_kwargs, encoding = self._predict_args()
        logits = self.server.backend.predict(images, **key_kwargs)
        self._send_json(200, {
            **{k: key_kwargs[k] for k in ("model", "bits", "mapping")},
            "logits": encode_array(logits, encoding=encoding),
        })

    def _handle_ensemble(self) -> None:
        body, images, key_kwargs, encoding = self._predict_args()
        sigma_fraction = body.get("sigma_fraction", 0.1)
        num_samples = body.get("num_samples", 25)
        seed = body.get("seed", 0)
        if not isinstance(sigma_fraction, (int, float)) or isinstance(
            sigma_fraction, bool
        ) or sigma_fraction < 0:
            raise RequestError(400, "sigma_fraction must be a non-negative number")
        if not isinstance(num_samples, int) or isinstance(num_samples, bool) \
                or num_samples < 1:
            raise RequestError(400, "num_samples must be a positive integer")
        if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
            raise RequestError(400, "seed must be a non-negative integer")
        response = self.server.backend.predict_under_variation(
            images, sigma_fraction=float(sigma_fraction),
            num_samples=num_samples, seed=seed, **key_kwargs,
        )
        self._send_json(200, {
            **{k: key_kwargs[k] for k in ("model", "bits", "mapping")},
            "sigma_fraction": response.sigma_fraction,
            "num_samples": response.num_samples,
            "seed": response.seed,
            "mean_logits": encode_array(response.mean_logits, encoding=encoding),
            "predictions": encode_array(
                np.asarray(response.predictions, dtype=np.int64), encoding=encoding
            ),
            "confidence": encode_array(
                np.asarray(response.confidence, dtype=np.float64), encoding=encoding
            ),
            "vote_counts": encode_array(
                np.asarray(response.vote_counts, dtype=np.int64), encoding=encoding
            ),
        })


class _PlanHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server carrying the backend and in-flight accounting."""

    # Handler threads are daemonic: an idle keep-alive connection must not
    # block shutdown.  In-flight *requests* are tracked explicitly instead,
    # so close() can drain real work and ignore idle sockets.
    daemon_threads = True
    # With daemon threads there is nothing for server_close() to join.
    block_on_close = False

    def __init__(self, address, backend, verbose: bool) -> None:
        self.backend = backend
        self.verbose = verbose
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        super().__init__(address, _Handler)

    def request_started(self) -> None:
        with self._inflight_cv:
            self._inflight += 1

    def request_finished(self) -> None:
        with self._inflight_cv:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_cv.notify_all()

    def drain(self, timeout: Optional[float]) -> bool:
        """Wait until no request is mid-handling; True if fully drained."""
        with self._inflight_cv:
            return self._inflight_cv.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )


class PlanServer:
    """Lifecycle wrapper: serve a backend over HTTP until closed.

    ``port=0`` binds an ephemeral port (see :attr:`url` after
    :meth:`start`).  With ``own_backend=True`` (default) closing the server
    also closes the backend, draining its in-flight micro-batches.
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        own_backend: bool = True,
        verbose: bool = False,
    ) -> None:
        self.backend = backend
        self.own_backend = own_backend
        self._httpd = _PlanHTTPServer((host, port), backend, verbose)
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        host, port = self._httpd.server_address[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "PlanServer":
        """Begin serving on a background thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="plan-http-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, close backend."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=timeout)
        self._httpd.drain(timeout)
        if self.own_backend:
            self.backend.close()
        self._httpd.server_close()

    def __enter__(self) -> "PlanServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
