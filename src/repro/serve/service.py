"""The serving façade: deterministic and variation-aware inference requests.

:class:`InferenceService` ties the registry and the scheduler together into
the request/response layer of the plan-serving subsystem.  Each published
``(model, bits, mapping)`` gets its own lazily created
:class:`MicroBatchScheduler`, so concurrent deterministic requests against
the same model coalesce into stacked plan executions while different models
run independently.

Two request flavours mirror the paper's two readouts:

* :meth:`InferenceService.predict` — deterministic logits from the frozen
  plan (the sigma=0 operating point).  Execution is ``InferencePlan.run`` in
  float64, so results are bit-equivalent to
  ``evaluate_accuracy(use_runtime=True)`` regardless of how requests were
  micro-batched (row-independent matmuls).
* :meth:`InferenceService.predict_under_variation` — a seeded Monte-Carlo
  ensemble over device-variation draws (the Fig. 6 protocol as a serving
  scenario): per-request sigma and sample count, returning mean logits plus
  a majority-vote class and its vote confidence.  A fixed seed makes the
  whole response reproducible.

Both flavours also exist as *typed* entry points —
:meth:`InferenceService.predict_request` /
:meth:`InferenceService.ensemble_request` — consuming and producing the
shared ``repro.api`` dataclasses and raising the typed
:class:`~repro.api.errors.ApiError` hierarchy.  The HTTP front-end and the
:class:`~repro.api.client.LocalClient` both route through them, so every
transport shares one request/response vocabulary.  ``max_queue_depth``
adds backpressure: a deterministic request that finds its scheduler queue
past the threshold is rejected with the typed
:class:`~repro.api.errors.ApiBackpressure` (HTTP 429) instead of deepening
the queue.  ``max_concurrent_ensembles`` is the ensemble lane's
counterpart: ensembles execute synchronously in their caller's thread, so
the pressure signal there is the number mid-flight, and one past the cap
is rejected the same typed way before any sampling happens.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.backend import typed_ensemble, typed_predict
from repro.api.errors import ApiBackpressure
from repro.api.types import (
    EnsembleRequest,
    EnsembleResult,
    PredictRequest,
    PredictResult,
)
from repro.obs import MetricFamily, MetricsRegistry, log_event
from repro.runtime.montecarlo import (
    _prepare,
    run_plan_samples,
    sample_crossbar_weights,
)
from repro.runtime.intkernels import PRECISIONS
from repro.runtime.plan import InferencePlan
from repro.serve.registry import PlanKey, PlanRegistry
from repro.serve.scheduler import (
    AUTO_MAX_BATCH,
    MicroBatchScheduler,
    SchedulerStats,
)

#: Backwards-compatible name: the ensemble response *is* the shared API
#: dataclass now, so service, cluster, HTTP, and clients all hand around
#: the identical type (it crosses the cluster's pickle boundary verbatim).
VariationPrediction = EnsembleResult

_LOG = logging.getLogger("repro.serve.service")

#: Batch-size histogram bounds: powers of two up to the default max_batch
#: ceiling, so the exported distribution reads as "how full were batches".
_BATCH_ROW_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class InferenceService:
    """Multi-model serving façade over a :class:`PlanRegistry`."""

    def __init__(
        self,
        registry: PlanRegistry,
        max_batch: Union[int, str] = 64,
        max_wait_ms: float = 2.0,
        ensemble_cache_size: int = 8,
        max_queue_depth: Optional[int] = None,
        max_concurrent_ensembles: Optional[int] = None,
        precision: str = "float64",
        metrics: Optional[MetricsRegistry] = None,
        shard: Optional[int] = None,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative or None")
        if max_concurrent_ensembles is not None and max_concurrent_ensembles < 0:
            raise ValueError(
                "max_concurrent_ensembles must be non-negative or None"
            )
        if precision not in PRECISIONS:
            raise ValueError(
                f"unknown precision {precision!r}; expected one of {PRECISIONS}"
            )
        if max_batch != AUTO_MAX_BATCH and (
            isinstance(max_batch, bool)
            or not isinstance(max_batch, int)
            or max_batch < 1
        ):
            raise ValueError(
                f"max_batch must be a positive int or 'auto', got {max_batch!r}"
            )
        self.registry = registry
        # Execution precision every served plan is lowered to when pinned
        # (InferencePlan.with_precision).  "float64" serves artifacts as-is —
        # including pre-lowered integer artifacts a publisher stored.
        self.precision = precision
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        # Backpressure threshold: a deterministic request whose scheduler
        # already holds this many undrained requests is rejected with the
        # typed ApiBackpressure instead of queueing (None disables).
        self.max_queue_depth = max_queue_depth
        # The ensemble lane's counterpart: ensembles run num_samples
        # stacked passes synchronously in their caller's thread, so the
        # pressure signal is how many are mid-flight, not a queue depth.
        # One past the cap is rejected with the same typed ApiBackpressure
        # (HTTP 429) instead of piling more stacked passes onto the
        # executor (None disables).
        self.max_concurrent_ensembles = max_concurrent_ensembles
        self._ensembles_in_flight = 0
        self._schedulers: Dict[PlanKey, MicroBatchScheduler] = {}
        # Plans pinned per active scheduler: request handling must not pay a
        # registry LRU miss (a full .npz deserialisation) per request, and a
        # scheduler's runner has to keep serving the exact plan it was
        # created with even after the registry evicts it.
        self._plans: Dict[PlanKey, InferencePlan] = {}
        # Sampled Monte-Carlo weight stacks, keyed by the full draw identity
        # (plan key, sigma, sample count, seed, execution dtype).  Sampling
        # is the per-request cost of an ensemble response that does not
        # depend on the request's images, so ensemble-heavy traffic that
        # repeats (sigma, seed) points — dashboards polling a fixed
        # operating point, robustness sweeps re-reading the same grid —
        # skips the resampling entirely.  Bounded LRU: one entry holds
        # every crossbar's (num_samples, NO, NI) stack, which for large
        # plans is the dominant memory of a request.
        self._ensemble_cache: "OrderedDict[tuple, Tuple[InferencePlan, Dict[int, np.ndarray]]]" = (
            OrderedDict()
        )
        self.ensemble_cache_size = ensemble_cache_size
        self._lock = threading.Lock()
        self._closed = False
        # Shard index when this service runs inside a cluster worker
        # (attached to every structured log line); None single-process.
        self.shard = shard
        # All ad-hoc counters live in a MetricsRegistry, so stats_summary()
        # and Prometheus exposition read the same source of truth.  A shared
        # registry may be injected (the HTTP layer merges it into one
        # /metrics page); each registry holds at most one service's
        # callbacks.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._build_instruments()

    def _build_instruments(self) -> None:
        metrics = self.metrics
        self._m_latency = metrics.histogram(
            "repro_request_latency_seconds",
            "End-to-end request latency by model and lane.",
            labels=("model", "lane"),
        )
        self._m_requests = metrics.counter(
            "repro_requests_total",
            "Requests served by model, lane, and outcome (ok/error).",
            labels=("model", "lane", "outcome"),
        )
        self._m_batches = metrics.counter(
            "repro_scheduler_batches_total",
            "Micro-batches executed per model.",
            labels=("model",),
        )
        self._m_batch_rows = metrics.histogram(
            "repro_scheduler_batch_rows",
            "Rows coalesced into each micro-batch.",
            labels=("model",),
            buckets=_BATCH_ROW_BUCKETS,
        )
        self._m_batch_wait = metrics.histogram(
            "repro_scheduler_batch_wait_seconds",
            "Coalescing wait from first request to batch execution.",
            labels=("model",),
        )
        self._m_cache_hits = metrics.counter(
            "repro_ensemble_cache_hits_total",
            "Ensemble weight-stack cache hits.",
        )
        self._m_cache_misses = metrics.counter(
            "repro_ensemble_cache_misses_total",
            "Ensemble weight-stack cache misses (cold draws).",
        )
        self._m_ens_rejected = metrics.counter(
            "repro_ensembles_rejected_total",
            "Ensemble requests rejected by the concurrency cap.",
        )
        self._m_canary = metrics.counter(
            "repro_canary_requests_total",
            "Requests resolved through the versioned-rollout table, by base "
            "model and the version that actually served them.",
            labels=("model", "version"),
        )
        self._m_rollout_flips = metrics.counter(
            "repro_rollout_flips_total",
            "Rollout table mutations (canary/promote/rollback).",
            labels=("action",),
        )
        metrics.register_callback(
            "repro_rollout_active_version", "gauge",
            "Active plan version per base model (from the rollout table).",
            self._collect_rollout_versions,
        )
        metrics.register_callback(
            "repro_rollout_canary_fraction", "gauge",
            "Traffic fraction routed to the canary version per base model.",
            self._collect_canary_fractions,
        )
        metrics.register_callback(
            "repro_scheduler_queue_depth", "gauge",
            "Requests waiting in each model's micro-batch queue.",
            self._collect_queue_depths,
        )
        metrics.register_callback(
            "repro_ensembles_in_flight", "gauge",
            "Ensemble requests currently executing.",
            lambda: [({}, float(self._ensembles_in_flight))],
        )
        metrics.register_callback(
            "repro_ensemble_cache_entries", "gauge",
            "Entries resident in the ensemble weight-stack cache.",
            lambda: [({}, float(len(self._ensemble_cache)))],
        )
        metrics.register_callback(
            "repro_precision_ops_total", "counter",
            "Plan ops executed per model by kernel path (int/float).",
            self._collect_precision_ops,
        )
        metrics.register_callback(
            "repro_precision_batches_total", "counter",
            "Executed batches per model by precision path "
            "(int vs per-batch float fallback).",
            self._collect_precision_batches,
        )

    # Collect-time callbacks: exported live, never double-counted.
    def _collect_rollout_versions(
        self,
    ) -> Sequence[Tuple[Mapping[str, str], float]]:
        return [
            ({"model": base}, float(entry.active))
            for base, entry in sorted(self.registry.rollout_entries().items())
        ]

    def _collect_canary_fractions(
        self,
    ) -> Sequence[Tuple[Mapping[str, str], float]]:
        return [
            ({"model": base}, float(entry.canary_fraction))
            for base, entry in sorted(self.registry.rollout_entries().items())
        ]

    def _collect_queue_depths(
        self,
    ) -> Sequence[Tuple[Mapping[str, str], float]]:
        return [
            ({"model": name}, float(depth))
            for name, depth in sorted(self.queue_depths().items())
        ]

    def _pinned_precision_stats(self) -> List[Tuple[str, Dict[str, int]]]:
        with self._lock:
            pinned = [
                (key.canonical(), plan) for key, plan in self._plans.items()
            ]
        return sorted((name, plan.precision_stats()) for name, plan in pinned)

    def _collect_precision_ops(
        self,
    ) -> Sequence[Tuple[Mapping[str, str], float]]:
        samples: List[Tuple[Mapping[str, str], float]] = []
        for name, stats in self._pinned_precision_stats():
            samples.append((
                {"model": name, "path": "int"}, float(stats.get("int_ops", 0))
            ))
            samples.append((
                {"model": name, "path": "float"},
                float(stats.get("float_ops", 0)),
            ))
        return samples

    def _collect_precision_batches(
        self,
    ) -> Sequence[Tuple[Mapping[str, str], float]]:
        samples: List[Tuple[Mapping[str, str], float]] = []
        for name, stats in self._pinned_precision_stats():
            samples.append((
                {"model": name, "path": "int"},
                float(stats.get("int_batches", 0)),
            ))
            samples.append((
                {"model": name, "path": "fallback"},
                float(stats.get("fallback_batches", 0)),
            ))
        return samples

    # Legacy counter attributes, now registry-backed (same names, same
    # semantics — stats_summary() keeps its exact shape).
    @property
    def ensemble_cache_hits(self) -> int:
        return int(self._m_cache_hits.value())

    @property
    def ensemble_cache_misses(self) -> int:
        return int(self._m_cache_misses.value())

    @property
    def ensembles_rejected(self) -> int:
        return int(self._m_ens_rejected.value())

    def metrics_families(self) -> List[MetricFamily]:
        """Snapshot this service's metric families (picklable)."""
        return self.metrics.collect()

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def scheduler_for(
        self, model: str, bits: Optional[int], mapping: str
    ) -> MicroBatchScheduler:
        """The (lazily created) micro-batching scheduler of one plan key."""
        scheduler, _ = self._serving_pair(PlanKey(model, bits, mapping))
        return scheduler

    def _routed_key(self, key: PlanKey, request_id: Optional[str]) -> PlanKey:
        """Apply the registry's rollout table to an unversioned request key.

        Explicit versions pass through; version-1 keys with a rollout entry
        serve the active version, or the canary version for the
        deterministic ``canary_fraction`` slice of request ids.  Each
        resolved version gets its own scheduler/plan pin/ensemble-cache
        identity downstream, so versions never share state.
        """
        if key.version != 1:
            return key
        entry = self.registry.rollout_entries().get(key.canonical())
        if entry is None:
            return key
        version = entry.resolve(request_id)
        self._m_canary.inc(model=key.canonical(), version=f"v{version}")
        if version == key.version:
            return key
        return PlanKey(
            model=key.model, bits=key.bits, mapping=key.mapping, version=version
        )

    def _pinned_plan(self, key: PlanKey) -> InferencePlan:
        """The plan this service serves for ``key``, pinned on first use.

        Both request flavours resolve through here, so deterministic and
        ensemble responses for one key always come from the same artifact
        even if the registry republishes or evicts it mid-flight.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            plan = self._plans.get(key)
            if plan is None:
                plan = self.registry.get(
                    key.model, key.bits, key.mapping, version=key.version
                )
                if self.precision != "float64":
                    plan = plan.with_precision(self.precision)
                self._plans[key] = plan
            return plan

    # ------------------------------------------------------------------ #
    # Versioned rollout (admin surface; delegates to the registry)
    # ------------------------------------------------------------------ #
    def set_canary(
        self,
        model: str,
        bits: Optional[int],
        mapping: str,
        version: int,
        fraction: float,
    ) -> Dict[str, Any]:
        """Canary ``fraction`` of request-id traffic onto ``version``."""
        state = self.registry.set_canary(model, bits, mapping, version, fraction)
        self._m_rollout_flips.inc(action="canary")
        log_event(_LOG, "rollout_canary", model=model, mapping=mapping,
                  bits=bits, version=version, fraction=fraction,
                  shard=self.shard)
        return state

    def promote(
        self,
        model: str,
        bits: Optional[int],
        mapping: str,
        version: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Atomically make ``version`` (default: the canary) active."""
        state = self.registry.promote(model, bits, mapping, version)
        self._m_rollout_flips.inc(action="promote")
        log_event(_LOG, "rollout_promote", model=model, mapping=mapping,
                  bits=bits, active=state.get("active"), shard=self.shard)
        return state

    def rollback(
        self, model: str, bits: Optional[int], mapping: str
    ) -> Dict[str, Any]:
        """Atomically revert to the previously active version."""
        state = self.registry.rollback(model, bits, mapping)
        self._m_rollout_flips.inc(action="rollback")
        log_event(_LOG, "rollout_rollback", model=model, mapping=mapping,
                  bits=bits, active=state.get("active"), shard=self.shard)
        return state

    def rollout_status(self) -> Dict[str, Dict[str, Any]]:
        """The rollout table as JSON-ready dicts."""
        return self.registry.rollout_status()

    def _serving_pair(self, key: PlanKey):
        plan = self._pinned_plan(key)
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            scheduler = self._schedulers.get(key)
            if scheduler is None:
                canonical = key.canonical()

                def _on_batch(
                    requests: int, rows: int, wait: float, _name: str = canonical
                ) -> None:
                    self._m_batches.inc(model=_name)
                    self._m_batch_rows.observe(float(rows), model=_name)
                    self._m_batch_wait.observe(wait, model=_name)

                scheduler = MicroBatchScheduler(
                    plan.run,
                    max_batch=self.max_batch,
                    max_wait_ms=self.max_wait_ms,
                    name=canonical,
                    on_batch=_on_batch,
                )
                self._schedulers[key] = scheduler
            return scheduler, plan

    @staticmethod
    def _normalize(plan: InferencePlan, images: np.ndarray):
        """Add the batch axis to a single-sample request; report if we did.

        For plans with a recorded input shape the per-sample geometry is also
        validated symbolically before the request is enqueued, so a malformed
        request fails in its caller's thread instead of poisoning the whole
        micro-batch it would have been coalesced into.
        """
        array = np.asarray(images)
        single = (
            plan.input_shape is not None and array.ndim == len(plan.input_shape)
        )
        if single:
            array = array[None]
        if plan.input_shape is not None:
            try:
                plan.output_shapes(array.shape[1:])
            except (ValueError, TypeError) as error:
                raise ValueError(
                    f"request of shape {np.asarray(images).shape} is "
                    f"incompatible with plan input shape {plan.input_shape}: "
                    f"{error}"
                ) from None
        return array, single

    def models(self) -> List[dict]:
        """The registry catalogue as JSON-ready dicts (with content digests).

        This is the listing the HTTP front-end serves from ``GET
        /v1/models``; re-scans the directory first so artifacts published by
        another process since startup appear.
        """
        self.registry.refresh()
        return self.registry.describe()

    @property
    def stats(self) -> Dict[str, SchedulerStats]:
        """Per-model batching statistics, keyed by canonical plan name."""
        with self._lock:
            return {
                key.canonical(): scheduler.stats
                for key, scheduler in self._schedulers.items()
            }

    def queue_depths(self) -> Dict[str, int]:
        """Scheduler queue depth per canonical plan name (the 429 signal)."""
        with self._lock:
            return {
                key.canonical(): scheduler.queue_depth
                for key, scheduler in self._schedulers.items()
            }

    def queue_depth(self) -> int:
        """The deepest scheduler queue (0 when idle or before first request)."""
        depths = self.queue_depths()
        return max(depths.values()) if depths else 0

    def stats_summary(self) -> Dict[str, dict]:
        """The batching statistics as JSON-ready dicts (HTTP ``/v1/stats``).

        Each pinned model additionally reports its execution-precision
        counters (``precision_stats``): how many ops run integer kernels and
        how many batches took the integer path versus the per-batch float
        fallback — the measured integer-op counts behind any Table-1-style
        latency/energy claim.
        """
        summary = {}
        depths = self.queue_depths()
        with self._lock:
            caps = {
                key.canonical(): scheduler.max_batch
                for key, scheduler in self._schedulers.items()
            }
        for name, stats in self.stats.items():
            summary[name] = {
                "num_batches": stats.num_batches,
                "num_requests": stats.num_requests,
                "num_rows": stats.num_rows,
                "max_rows_per_batch": stats.max_rows_per_batch,
                "mean_rows_per_batch": stats.mean_rows_per_batch,
                "queue_depth": depths.get(name, 0),
                "max_batch": caps.get(name),
            }
        with self._lock:
            pinned = {key.canonical(): plan for key, plan in self._plans.items()}
        for name, plan in pinned.items():
            summary.setdefault(name, {})["precision"] = plan.precision_stats()
        summary["ensemble_cache"] = {
            "hits": self.ensemble_cache_hits,
            "misses": self.ensemble_cache_misses,
            "size": len(self._ensemble_cache),
        }
        with self._lock:
            summary["ensemble_lane"] = {
                "max_concurrent": self.max_concurrent_ensembles,
                "in_flight": self._ensembles_in_flight,
                "rejected": self.ensembles_rejected,
            }
        return summary

    def close(self) -> None:
        """Flush and stop every scheduler; further requests are rejected."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            schedulers = list(self._schedulers.values())
        for scheduler in schedulers:
            scheduler.close()

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Deterministic requests
    # ------------------------------------------------------------------ #
    def predict_async(
        self,
        images: np.ndarray,
        *,
        model: str,
        mapping: str,
        bits: Optional[int] = None,
        request_id: Optional[str] = None,
    ) -> Future:
        """Submit a deterministic request; resolves to the logits ndarray.

        ``images`` may be a single sample (the plan's input shape) or a
        pre-batched array; the future's result matches — single samples
        resolve to ``(classes,)`` logits.  ``request_id`` selects the served
        plan version when a canary rollout is configured for the model.
        """
        key = self._routed_key(PlanKey(model, bits, mapping), request_id)
        scheduler, plan = self._serving_pair(key)
        array, single = self._normalize(plan, images)
        if self.max_queue_depth is not None:
            depth = scheduler.queue_depth
            if depth >= self.max_queue_depth:
                # Reject before enqueueing: a 429'd client retries against a
                # queue that can only have shrunk, instead of deepening it.
                raise ApiBackpressure(
                    f"scheduler queue for {key.canonical()!r} holds {depth} "
                    f"request(s), at or over the max_queue_depth of "
                    f"{self.max_queue_depth}; retry shortly",
                    retry_after=1.0,
                )
        future = scheduler.submit(array)
        if not single:
            return future
        unwrapped: Future = Future()

        def _unwrap(done: Future) -> None:
            error = done.exception()
            if error is not None:
                unwrapped.set_exception(error)
            else:
                unwrapped.set_result(done.result()[0])

        future.add_done_callback(_unwrap)
        return unwrapped

    def _observe(
        self,
        name: str,
        lane: str,
        started: float,
        request_id: Optional[str],
        error: Optional[BaseException] = None,
    ) -> None:
        """Record one request's latency/outcome and its structured log line."""
        elapsed = time.monotonic() - started
        outcome = "ok" if error is None else "error"
        self._m_latency.observe(elapsed, model=name, lane=lane)
        self._m_requests.inc(model=name, lane=lane, outcome=outcome)
        log_event(
            _LOG,
            lane,
            request_id=request_id,
            model=name,
            shard=self.shard,
            latency_ms=elapsed * 1000.0,
            status=outcome if error is None else type(error).__name__,
        )

    def predict(
        self,
        images: np.ndarray,
        *,
        model: str,
        mapping: str,
        bits: Optional[int] = None,
        timeout: Optional[float] = 60.0,
        request_id: Optional[str] = None,
    ) -> np.ndarray:
        """Deterministic logits, micro-batched with concurrent requests."""
        name = PlanKey(model, bits, mapping).canonical()
        started = time.monotonic()
        try:
            logits = self.predict_async(
                images, model=model, bits=bits, mapping=mapping,
                request_id=request_id,
            ).result(timeout=timeout)
        except BaseException as error:
            self._observe(name, "predict", started, request_id, error)
            raise
        self._observe(name, "predict", started, request_id)
        return logits

    # ------------------------------------------------------------------ #
    # Typed entry points (the repro.api backend contract)
    # ------------------------------------------------------------------ #
    def predict_request(
        self, request: PredictRequest, timeout: Optional[float] = 60.0
    ) -> PredictResult:
        """Serve one typed deterministic request; typed errors on failure.

        This is the entry point the HTTP front-end and
        :class:`~repro.api.client.LocalClient` share: legacy exceptions
        (``KeyError`` for unknown plans, ``ValueError`` for bad geometry,
        ``RuntimeError`` for a closed service) are folded into the
        :class:`~repro.api.errors.ApiError` hierarchy by the one shared
        fold (:mod:`repro.api.backend`), so every transport reports the
        identical typed failure.
        """
        return typed_predict(self.predict, request, timeout=timeout)

    def ensemble_request(self, request: EnsembleRequest) -> EnsembleResult:
        """Serve one typed ensemble request; typed errors on failure."""
        return typed_ensemble(self.predict_under_variation, request)

    # ------------------------------------------------------------------ #
    # Variation-aware requests
    # ------------------------------------------------------------------ #
    def _acquire_ensemble_slot(self, key: PlanKey) -> None:
        """Admit one ensemble into the lane or reject with backpressure."""
        if self.max_concurrent_ensembles is None:
            return
        with self._lock:
            if self._ensembles_in_flight >= self.max_concurrent_ensembles:
                self._m_ens_rejected.inc()
                raise ApiBackpressure(
                    f"{self._ensembles_in_flight} ensemble request(s) already "
                    f"in flight for this service, at or over the "
                    f"max_concurrent_ensembles cap of "
                    f"{self.max_concurrent_ensembles}; retry shortly "
                    f"(requested plan: {key.canonical()!r})",
                    retry_after=1.0,
                )
            self._ensembles_in_flight += 1

    def _release_ensemble_slot(self) -> None:
        if self.max_concurrent_ensembles is None:
            return
        with self._lock:
            self._ensembles_in_flight -= 1

    def _sampled_stacks(
        self,
        key: PlanKey,
        plan: InferencePlan,
        sigma_fraction: float,
        num_samples: int,
        seed: int,
        dtype,
    ) -> Tuple[InferencePlan, Dict[int, np.ndarray]]:
        """The (cast plan, sampled weight stacks) pair of one draw identity.

        Draws are seeded, so the stack for a given ``(key, sigma,
        num_samples, seed, dtype)`` is immutable — repeated identical
        ensemble requests reuse it bit-identically instead of re-running
        the perturb/clip/quantise/periphery pipeline per request.  The
        stacks are only ever read (batched matmuls), so cache entries are
        safe to share across threads.
        """
        cache_key = (key, sigma_fraction, num_samples, seed, np.dtype(dtype).str)
        with self._lock:
            cached = self._ensemble_cache.get(cache_key)
            if cached is not None:
                self._m_cache_hits.inc()
                self._ensemble_cache.move_to_end(cache_key)
                return cached
        # Sample outside the lock: a cold draw is the expensive path and
        # must not stall concurrent ensemble requests for other keys.  Two
        # racing identical requests may both sample, but the draw is
        # deterministic, so whichever insertion wins the cache is correct.
        rng = np.random.default_rng(seed)
        sampled = sample_crossbar_weights(plan, sigma_fraction, num_samples, rng=rng)
        exec_plan, sampled = _prepare(plan, sampled, dtype)
        with self._lock:
            self._m_cache_misses.inc()
            self._ensemble_cache[cache_key] = (exec_plan, sampled)
            self._ensemble_cache.move_to_end(cache_key)
            while len(self._ensemble_cache) > self.ensemble_cache_size:
                self._ensemble_cache.popitem(last=False)
        return exec_plan, sampled

    def predict_under_variation(
        self,
        images: np.ndarray,
        *,
        model: str,
        mapping: str,
        bits: Optional[int] = None,
        sigma_fraction: float = 0.1,
        num_samples: int = 25,
        seed: int = 0,
        dtype=np.float64,
        request_id: Optional[str] = None,
    ) -> VariationPrediction:
        """Seeded Monte-Carlo ensemble prediction under device variation.

        Draws ``num_samples`` variation perturbations of every crossbar in
        the plan (one seeded generator, so the whole response is
        reproducible), executes the vectorized sample-stacked plan once, and
        aggregates: mean logits, per-draw argmax votes, the majority class
        and its vote fraction.
        """
        if num_samples < 1:
            raise ValueError("num_samples must be at least 1")
        base = PlanKey(model, bits, mapping)
        # Metrics/log labels stay base-canonical; the served version is
        # visible separately via repro_canary_requests_total.
        name = base.canonical()
        key = self._routed_key(base, request_id)
        started = time.monotonic()
        try:
            plan = self._pinned_plan(key)
            array, single = self._normalize(plan, images)
            # Backpressure gates the expensive part only: validation above
            # fails a malformed request with its real typed error even when
            # the lane is saturated.
            self._acquire_ensemble_slot(key)
            try:
                exec_plan, sampled = self._sampled_stacks(
                    key, plan, float(sigma_fraction), int(num_samples),
                    int(seed), dtype,
                )
                logits = run_plan_samples(exec_plan, array, sampled,
                                          num_samples, dtype=dtype)
            finally:
                self._release_ensemble_slot()
        except BaseException as error:
            self._observe(name, "ensemble", started, request_id, error)
            raise
        self._observe(name, "ensemble", started, request_id)
        mean_logits = logits.mean(axis=0)
        votes = logits.argmax(axis=-1)  # (num_samples, batch)
        num_classes = logits.shape[-1]
        vote_counts = (votes[:, :, None] == np.arange(num_classes)).sum(axis=0)
        predictions = vote_counts.argmax(axis=-1)
        confidence = vote_counts.max(axis=-1) / num_samples
        if single:
            mean_logits = mean_logits[0]
            vote_counts = vote_counts[0]
            predictions = predictions[0]
            confidence = confidence[0]
        return EnsembleResult(
            model=model,
            bits=bits,
            mapping=mapping,
            mean_logits=mean_logits,
            predictions=predictions,
            confidence=confidence,
            vote_counts=vote_counts,
            sigma_fraction=float(sigma_fraction),
            num_samples=int(num_samples),
            seed=int(seed),
            request_id=request_id,
        )
