"""Inference evaluation under device variation (the paper's Fig. 6 protocol).

After training, zero-mean Gaussian variation is added to every crossbar
conductance and inference accuracy is measured without any fine-tuning.  The
paper averages 25 variation samples per data point; :func:`variation_sweep`
repeats the measurement for a list of sigma values and returns the mean and
standard deviation per point.

Two execution paths back every helper here:

* the **compiled runtime** (:mod:`repro.runtime`): the model is frozen into
  an :class:`~repro.runtime.plan.InferencePlan` and variation draws are
  evaluated as one vectorized Monte-Carlo pass — the default whenever the
  model can be compiled;
* the **eager reference path**: the original per-batch evaluation through
  the layer stack, kept as the ground truth the runtime is tested against
  and as the fallback for models the compiler does not know.

``use_runtime=None`` (the default) tries the runtime and silently falls
back; ``True`` insists (raising :class:`PlanCompilationError` if the model
cannot be compiled, or :class:`ValueError` if per-layer variation is
currently enabled on the model); ``False`` forces the eager path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.mapping.mapped_layer import _MappedBase
from repro.nn.losses import count_correct
from repro.nn.module import Module
from repro.runtime.engine import compile_model, plan_accuracy, try_compile
from repro.runtime.montecarlo import monte_carlo_accuracy
from repro.runtime.plan import InferencePlan
from repro.tensor import Tensor, no_grad


def _mapped_layers(model: Module) -> List[_MappedBase]:
    return [module for module in model.modules() if isinstance(module, _MappedBase)]


def plan_for(model: Module, use_runtime: Optional[bool] = True) -> Optional[InferencePlan]:
    """Resolve the runtime/eager choice to a plan (or ``None`` for eager).

    A model with per-layer variation currently enabled (``set_variation``)
    must evaluate eagerly — the plan freezes ideal weights and would silently
    drop the variation — so ``use_runtime=None`` falls back in that case.

    This is the canonical "trained model -> deployable plan" builder: the
    serving registry (:meth:`repro.serve.registry.PlanRegistry.publish_model`)
    uses it so published artifacts carry exactly the semantics the evaluation
    helpers are tested against.
    """
    if use_runtime is False:
        return None
    variation_active = any(layer.variation is not None for layer in _mapped_layers(model))
    if use_runtime is True:
        if variation_active:
            raise ValueError(
                "cannot compile a model with per-layer variation enabled; "
                "disable it with set_variation(0.0) and use the Monte-Carlo "
                "engine (evaluate_under_variation / variation_sweep) instead"
            )
        return compile_model(model)
    if variation_active:
        return None
    return try_compile(model)


#: Backwards-compatible alias from before the helper was public.
_plan_for = plan_for


def evaluate_accuracy(
    model: Module,
    dataset: ArrayDataset,
    batch_size: int = 64,
    use_runtime: Optional[bool] = None,
) -> float:
    """Classification accuracy of ``model`` on ``dataset`` (no gradients)."""
    plan = plan_for(model, use_runtime)
    if plan is not None:
        return plan_accuracy(plan, dataset, batch_size=batch_size)
    was_training = model.training
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            images = dataset.images[start:start + batch_size]
            labels = dataset.labels[start:start + batch_size]
            logits = model(Tensor(images))
            correct += count_correct(logits, labels)
    if was_training:
        model.train()
    return correct / len(dataset)


def evaluate_under_variation(
    model: Module,
    dataset: ArrayDataset,
    sigma_fraction: float,
    rng: Optional[np.random.Generator] = None,
    batch_size: int = 64,
    use_runtime: Optional[bool] = None,
) -> float:
    """Accuracy with one sample of device variation applied to every mapped layer.

    No retraining or calibration is performed and the model's stored
    conductances are left untouched.  On the runtime path one perturbation is
    drawn per crossbar and held fixed for the whole dataset; on the eager
    path the draw is applied when each layer builds its conductance tensor.
    """
    layers = _mapped_layers(model)
    if not layers and sigma_fraction > 0:
        raise ValueError(
            "evaluate_under_variation requires a model with crossbar-mapped layers"
        )
    plan = plan_for(model, use_runtime)
    if plan is not None:
        if sigma_fraction == 0.0:
            return plan_accuracy(plan, dataset, batch_size=batch_size)
        accuracies = monte_carlo_accuracy(
            plan, dataset, sigma_fraction, num_samples=1, rng=rng,
            batch_size=batch_size,
        )
        return float(accuracies[0])
    rng = rng if rng is not None else np.random.default_rng()
    # The caller's rng drives this evaluation only; each layer's own seeded
    # variation stream is restored afterwards so later bare set_variation
    # calls stay reproducible.
    saved_rngs = [layer._variation_rng for layer in layers]
    for layer in layers:
        layer.set_variation(sigma_fraction, rng=rng)
    try:
        return evaluate_accuracy(model, dataset, batch_size=batch_size, use_runtime=False)
    finally:
        for layer, saved in zip(layers, saved_rngs):
            layer.set_variation(0.0)
            layer._variation_rng = saved


@dataclass
class VariationSweepResult:
    """Accuracy statistics of a variation sweep.

    Attributes
    ----------
    sigmas:
        The sigma values (as fractions of the conductance range) swept.
    mean_accuracy, std_accuracy:
        Per-sigma mean and standard deviation of accuracy across samples.
    samples:
        Raw per-sample accuracies, keyed by sigma.
    """

    sigmas: List[float] = field(default_factory=list)
    mean_accuracy: List[float] = field(default_factory=list)
    std_accuracy: List[float] = field(default_factory=list)
    samples: Dict[float, List[float]] = field(default_factory=dict)

    def record(self, sigma: float, accuracies: Sequence[float]) -> None:
        """Append one sigma point's raw accuracies and their statistics."""
        self.sigmas.append(float(sigma))
        self.mean_accuracy.append(float(np.mean(accuracies)))
        self.std_accuracy.append(float(np.std(accuracies)))
        self.samples[float(sigma)] = [float(a) for a in accuracies]


def variation_sweep(
    model: Module,
    dataset: ArrayDataset,
    sigmas: Sequence[float],
    num_samples: int = 25,
    seed: int = 0,
    batch_size: int = 64,
    use_runtime: Optional[bool] = None,
) -> VariationSweepResult:
    """Sweep device-variation sigma and average accuracy over repeated draws.

    On the runtime path the model is compiled once and each sigma point's
    ``num_samples`` draws are evaluated as a single vectorized Monte-Carlo
    pass; the eager path runs one full model evaluation per draw.

    Parameters
    ----------
    model:
        A trained model with crossbar-mapped layers.
    dataset:
        The evaluation dataset.
    sigmas:
        Sigma values as fractions of the conductance range (e.g. 0.05 = 5 %).
    num_samples:
        Number of independent variation draws per sigma (the paper uses 25).
    seed:
        Seed of the random generator that drives the variation draws.
    use_runtime:
        ``None`` compiles when possible and falls back to eager; ``True``
        forces the compiled path; ``False`` forces the eager reference path.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be at least 1")
    if not _mapped_layers(model) and any(sigma > 0 for sigma in sigmas):
        raise ValueError(
            "variation_sweep requires a model with crossbar-mapped layers"
        )
    result = VariationSweepResult()
    rng = np.random.default_rng(seed)
    plan = plan_for(model, use_runtime)
    for sigma in sigmas:
        if sigma == 0.0:
            if plan is not None:
                accuracies = [plan_accuracy(plan, dataset, batch_size=batch_size)]
            else:
                accuracies = [
                    evaluate_accuracy(
                        model, dataset, batch_size=batch_size, use_runtime=False
                    )
                ]
        elif plan is not None:
            accuracies = monte_carlo_accuracy(
                plan, dataset, sigma, num_samples=num_samples, rng=rng,
                batch_size=batch_size,
            )
        else:
            accuracies = [
                evaluate_under_variation(
                    model, dataset, sigma, rng=rng, batch_size=batch_size,
                    use_runtime=False,
                )
                for _ in range(num_samples)
            ]
        result.record(sigma, accuracies)
    return result
