"""Inference evaluation under device variation (the paper's Fig. 6 protocol).

After training, zero-mean Gaussian variation is added to every crossbar
conductance and inference accuracy is measured without any fine-tuning.  The
paper averages 25 variation samples per data point; :func:`variation_sweep`
repeats the measurement for a list of sigma values and returns the mean and
standard deviation per point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.mapping.mapped_layer import _MappedBase
from repro.nn.losses import accuracy
from repro.nn.module import Module
from repro.tensor import Tensor, no_grad


def evaluate_accuracy(
    model: Module, dataset: ArrayDataset, batch_size: int = 64
) -> float:
    """Classification accuracy of ``model`` on ``dataset`` (no gradients)."""
    was_training = model.training
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            images = dataset.images[start:start + batch_size]
            labels = dataset.labels[start:start + batch_size]
            logits = model(Tensor(images))
            correct += int(accuracy(logits, labels) * len(labels))
    if was_training:
        model.train()
    return correct / len(dataset)


def _mapped_layers(model: Module) -> List[_MappedBase]:
    return [module for module in model.modules() if isinstance(module, _MappedBase)]


def evaluate_under_variation(
    model: Module,
    dataset: ArrayDataset,
    sigma_fraction: float,
    rng: Optional[np.random.Generator] = None,
    batch_size: int = 64,
) -> float:
    """Accuracy with one sample of device variation applied to every mapped layer.

    The variation draw is applied when each layer builds its conductance
    tensor at inference time; no retraining or calibration is performed, and
    the model's stored conductances are left untouched.
    """
    rng = rng if rng is not None else np.random.default_rng()
    layers = _mapped_layers(model)
    if not layers and sigma_fraction > 0:
        raise ValueError(
            "evaluate_under_variation requires a model with crossbar-mapped layers"
        )
    for layer in layers:
        layer.set_variation(sigma_fraction, rng=rng)
    try:
        return evaluate_accuracy(model, dataset, batch_size=batch_size)
    finally:
        for layer in layers:
            layer.set_variation(0.0)


@dataclass
class VariationSweepResult:
    """Accuracy statistics of a variation sweep.

    Attributes
    ----------
    sigmas:
        The sigma values (as fractions of the conductance range) swept.
    mean_accuracy, std_accuracy:
        Per-sigma mean and standard deviation of accuracy across samples.
    samples:
        Raw per-sample accuracies, keyed by sigma.
    """

    sigmas: List[float] = field(default_factory=list)
    mean_accuracy: List[float] = field(default_factory=list)
    std_accuracy: List[float] = field(default_factory=list)
    samples: Dict[float, List[float]] = field(default_factory=dict)


def variation_sweep(
    model: Module,
    dataset: ArrayDataset,
    sigmas: Sequence[float],
    num_samples: int = 25,
    seed: int = 0,
    batch_size: int = 64,
) -> VariationSweepResult:
    """Sweep device-variation sigma and average accuracy over repeated draws.

    Parameters
    ----------
    model:
        A trained model with crossbar-mapped layers.
    dataset:
        The evaluation dataset.
    sigmas:
        Sigma values as fractions of the conductance range (e.g. 0.05 = 5 %).
    num_samples:
        Number of independent variation draws per sigma (the paper uses 25).
    seed:
        Seed of the random generator that drives the variation draws.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be at least 1")
    result = VariationSweepResult()
    rng = np.random.default_rng(seed)
    for sigma in sigmas:
        accuracies = []
        if sigma == 0.0:
            accuracies.append(evaluate_accuracy(model, dataset, batch_size=batch_size))
        else:
            for _ in range(num_samples):
                accuracies.append(
                    evaluate_under_variation(
                        model, dataset, sigma, rng=rng, batch_size=batch_size
                    )
                )
        result.sigmas.append(float(sigma))
        result.mean_accuracy.append(float(np.mean(accuracies)))
        result.std_accuracy.append(float(np.std(accuracies)))
        result.samples[float(sigma)] = [float(a) for a in accuracies]
    return result
