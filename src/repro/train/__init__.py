"""Training loops and evaluation under device non-idealities.

The :class:`~repro.train.trainer.Trainer` runs minibatch SGD on any model
(baseline or crossbar-mapped) and records per-epoch training/test error — the
quantity plotted throughout the paper's Fig. 5.  The evaluation helpers in
:mod:`repro.train.evaluate` implement the Fig. 6 protocol: add device
variation to a trained model's conductances and measure inference accuracy
without any retraining.
"""

from repro.train.trainer import Trainer, TrainingConfig, TrainingHistory
from repro.train.evaluate import (
    evaluate_accuracy,
    evaluate_under_variation,
    VariationSweepResult,
    variation_sweep,
)

__all__ = [
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "evaluate_accuracy",
    "evaluate_under_variation",
    "VariationSweepResult",
    "variation_sweep",
]
