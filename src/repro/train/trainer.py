"""Minibatch SGD training with crossbar-aware hooks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.data.dataset import ArrayDataset, DataLoader
from repro.mapping.mapped_layer import _MappedBase
from repro.nn.losses import CrossEntropyLoss, count_correct
from repro.nn.module import Module
from repro.optim.sgd import SGD
from repro.optim.schedules import ConstantLR
from repro.tensor import Tensor, no_grad
from repro.xbar.device import NonlinearDevice, NonlinearUpdateRule


@dataclass
class TrainingConfig:
    """Hyper-parameters of a training run.

    Attributes
    ----------
    epochs, batch_size, lr, momentum, weight_decay:
        Standard SGD hyper-parameters (the paper uses vanilla SGD).
    nonlinear_update:
        If ``True``, crossbar parameters are updated through the symmetric
        non-linear device model instead of the ideal linear update.
    nonlinearity, device_pulses:
        Parameters of the non-linear device (ignored when
        ``nonlinear_update`` is False).
    activation_bits:
        If set, activations fed to the network are quantised to this many
        bits (the paper reports 8-bit activations).
    seed:
        Seed for data shuffling.
    """

    epochs: int = 10
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    nonlinear_update: bool = False
    nonlinearity: float = 3.0
    device_pulses: int = 64
    activation_bits: Optional[int] = None
    seed: int = 0


@dataclass
class TrainingHistory:
    """Per-epoch metrics recorded during training."""

    train_error: List[float] = field(default_factory=list)
    test_error: List[float] = field(default_factory=list)
    train_loss: List[float] = field(default_factory=list)
    epochs: List[int] = field(default_factory=list)

    @property
    def final_train_error(self) -> float:
        return self.train_error[-1] if self.train_error else float("nan")

    @property
    def final_test_error(self) -> float:
        return self.test_error[-1] if self.test_error else float("nan")

    @property
    def best_test_error(self) -> float:
        return min(self.test_error) if self.test_error else float("nan")


def _quantize_activations(images: np.ndarray, bits: int) -> np.ndarray:
    """Uniformly quantise activations (network inputs) to ``bits`` bits."""
    low, high = images.min(), images.max()
    if high == low:
        return images
    levels = 2 ** bits - 1
    scaled = (images - low) / (high - low)
    return np.round(scaled * levels) / levels * (high - low) + low


class Trainer:
    """Train a model on an :class:`ArrayDataset` pair and record error curves.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.module.Module` producing class logits.
    train_set, test_set:
        Training and held-out datasets.
    config:
        The :class:`TrainingConfig` hyper-parameters.
    scheduler_factory:
        Optional callable mapping an optimiser to a learning-rate schedule;
        defaults to a constant learning rate.
    """

    def __init__(
        self,
        model: Module,
        train_set: ArrayDataset,
        test_set: ArrayDataset,
        config: TrainingConfig = TrainingConfig(),
        scheduler_factory=None,
    ):
        self.model = model
        self.train_set = train_set
        self.test_set = test_set
        self.config = config
        self.loss_fn = CrossEntropyLoss()

        update_rule = None
        if config.nonlinear_update:
            # Every mapped layer has its own conductance range; the non-linear
            # update rule is built per-parameter below using a shared device
            # shape (nonlinearity, pulses) but the layer's own range.
            update_rule = self._build_update_rule()

        self.optimizer = SGD(
            model.parameters(),
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
            update_rule=update_rule,
        )
        if scheduler_factory is None:
            self.scheduler = ConstantLR(self.optimizer)
        else:
            self.scheduler = scheduler_factory(self.optimizer)
        self.history = TrainingHistory()
        self._rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------ #
    # Device-update plumbing
    # ------------------------------------------------------------------ #
    def _build_update_rule(self):
        """Create a non-linear update rule spanning the model's conductance ranges.

        Different mapped layers may use different conductance full scales, so
        the rule dispatches on the parameter's range.  The dispatch works by
        keying device models on the range bounds.
        """
        config = self.config
        mapped_layers = [
            module for module in self.model.modules() if isinstance(module, _MappedBase)
        ]
        devices = {}
        for layer in mapped_layers:
            key = (layer.conductance_range.g_min, layer.conductance_range.g_max)
            if key not in devices:
                devices[key] = NonlinearDevice(
                    nonlinearity=config.nonlinearity,
                    num_pulses=config.device_pulses,
                    range=layer.conductance_range,
                )
        # The SGD hook receives only (data, delta); to route per layer, key the
        # device model on the identity of the parameter's data buffer.
        buffer_to_device = {
            id(layer.crossbar.data): devices[
                (layer.conductance_range.g_min, layer.conductance_range.g_max)
            ]
            for layer in mapped_layers
        }
        fallback_device = NonlinearDevice(
            nonlinearity=config.nonlinearity, num_pulses=config.device_pulses
        )

        class _DispatchingRule:
            def apply(self, weights, ideal_delta):
                device = buffer_to_device.get(id(weights), fallback_device)
                return NonlinearUpdateRule(device).apply(weights, ideal_delta)

        return _DispatchingRule()

    # ------------------------------------------------------------------ #
    # Training / evaluation
    # ------------------------------------------------------------------ #
    def _prepare_inputs(self, images: np.ndarray) -> np.ndarray:
        if self.config.activation_bits is not None:
            return _quantize_activations(images, self.config.activation_bits)
        return images

    def evaluate(self, dataset: ArrayDataset, batch_size: Optional[int] = None) -> float:
        """Return classification accuracy of the current model on ``dataset``."""
        self.model.eval()
        batch = batch_size if batch_size is not None else self.config.batch_size
        correct = 0
        with no_grad():
            for start in range(0, len(dataset), batch):
                images = self._prepare_inputs(dataset.images[start:start + batch])
                labels = dataset.labels[start:start + batch]
                logits = self.model(Tensor(images))
                correct += count_correct(logits, labels)
        self.model.train()
        return correct / len(dataset)

    def train_epoch(self, loader: DataLoader) -> float:
        """Run one epoch of SGD; return the mean training loss."""
        self.model.train()
        losses = []
        for images, labels in loader:
            images = self._prepare_inputs(images)
            logits = self.model(Tensor(images))
            loss = self.loss_fn(logits, labels)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            self._project_conductances()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else float("nan")

    def _project_conductances(self) -> None:
        """Clip mapped-layer conductances into their device range after a step."""
        for module in self.model.modules():
            if isinstance(module, _MappedBase):
                module.clip_conductances()

    def fit(self, verbose: bool = False) -> TrainingHistory:
        """Train for the configured number of epochs and return the history."""
        loader = DataLoader(
            self.train_set,
            batch_size=self.config.batch_size,
            shuffle=True,
            rng=self._rng,
        )
        for epoch in range(self.config.epochs):
            self.scheduler.step(epoch)
            train_loss = self.train_epoch(loader)
            train_accuracy = self.evaluate(self.train_set)
            test_accuracy = self.evaluate(self.test_set)
            self.history.epochs.append(epoch)
            self.history.train_loss.append(train_loss)
            self.history.train_error.append(100.0 * (1.0 - train_accuracy))
            self.history.test_error.append(100.0 * (1.0 - test_accuracy))
            if verbose:
                print(
                    f"epoch {epoch:3d}  loss {train_loss:.4f}  "
                    f"train err {self.history.train_error[-1]:6.2f}%  "
                    f"test err {self.history.test_error[-1]:6.2f}%"
                )
        return self.history
