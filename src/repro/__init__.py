"""Reproduction of the DAC 2020 paper on device-non-ideality-resilient mapping
of neural networks to crossbar arrays (Kazemi et al.).

The package is organised as a stack of substrates topped by the paper's core
contribution:

``repro.tensor``
    A reverse-mode automatic-differentiation engine on top of NumPy.
``repro.nn`` / ``repro.optim``
    Neural-network layers, losses, and SGD-family optimisers built on the
    autograd engine (the TensorFlow substitute used by the paper).
``repro.data``
    Synthetic, deterministic MNIST-like and CIFAR-like classification tasks
    (the datasets themselves cannot be downloaded in this environment).
``repro.xbar``
    Crossbar-array device models: conductance quantisation, symmetric
    non-linear weight update, Gaussian device variation, and array tiling.
``repro.mapping``
    The paper's core contribution: periphery matrices (ACM, DE, BC), the
    ``W = S @ M`` decomposition with its sufficient conditions, and mapped
    (non-negative) layers usable inside any network.
``repro.models``
    LeNet, VGG-9, ResNet-20 and MLP factories, in baseline or mapped form.
``repro.train``
    Training loops with quantisation / non-linear-update hooks, and inference
    evaluation under device variation.
``repro.runtime``
    Compile-once / run-many inference: trained models are frozen into
    serialisable execution plans (realized effective weights, pure-NumPy
    ops) and the Fig. 6 variation protocol runs as a vectorized Monte-Carlo
    sweep over the plan.
``repro.serve``
    The plan-serving subsystem: a multi-model plan registry (lazy loading,
    LRU caching, content digests), a dynamic micro-batching scheduler, an
    inference service with deterministic and variation-ensemble requests,
    and a process-pool driver that parallelises the Fig. 6 study.
``repro.api``
    The unified typed client layer over the serving stack: one ``Client``
    protocol with interchangeable in-process, HTTP, and cluster backends
    (``repro.api.connect("local:DIR" | "http://host:port" |
    "cluster:DIR?workers=N")``), shared request/response dataclasses, and
    a typed error hierarchy with stable machine-readable codes.
``repro.hardware``
    A NeuroSim-style analytical area/energy/delay estimator used to reproduce
    the paper's Table I.
``repro.experiments``
    One driver per paper figure/table (Fig. 5a-h, Fig. 6, Table I).
"""

from repro.tensor import Tensor
from repro.mapping import (
    PeripheryMatrix,
    acm_periphery,
    bc_periphery,
    de_periphery,
    decompose,
    MappedLinear,
    MappedConv2d,
)
from repro.runtime import InferencePlan, compile_model, try_compile

__version__ = "1.1.0"

__all__ = [
    "Tensor",
    "PeripheryMatrix",
    "acm_periphery",
    "bc_periphery",
    "de_periphery",
    "decompose",
    "MappedLinear",
    "MappedConv2d",
    "InferencePlan",
    "compile_model",
    "try_compile",
    "__version__",
]
