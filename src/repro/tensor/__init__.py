"""Reverse-mode automatic differentiation on top of NumPy.

This subpackage is the substrate that replaces TensorFlow in the paper's
experimental stack.  It provides a :class:`Tensor` type that records a dynamic
computation graph and can back-propagate gradients through all the operations
needed by the networks in the paper (dense layers, 2-D convolutions, batch
normalisation, pooling, and the usual element-wise non-linearities).

Only the features the reproduction needs are implemented; the implementation
favours clarity over generality.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional"]
