"""A small reverse-mode automatic-differentiation engine on NumPy arrays.

The :class:`Tensor` class wraps a ``numpy.ndarray`` and records the operations
applied to it in a dynamic computation graph.  Calling :meth:`Tensor.backward`
on a scalar result walks the graph in reverse topological order and
accumulates gradients into every tensor created with ``requires_grad=True``.

The engine supports broadcasting for element-wise operations; gradients of
broadcast operands are reduced back to the operand's original shape.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return ``True`` if gradient recording is currently enabled."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Operations executed inside the context produce tensors that do not track
    history, which makes pure inference (e.g. evaluation under device
    variation) cheaper.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    NumPy broadcasting can expand an operand along new leading axes and along
    axes of size one.  The gradient flowing back through a broadcast must be
    summed over those expanded axes so that it has the operand's shape again.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were 1 in the original shape but expanded.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a ``numpy.ndarray`` of floats.
    requires_grad:
        Whether gradients should be accumulated for this tensor during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self._op: str = ""

    # ------------------------------------------------------------------ #
    # Basic protocol / construction helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op or 'leaf'}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        out = Tensor(self.data, requires_grad=False)
        return out

    def copy(self) -> "Tensor":
        """Return a new leaf tensor with copied data."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    @staticmethod
    def zeros(shape: Sequence[int], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Sequence[int], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(
        shape: Sequence[int],
        requires_grad: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> "Tensor":
        generator = rng if rng is not None else np.random.default_rng()
        return Tensor(generator.standard_normal(shape), requires_grad=requires_grad)

    # ------------------------------------------------------------------ #
    # Graph construction helper
    # ------------------------------------------------------------------ #
    @classmethod
    def _make(
        cls,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        requires_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=requires_grad)
        if requires_grad:
            out._parents = parents
            out._backward = backward
            out._op = op
        return out

    # ------------------------------------------------------------------ #
    # Element-wise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(data, (self, other), backward, "add")

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(data, (self,), backward, "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._make(data, (self, other), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(data, (self, other), backward, "mul")

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        return Tensor._make(data, (self, other), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward, "pow")

    # ------------------------------------------------------------------ #
    # Matrix multiplication
    # ------------------------------------------------------------------ #
    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product ``self @ other`` for 2-D operands (and 1-D vectors)."""
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data).reshape(self.shape))
                else:
                    self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad).reshape(other.shape))
                else:
                    other._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return Tensor._make(data, (self, other), backward, "matmul")

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(data, (self,), backward, "reshape")

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        data = self.data.transpose(axes) if axes is not None else self.data.T
        inverse_axes = None
        if axes is not None:
            inverse_axes = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if axes is None:
                    self._accumulate(grad.T)
                else:
                    self._accumulate(grad.transpose(inverse_axes))

        return Tensor._make(data, (self,), backward, "transpose")

    def flatten(self, start_dim: int = 1) -> "Tensor":
        """Flatten all dimensions from ``start_dim`` onwards."""
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward, "getitem")

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions of a 4-D tensor."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        data = np.pad(self.data, pad_width)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                slices = tuple(
                    slice(None) for _ in range(self.ndim - 2)
                ) + (slice(padding, -padding), slice(padding, -padding))
                self._accumulate(grad[slices])

        return Tensor._make(data, (self,), backward, "pad2d")

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along ``axis`` with gradient support."""
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(index)])

        return Tensor._make(data, tuple(tensors), backward, "concatenate")

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                expanded = grad
                if axis is not None and not keepdims:
                    expanded = np.expand_dims(grad, axis=axis)
                self._accumulate(np.broadcast_to(expanded, self.shape).copy())

        return Tensor._make(data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, (tuple, list)):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                expanded_out = data
                expanded_grad = grad
                if axis is not None and not keepdims:
                    expanded_out = np.expand_dims(data, axis=axis)
                    expanded_grad = np.expand_dims(grad, axis=axis)
                mask = (self.data == expanded_out).astype(self.data.dtype)
                # Split gradient between ties so the total gradient is conserved.
                counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                self._accumulate(mask * expanded_grad / counts)

        return Tensor._make(data, (self,), backward, "max")

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (``ddof=0``) with gradient support."""
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # Element-wise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return Tensor._make(data, (self,), backward, "relu")

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward, "sigmoid")

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward, "abs")

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside the range."""
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inside = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * inside)

        return Tensor._make(data, (self,), backward, "clip")

    def quantize_ste(self, levels: np.ndarray) -> "Tensor":
        """Snap values to the nearest entry of ``levels``.

        The backward pass uses the straight-through estimator (STE): the
        gradient passes through unchanged.  This matches the quantised
        training recipe of DoReFa-style methods referenced by the paper.
        """
        levels = np.asarray(levels, dtype=self.data.dtype)
        indices = np.abs(self.data[..., None] - levels).argmin(axis=-1)
        data = levels[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)

        return Tensor._make(data, (self,), backward, "quantize_ste")

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exponentials = shifted.exp()
        return exponentials / exponentials.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate gradients from this tensor through the graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo_order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo_order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo_order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Comparisons (produce plain bool arrays; no gradients)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (gradients flow to each input)."""
    tensor_list = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    expanded = [t.reshape(*t.shape[:axis], 1, *t.shape[axis:]) for t in tensor_list]
    return Tensor.concatenate(expanded, axis=axis)
