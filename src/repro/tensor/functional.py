"""Convolution and pooling primitives built on the autograd :class:`Tensor`.

2-D convolution is implemented with the classic im2col/col2im lowering so the
heavy lifting happens in a single matrix multiplication, which keeps the
NumPy-based training of the paper's CNNs (LeNet, VGG-9, ResNet-20) tractable
on a CPU.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


def _pair(value) -> Tuple[int, int]:
    """Normalise an int-or-pair argument to a pair of ints."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    images: np.ndarray,
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Lower image patches into columns.

    Parameters
    ----------
    images:
        Array of shape ``(N, C, H, W)``.
    kernel_size, stride, padding:
        Convolution geometry, each as an ``(h, w)`` pair.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(N * H_out * W_out, C * kh * kw)`` where each row is
        one receptive field laid out channel-major.

    Notes
    -----
    The lowering materialises the column buffer exactly once: the patch
    windows are a zero-copy ``sliding_window_view``, stride selection and
    the row-major reordering are strided views, and the only data movement
    is the final ``ascontiguousarray`` that lays the rows out for the GEMM.
    (The previous implementation copied per kernel offset *and* again at
    the reshape of its transposed buffer.)
    """
    batch, channels, height, width = images.shape
    kernel_h, kernel_w = kernel_size
    stride_h, stride_w = stride
    pad_h, pad_w = padding

    out_h = conv_output_size(height, kernel_h, stride_h, pad_h)
    out_w = conv_output_size(width, kernel_w, stride_w, pad_w)

    if pad_h or pad_w:
        padded = np.pad(images, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)))
    else:
        padded = images

    # (N, C, H', W') -> (N, C, H'-kh+1, W'-kw+1, kh, kw), all views until
    # the single contiguous copy below.
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (kernel_h, kernel_w), axis=(2, 3)
    )
    windows = windows[:, :, ::stride_h, ::stride_w]
    columns = np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5))
    return columns.reshape(batch * out_h * out_w, channels * kernel_h * kernel_w)


def col2im(
    columns: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kernel_size: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter column gradients back to image space."""
    batch, channels, height, width = image_shape
    kernel_h, kernel_w = kernel_size
    stride_h, stride_w = stride
    pad_h, pad_w = padding

    out_h = conv_output_size(height, kernel_h, stride_h, pad_h)
    out_w = conv_output_size(width, kernel_w, stride_w, pad_w)

    columns = columns.reshape(batch, out_h, out_w, channels, kernel_h, kernel_w)
    columns = columns.transpose(0, 3, 4, 5, 1, 2)

    padded = np.zeros(
        (batch, channels, height + 2 * pad_h, width + 2 * pad_w), dtype=columns.dtype
    )
    for y in range(kernel_h):
        y_end = y + stride_h * out_h
        for x in range(kernel_w):
            x_end = x + stride_w * out_w
            padded[:, :, y:y_end:stride_h, x:x_end:stride_w] += columns[:, :, y, x, :, :]

    if pad_h == 0 and pad_w == 0:
        return padded
    return padded[:, :, pad_h:pad_h + height, pad_w:pad_w + width]


def conv2d(
    inputs: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride=1,
    padding=0,
) -> Tensor:
    """2-D convolution with autograd support.

    Parameters
    ----------
    inputs:
        Tensor of shape ``(N, C_in, H, W)``.
    weight:
        Tensor of shape ``(C_out, C_in, kh, kw)``.
    bias:
        Optional tensor of shape ``(C_out,)``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    out_channels, in_channels, kernel_h, kernel_w = weight.shape
    batch, channels, height, width = inputs.shape
    if channels != in_channels:
        raise ValueError(
            f"input has {channels} channels but weight expects {in_channels}"
        )

    out_h = conv_output_size(height, kernel_h, stride[0], padding[0])
    out_w = conv_output_size(width, kernel_w, stride[1], padding[1])

    columns = im2col(inputs.data, (kernel_h, kernel_w), stride, padding)
    weight_matrix = weight.data.reshape(out_channels, -1)

    output = columns @ weight_matrix.T
    if bias is not None:
        output = output + bias.data
    output = output.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)

    input_shape = inputs.shape

    def backward(grad: np.ndarray) -> None:
        grad_matrix = grad.transpose(0, 2, 3, 1).reshape(-1, out_channels)
        if weight.requires_grad:
            grad_weight = grad_matrix.T @ columns
            weight._accumulate(grad_weight.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_matrix.sum(axis=0))
        if inputs.requires_grad:
            grad_columns = grad_matrix @ weight_matrix
            grad_input = col2im(
                grad_columns, input_shape, (kernel_h, kernel_w), stride, padding
            )
            inputs._accumulate(grad_input)

    parents = (inputs, weight) if bias is None else (inputs, weight, bias)
    return Tensor._make(output, parents, backward, "conv2d")


def conv2d_from_matrix(
    inputs: Tensor,
    weight_matrix: Tensor,
    kernel_shape: Tuple[int, int, int],
    bias: Optional[Tensor] = None,
    stride=1,
    padding=0,
) -> Tensor:
    """2-D convolution whose weights are given as an ``(C_out, C_in*kh*kw)`` matrix.

    This is the form used by the mapped layers: the crossbar stores the
    flattened kernel matrix (possibly factored through a periphery matrix),
    and the convolution is performed as an im2col matrix product against it.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    in_channels, kernel_h, kernel_w = kernel_shape
    out_channels = weight_matrix.shape[0]
    batch, channels, height, width = inputs.shape
    if channels != in_channels:
        raise ValueError(
            f"input has {channels} channels but weight expects {in_channels}"
        )
    if weight_matrix.shape[1] != in_channels * kernel_h * kernel_w:
        raise ValueError(
            "weight matrix columns do not match the kernel shape: "
            f"{weight_matrix.shape[1]} != {in_channels * kernel_h * kernel_w}"
        )

    out_h = conv_output_size(height, kernel_h, stride[0], padding[0])
    out_w = conv_output_size(width, kernel_w, stride[1], padding[1])

    columns_np = im2col(inputs.data, (kernel_h, kernel_w), stride, padding)
    input_shape = inputs.shape

    # Route the input gradient through a custom node so col2im is applied.
    def columns_backward(grad: np.ndarray) -> None:
        if inputs.requires_grad:
            grad_input = col2im(
                grad, input_shape, (kernel_h, kernel_w), stride, padding
            )
            inputs._accumulate(grad_input)

    columns = Tensor._make(columns_np, (inputs,), columns_backward, "im2col")

    output = columns.matmul(weight_matrix.T)
    if bias is not None:
        output = output + bias
    output = output.reshape(batch, out_h, out_w, out_channels)
    return output.transpose((0, 3, 1, 2))


def max_pool2d(inputs: Tensor, kernel_size=2, stride=None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows."""
    kernel = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel
    batch, channels, height, width = inputs.shape
    out_h = conv_output_size(height, kernel[0], stride[0], 0)
    out_w = conv_output_size(width, kernel[1], stride[1], 0)

    windows = np.empty(
        (batch, channels, out_h, out_w, kernel[0] * kernel[1]), dtype=inputs.data.dtype
    )
    for y in range(kernel[0]):
        for x in range(kernel[1]):
            windows[..., y * kernel[1] + x] = inputs.data[
                :, :, y:y + stride[0] * out_h:stride[0], x:x + stride[1] * out_w:stride[1]
            ]
    argmax = windows.argmax(axis=-1)
    output = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        if inputs.requires_grad:
            grad_input = np.zeros_like(inputs.data)
            ky = argmax // kernel[1]
            kx = argmax % kernel[1]
            batch_idx, channel_idx, row_idx, col_idx = np.indices(argmax.shape)
            np.add.at(
                grad_input,
                (
                    batch_idx,
                    channel_idx,
                    row_idx * stride[0] + ky,
                    col_idx * stride[1] + kx,
                ),
                grad,
            )
            inputs._accumulate(grad_input)

    return Tensor._make(output, (inputs,), backward, "max_pool2d")


def avg_pool2d(inputs: Tensor, kernel_size=2, stride=None) -> Tensor:
    """Average pooling over windows."""
    kernel = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else kernel
    batch, channels, height, width = inputs.shape
    out_h = conv_output_size(height, kernel[0], stride[0], 0)
    out_w = conv_output_size(width, kernel[1], stride[1], 0)
    window_size = kernel[0] * kernel[1]

    output = np.zeros((batch, channels, out_h, out_w), dtype=inputs.data.dtype)
    for y in range(kernel[0]):
        for x in range(kernel[1]):
            output += inputs.data[
                :, :, y:y + stride[0] * out_h:stride[0], x:x + stride[1] * out_w:stride[1]
            ]
    output /= window_size

    def backward(grad: np.ndarray) -> None:
        if inputs.requires_grad:
            grad_input = np.zeros_like(inputs.data)
            share = grad / window_size
            for y in range(kernel[0]):
                for x in range(kernel[1]):
                    grad_input[
                        :, :,
                        y:y + stride[0] * out_h:stride[0],
                        x:x + stride[1] * out_w:stride[1],
                    ] += share
            inputs._accumulate(grad_input)

    return Tensor._make(output, (inputs,), backward, "avg_pool2d")


def global_avg_pool2d(inputs: Tensor) -> Tensor:
    """Average over the spatial dimensions, returning ``(N, C)``."""
    return inputs.mean(axis=(2, 3))
