"""The ``Client`` protocol and its in-process backend implementations.

A :class:`Client` is the one surface every consumer codes against:
typed requests in (:class:`~repro.api.types.PredictRequest`,
:class:`~repro.api.types.EnsembleRequest`), typed results out, typed
:class:`~repro.api.errors.ApiError` failures — with the transport an
implementation detail chosen at :func:`~repro.api.connect.connect` time:

* :class:`LocalClient` — wraps an in-process
  :class:`~repro.serve.service.InferenceService` (micro-batching included);
* :class:`~repro.api.http_client.HttpClient` — speaks the JSON wire
  protocol against a :class:`~repro.serve.http.PlanServer`;
* :class:`ClusterClient` — wraps a sharded multi-process
  :class:`~repro.serve.cluster.PlanCluster`.

All three return bit-identical float64 predictions for the same request
and raise the identical typed error for the same malformed input — the
backend-equivalence test matrix enforces both properties.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Type,
    TypeVar,
    cast,
)

from repro.api.errors import ApiError, WorkerDied, map_exception
from repro.api.types import (
    EnsembleRequest,
    EnsembleResult,
    HealthStatus,
    ModelInfo,
    PredictRequest,
    PredictResult,
    StudySpec,
    StudyStatus,
)
from repro.serve.cluster import PlanCluster
from repro.serve.jobs import JobManager
from repro.serve.service import InferenceService


class Client(Protocol):
    """Transport-agnostic serving client (structural protocol).

    Implementations are context managers; ``close()`` releases whatever
    the client owns (for ``own_backend=True`` wrappers, the backend too).
    """

    def predict(self, request: PredictRequest) -> PredictResult:
        """Deterministic logits for one request (bit-exact across backends)."""
        ...

    def ensemble(self, request: EnsembleRequest) -> EnsembleResult:
        """Seeded Monte-Carlo ensemble prediction under device variation."""
        ...

    def submit_study(self, spec: StudySpec) -> str:
        """Submit an asynchronous study job; returns its job id."""
        ...

    def get_study(self, job_id: str) -> StudyStatus:
        """Poll a study job: state, progress, and (when done) its result."""
        ...

    def cancel_study(self, job_id: str) -> StudyStatus:
        """Cancel a study job (idempotent); returns the resulting status."""
        ...

    def models(self) -> List[ModelInfo]:
        """The backend's published-plan catalogue (with content digests)."""
        ...

    def stats(self) -> Dict[str, Any]:
        """Serving statistics (micro-batching, caches, queue depths)."""
        ...

    def health(self) -> HealthStatus:
        """Liveness probe: backend status and catalogue size."""
        ...

    def close(self) -> None:
        """Release the client (and, when owned, its backend)."""
        ...

    def __enter__(self) -> "Client":
        ...

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        ...


_ClientT = TypeVar("_ClientT", bound="_BackendClient")
_ResultT = TypeVar("_ResultT")


class _BackendClient:
    """Shared plumbing of the two backend-wrapping clients."""

    def __init__(
        self,
        backend: Any,
        own_backend: bool,
        jobs_dir: Optional[str] = None,
    ) -> None:
        self.backend = backend
        self.own_backend = own_backend
        self.jobs_dir = jobs_dir
        self._jobs: Optional[JobManager] = None
        self._closed = False

    @property
    def jobs(self) -> JobManager:
        """The lazily created study-job manager of this client.

        Jobs execute through the wrapped backend in this process; with
        ``jobs_dir`` set they checkpoint there, and interrupted studies
        found on disk resume the moment the manager is first used.
        """
        if self._jobs is None:
            self._jobs = JobManager(self.backend, checkpoint_dir=self.jobs_dir)
            self._jobs.resume()
        return self._jobs

    def submit_study(self, spec: StudySpec) -> str:
        return self.jobs.submit(spec)

    def get_study(self, job_id: str) -> StudyStatus:
        return self.jobs.status(job_id)

    def cancel_study(self, job_id: str) -> StudyStatus:
        return self.jobs.cancel(job_id)

    def models(self) -> List[ModelInfo]:
        try:
            entries = self.backend.models()
        except ApiError:
            raise
        except Exception as error:
            raise map_exception(error) from error
        return [ModelInfo.from_wire(entry) for entry in entries]

    def stats(self) -> Dict[str, Any]:
        try:
            return cast(Dict[str, Any], self.backend.stats_summary())
        except ApiError:
            raise
        except Exception as error:
            raise map_exception(error) from error

    def health(self) -> HealthStatus:
        models = len(self.models())
        summarize = getattr(self.backend, "health_summary", None)
        if callable(summarize):
            # Cluster backends know about dead shards and open breakers;
            # report "degraded" with the per-shard detail, exactly like
            # the HTTP front-end's /healthz.
            status, detail = summarize()
            return HealthStatus(
                status=status, models=models,
                detail=None if status == "ok" else dict(detail),
            )
        return HealthStatus(status="ok", models=models)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._jobs is not None:
            self._jobs.close()
        if self.own_backend:
            self.backend.close()

    def __enter__(self: _ClientT) -> _ClientT:
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


class LocalClient(_BackendClient):
    """In-process backend: the service's schedulers, caches, and registry.

    ``connect("local:plans/")`` builds the registry + service and returns
    one of these with ``own_backend=True`` (closing the client drains the
    schedulers).  Wrap an existing service with ``own_backend=False`` to
    share it between a client and, say, an HTTP front-end.
    """

    def __init__(
        self,
        service: InferenceService,
        own_backend: bool = True,
        timeout: Optional[float] = 60.0,
        jobs_dir: Optional[str] = None,
    ) -> None:
        super().__init__(service, own_backend, jobs_dir=jobs_dir)
        self.timeout = timeout

    @property
    def service(self) -> InferenceService:
        return cast(InferenceService, self.backend)

    def predict(self, request: PredictRequest) -> PredictResult:
        return cast(
            PredictResult,
            self.backend.predict_request(request, timeout=self.timeout),
        )

    def ensemble(self, request: EnsembleRequest) -> EnsembleResult:
        return cast(
            EnsembleResult, self.backend.ensemble_request(request)
        )


class ClusterClient(_BackendClient):
    """Replicated multi-process backend: each model on R ring workers.

    ``connect("cluster:plans/?workers=4&replicas=2")`` spawns the cluster
    and returns one of these with ``own_backend=True``.

    Worker death is handled, not surfaced — in two layers.  First the
    cluster itself: every model has ``replicas`` owners on the
    consistent-hash ring, so a request stranded by a dead (or
    breaker-open) worker fails over to the next live replica *inside* the
    backend, and with R >= 2 this client usually never sees the death at
    all.  Then this client: every protocol request is idempotent/
    deterministic (the same argument that makes
    :class:`~repro.api.http_client.HttpClient` retry lost responses), so a
    request that still failed with :class:`~repro.api.errors.WorkerDied` —
    every owner down at once — against a *self-healing* cluster
    (``auto_restart=True``) is transparently retried with exponential
    backoff while the supervisor respawns workers, up to
    ``worker_died_retries`` attempts.  ``WorkerDied`` surfaces only when
    retrying cannot help: every owner's circuit breaker is open
    (``error.breaker_open``), the cluster does not auto-restart
    (``client.backend.restart_worker(i)`` re-admits manually), or the
    retry budget is exhausted while the owners are still down.
    """

    def __init__(
        self,
        cluster: PlanCluster,
        own_backend: bool = True,
        timeout: Optional[float] = 60.0,
        ensemble_timeout: Optional[float] = 120.0,
        worker_died_retries: int = 10,
        worker_died_backoff: float = 0.05,
        worker_died_backoff_cap: float = 1.0,
        jobs_dir: Optional[str] = None,
    ) -> None:
        if worker_died_retries < 0:
            raise ValueError("worker_died_retries must be non-negative")
        if worker_died_backoff < 0 or worker_died_backoff_cap < 0:
            raise ValueError("worker_died backoffs must be non-negative")
        super().__init__(cluster, own_backend, jobs_dir=jobs_dir)
        self.timeout = timeout
        # Ensembles run num_samples stacked passes, so they get the
        # cluster backend's larger default budget rather than inheriting
        # the deterministic-request timeout.
        self.ensemble_timeout = ensemble_timeout
        self.worker_died_retries = worker_died_retries
        self.worker_died_backoff = worker_died_backoff
        self.worker_died_backoff_cap = worker_died_backoff_cap

    @property
    def cluster(self) -> PlanCluster:
        return cast(PlanCluster, self.backend)

    def _retry_worker_died(self, call: Callable[[], _ResultT]) -> _ResultT:
        """Re-issue an idempotent request while its shard self-heals."""
        attempt = 0
        while True:
            try:
                return call()
            except WorkerDied as error:
                retryable = (
                    not error.breaker_open
                    and attempt < self.worker_died_retries
                    and getattr(self.backend, "auto_restart", False)
                )
                if not retryable:
                    raise
                time.sleep(min(self.worker_died_backoff * (2 ** attempt),
                               self.worker_died_backoff_cap))
                attempt += 1

    def predict(self, request: PredictRequest) -> PredictResult:
        return self._retry_worker_died(lambda: cast(
            PredictResult,
            self.backend.predict_request(request, timeout=self.timeout),
        ))

    def ensemble(self, request: EnsembleRequest) -> EnsembleResult:
        return self._retry_worker_died(lambda: cast(
            EnsembleResult,
            self.backend.ensemble_request(request,
                                          timeout=self.ensemble_timeout),
        ))
