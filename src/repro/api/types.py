"""Typed request/response dataclasses shared by every ``repro.api`` backend.

These are the transport-agnostic vocabulary of the client layer: a
:class:`PredictRequest` or :class:`EnsembleRequest` goes in, a
:class:`PredictResult` or :class:`EnsembleResult` comes out — whether the
call executed in-process (:class:`~repro.api.client.LocalClient`), over
HTTP (:class:`~repro.api.http_client.HttpClient`), or against a sharded
cluster (:class:`~repro.api.client.ClusterClient`).  The serve-side
backends consume and produce the same objects internally, so the HTTP
handlers are nothing but codecs (:mod:`repro.api.codec`) around them and
the cluster moves them across its pickle boundary verbatim.

Request construction validates the cheap invariants up front (non-empty
names, non-negative sigma, positive sample count) and raises the typed
:class:`~repro.api.errors.InvalidRequest`, so a malformed request fails
identically through every backend — before any transport is involved.

This module is import-pure (NumPy + stdlib only), so the low-level serve
modules may depend on it without import cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.api.errors import InvalidRequest


def bits_token(bits: Optional[int]) -> str:
    """Canonical device-precision token: ``4 -> "4b"``, ``None -> "fp32"``."""
    return "fp32" if bits is None else f"{int(bits)}b"


def parse_bits_token(token: str) -> Optional[int]:
    """Inverse of :func:`bits_token` (``"4b" -> 4``, ``"fp32" -> None``)."""
    if token == "fp32":
        return None
    if token.endswith("b") and token[:-1].isdigit():
        return int(token[:-1])
    raise InvalidRequest(f"unrecognised bits token {token!r}")


def canonical_name(model: str, bits: Optional[int], mapping: str) -> str:
    """The canonical plan name of one key, e.g. ``lenet__4b__acm``."""
    return f"{model}__{bits_token(bits)}__{mapping}"


def _validate_request_id(request_id: object) -> None:
    if request_id is None:
        return
    from repro.obs.tracing import valid_request_id

    if not valid_request_id(request_id):
        raise InvalidRequest(f"invalid request_id {request_id!r}")


def _validate_key_fields(model: object, mapping: object, bits: object) -> None:
    if not isinstance(model, str) or not model:
        raise InvalidRequest(f"model must be a non-empty string, not {model!r}")
    if not isinstance(mapping, str) or not mapping:
        raise InvalidRequest(f"mapping must be a non-empty string, not {mapping!r}")
    if bits is not None and (
        isinstance(bits, bool) or not isinstance(bits, int) or bits < 1
    ):
        raise InvalidRequest(f"bits must be a positive int or None, not {bits!r}")


@dataclass(frozen=True, eq=False)
class PredictRequest:
    """One deterministic inference request against a published plan.

    ``images`` is a single sample (the plan's input shape) or a pre-batched
    array; the result's ``logits`` mirror the choice — single samples come
    back as ``(classes,)`` logits without a batch axis.
    """

    images: np.ndarray
    model: str
    mapping: str
    bits: Optional[int] = None
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_key_fields(self.model, self.mapping, self.bits)
        _validate_request_id(self.request_id)

    @property
    def name(self) -> str:
        """Canonical name of the plan this request addresses."""
        return canonical_name(self.model, self.bits, self.mapping)


@dataclass(frozen=True, eq=False)
class EnsembleRequest:
    """One seeded Monte-Carlo ensemble request under device variation.

    The Fig. 6 protocol as a serving call: ``num_samples`` variation draws
    of every crossbar at ``sigma_fraction``, executed as one stacked pass.
    A fixed ``seed`` makes the whole response reproducible bit-for-bit.
    """

    images: np.ndarray
    model: str
    mapping: str
    bits: Optional[int] = None
    sigma_fraction: float = 0.1
    num_samples: int = 25
    seed: int = 0
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_key_fields(self.model, self.mapping, self.bits)
        _validate_request_id(self.request_id)
        sigma = self.sigma_fraction
        if (
            isinstance(sigma, bool)
            or not isinstance(sigma, (int, float))
            or not math.isfinite(sigma)
            or sigma < 0
        ):
            raise InvalidRequest(
                f"sigma_fraction must be a non-negative number, not {sigma!r}"
            )
        if isinstance(self.num_samples, bool) or not isinstance(
            self.num_samples, int
        ) or self.num_samples < 1:
            raise InvalidRequest(
                f"num_samples must be a positive integer, not {self.num_samples!r}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int) \
                or self.seed < 0:
            raise InvalidRequest(
                f"seed must be a non-negative integer, not {self.seed!r}"
            )

    @property
    def name(self) -> str:
        """Canonical name of the plan this request addresses."""
        return canonical_name(self.model, self.bits, self.mapping)


@dataclass(frozen=True, eq=False)
class PredictResult:
    """Deterministic logits for one :class:`PredictRequest`.

    ``logits`` is ``(batch, classes)`` float64 — or ``(classes,)`` when the
    request carried a single un-batched sample.  Results are bit-equivalent
    across backends: LocalClient, HttpClient (base64-packed float64), and
    ClusterClient all return the exact same array.
    """

    model: str
    bits: Optional[int]
    mapping: str
    logits: np.ndarray
    request_id: Optional[str] = None


@dataclass(frozen=True, eq=False)
class EnsembleResult:
    """Aggregated Monte-Carlo ensemble response for one :class:`EnsembleRequest`.

    Attributes
    ----------
    mean_logits:
        Logits averaged over the variation draws, ``(batch, classes)``
        (leading axis dropped for a single-sample request).
    predictions:
        Majority-vote class per input across the per-draw argmaxes.
    confidence:
        Fraction of draws that voted for the winning class — 1.0 means the
        prediction is stable under the requested device variation.
    vote_counts:
        Per-class vote counts, ``(batch, classes)``.
    sigma_fraction, num_samples, seed:
        The request parameters, echoed for reproducibility.
    request_id:
        The trace id this response was served under (echoed from the
        request, or server-assigned when the request carried none).
    """

    model: str
    bits: Optional[int]
    mapping: str
    mean_logits: np.ndarray
    predictions: np.ndarray
    confidence: np.ndarray
    vote_counts: np.ndarray
    sigma_fraction: float
    num_samples: int
    seed: int
    request_id: Optional[str] = None


@dataclass(frozen=True)
class ModelInfo:
    """One catalogue entry: a published plan and its content digest.

    ``worker`` is the owning shard index when the listing came from a
    cluster backend; ``None`` for single-process backends.
    """

    model: str
    bits: Optional[int]
    mapping: str
    name: str
    digest: str
    size_bytes: int
    worker: Optional[int] = None

    @classmethod
    def from_wire(cls, entry: Mapping[str, Any]) -> "ModelInfo":
        """Build from a catalogue dict (the ``GET /v1/models`` entry form)."""
        try:
            return cls(
                model=str(entry["model"]),
                bits=None if entry["bits"] is None else int(entry["bits"]),
                mapping=str(entry["mapping"]),
                name=str(entry["name"]),
                digest=str(entry["digest"]),
                size_bytes=int(entry["size_bytes"]),
                worker=None if entry.get("worker") is None
                else int(entry["worker"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise InvalidRequest(
                f"malformed catalogue entry {dict(entry)!r}: {error}"
            ) from None

    def to_wire(self) -> Dict[str, Any]:
        """The catalogue dict form (inverse of :meth:`from_wire`)."""
        entry: Dict[str, Any] = {
            "model": self.model,
            "bits": self.bits,
            "mapping": self.mapping,
            "name": self.name,
            "digest": self.digest,
            "size_bytes": self.size_bytes,
        }
        if self.worker is not None:
            entry["worker"] = self.worker
        return entry


@dataclass(frozen=True)
class HealthStatus:
    """Liveness probe result: backend status and catalogue size.

    ``status`` is ``"ok"`` when every shard is serving, ``"degraded"``
    when a cluster worker is dead or its breaker is open, ``"draining"``
    while the server refuses new work.  For non-ok statuses ``detail``
    carries the per-shard breakdown (the ``workers`` key on the wire).
    """

    status: str
    models: int
    detail: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_wire(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"status": self.status, "models": self.models}
        if self.detail is not None:
            body["workers"] = self.detail
        return body

    @classmethod
    def from_wire(cls, body: Mapping[str, Any]) -> "HealthStatus":
        workers = body.get("workers")
        return cls(status=str(body.get("status", "unknown")),
                   models=int(body.get("models", 0)),
                   detail=None if workers is None else dict(workers))


# Explicit names help `from repro.api.types import *` stay intentional and
# give the lazily re-exporting package __init__ one list to mirror.
__all__ = [
    "EnsembleRequest",
    "EnsembleResult",
    "HealthStatus",
    "ModelInfo",
    "PredictRequest",
    "PredictResult",
    "bits_token",
    "canonical_name",
    "parse_bits_token",
]
