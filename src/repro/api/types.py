"""Typed request/response dataclasses shared by every ``repro.api`` backend.

These are the transport-agnostic vocabulary of the client layer: a
:class:`PredictRequest` or :class:`EnsembleRequest` goes in, a
:class:`PredictResult` or :class:`EnsembleResult` comes out — whether the
call executed in-process (:class:`~repro.api.client.LocalClient`), over
HTTP (:class:`~repro.api.http_client.HttpClient`), or against a sharded
cluster (:class:`~repro.api.client.ClusterClient`).  The serve-side
backends consume and produce the same objects internally, so the HTTP
handlers are nothing but codecs (:mod:`repro.api.codec`) around them and
the cluster moves them across its pickle boundary verbatim.

Request construction validates the cheap invariants up front (non-empty
names, non-negative sigma, positive sample count) and raises the typed
:class:`~repro.api.errors.InvalidRequest`, so a malformed request fails
identically through every backend — before any transport is involved.

This module is import-pure (NumPy + stdlib only), so the low-level serve
modules may depend on it without import cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.api.errors import InvalidRequest


def bits_token(bits: Optional[int]) -> str:
    """Canonical device-precision token: ``4 -> "4b"``, ``None -> "fp32"``."""
    return "fp32" if bits is None else f"{int(bits)}b"


def parse_bits_token(token: str) -> Optional[int]:
    """Inverse of :func:`bits_token` (``"4b" -> 4``, ``"fp32" -> None``)."""
    if token == "fp32":
        return None
    if token.endswith("b") and token[:-1].isdigit():
        return int(token[:-1])
    raise InvalidRequest(f"unrecognised bits token {token!r}")


def canonical_name(model: str, bits: Optional[int], mapping: str) -> str:
    """The canonical plan name of one key, e.g. ``lenet__4b__acm``."""
    return f"{model}__{bits_token(bits)}__{mapping}"


def _validate_request_id(request_id: object) -> None:
    if request_id is None:
        return
    from repro.obs.tracing import valid_request_id

    if not valid_request_id(request_id):
        raise InvalidRequest(f"invalid request_id {request_id!r}")


def _validate_key_fields(model: object, mapping: object, bits: object) -> None:
    if not isinstance(model, str) or not model:
        raise InvalidRequest(f"model must be a non-empty string, not {model!r}")
    if not isinstance(mapping, str) or not mapping:
        raise InvalidRequest(f"mapping must be a non-empty string, not {mapping!r}")
    if bits is not None and (
        isinstance(bits, bool) or not isinstance(bits, int) or bits < 1
    ):
        raise InvalidRequest(f"bits must be a positive int or None, not {bits!r}")


@dataclass(frozen=True, eq=False)
class PredictRequest:
    """One deterministic inference request against a published plan.

    ``images`` is a single sample (the plan's input shape) or a pre-batched
    array; the result's ``logits`` mirror the choice — single samples come
    back as ``(classes,)`` logits without a batch axis.
    """

    images: np.ndarray
    model: str
    mapping: str
    bits: Optional[int] = None
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_key_fields(self.model, self.mapping, self.bits)
        _validate_request_id(self.request_id)

    @property
    def name(self) -> str:
        """Canonical name of the plan this request addresses."""
        return canonical_name(self.model, self.bits, self.mapping)


@dataclass(frozen=True, eq=False)
class EnsembleRequest:
    """One seeded Monte-Carlo ensemble request under device variation.

    The Fig. 6 protocol as a serving call: ``num_samples`` variation draws
    of every crossbar at ``sigma_fraction``, executed as one stacked pass.
    A fixed ``seed`` makes the whole response reproducible bit-for-bit.
    """

    images: np.ndarray
    model: str
    mapping: str
    bits: Optional[int] = None
    sigma_fraction: float = 0.1
    num_samples: int = 25
    seed: int = 0
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_key_fields(self.model, self.mapping, self.bits)
        _validate_request_id(self.request_id)
        sigma = self.sigma_fraction
        if (
            isinstance(sigma, bool)
            or not isinstance(sigma, (int, float))
            or not math.isfinite(sigma)
            or sigma < 0
        ):
            raise InvalidRequest(
                f"sigma_fraction must be a non-negative number, not {sigma!r}"
            )
        if isinstance(self.num_samples, bool) or not isinstance(
            self.num_samples, int
        ) or self.num_samples < 1:
            raise InvalidRequest(
                f"num_samples must be a positive integer, not {self.num_samples!r}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int) \
                or self.seed < 0:
            raise InvalidRequest(
                f"seed must be a non-negative integer, not {self.seed!r}"
            )

    @property
    def name(self) -> str:
        """Canonical name of the plan this request addresses."""
        return canonical_name(self.model, self.bits, self.mapping)


@dataclass(frozen=True, eq=False)
class PredictResult:
    """Deterministic logits for one :class:`PredictRequest`.

    ``logits`` is ``(batch, classes)`` float64 — or ``(classes,)`` when the
    request carried a single un-batched sample.  Results are bit-equivalent
    across backends: LocalClient, HttpClient (base64-packed float64), and
    ClusterClient all return the exact same array.
    """

    model: str
    bits: Optional[int]
    mapping: str
    logits: np.ndarray
    request_id: Optional[str] = None


@dataclass(frozen=True, eq=False)
class EnsembleResult:
    """Aggregated Monte-Carlo ensemble response for one :class:`EnsembleRequest`.

    Attributes
    ----------
    mean_logits:
        Logits averaged over the variation draws, ``(batch, classes)``
        (leading axis dropped for a single-sample request).
    predictions:
        Majority-vote class per input across the per-draw argmaxes.
    confidence:
        Fraction of draws that voted for the winning class — 1.0 means the
        prediction is stable under the requested device variation.
    vote_counts:
        Per-class vote counts, ``(batch, classes)``.
    sigma_fraction, num_samples, seed:
        The request parameters, echoed for reproducibility.
    request_id:
        The trace id this response was served under (echoed from the
        request, or server-assigned when the request carried none).
    """

    model: str
    bits: Optional[int]
    mapping: str
    mean_logits: np.ndarray
    predictions: np.ndarray
    confidence: np.ndarray
    vote_counts: np.ndarray
    sigma_fraction: float
    num_samples: int
    seed: int
    request_id: Optional[str] = None


@dataclass(frozen=True)
class ModelInfo:
    """One catalogue entry: a published plan and its content digest.

    ``worker`` is the owning shard index when the listing came from a
    cluster backend; ``None`` for single-process backends.  ``version`` is
    the plan's rollout version (1 = the original, unsuffixed artifact).
    """

    model: str
    bits: Optional[int]
    mapping: str
    name: str
    digest: str
    size_bytes: int
    worker: Optional[int] = None
    version: int = 1

    @classmethod
    def from_wire(cls, entry: Mapping[str, Any]) -> "ModelInfo":
        """Build from a catalogue dict (the ``GET /v1/models`` entry form)."""
        try:
            return cls(
                model=str(entry["model"]),
                bits=None if entry["bits"] is None else int(entry["bits"]),
                mapping=str(entry["mapping"]),
                name=str(entry["name"]),
                digest=str(entry["digest"]),
                size_bytes=int(entry["size_bytes"]),
                worker=None if entry.get("worker") is None
                else int(entry["worker"]),
                version=int(entry.get("version", 1)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise InvalidRequest(
                f"malformed catalogue entry {dict(entry)!r}: {error}"
            ) from None

    def to_wire(self) -> Dict[str, Any]:
        """The catalogue dict form (inverse of :meth:`from_wire`)."""
        entry: Dict[str, Any] = {
            "model": self.model,
            "bits": self.bits,
            "mapping": self.mapping,
            "version": self.version,
            "name": self.name,
            "digest": self.digest,
            "size_bytes": self.size_bytes,
        }
        if self.worker is not None:
            entry["worker"] = self.worker
        return entry


@dataclass(frozen=True)
class HealthStatus:
    """Liveness probe result: backend status and catalogue size.

    ``status`` is ``"ok"`` when every shard is serving, ``"degraded"``
    when a cluster worker is dead or its breaker is open, ``"draining"``
    while the server refuses new work.  For non-ok statuses ``detail``
    carries the per-shard breakdown (the ``workers`` key on the wire).
    """

    status: str
    models: int
    detail: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_wire(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"status": self.status, "models": self.models}
        if self.detail is not None:
            body["workers"] = self.detail
        return body

    @classmethod
    def from_wire(cls, body: Mapping[str, Any]) -> "HealthStatus":
        workers = body.get("workers")
        return cls(status=str(body.get("status", "unknown")),
                   models=int(body.get("models", 0)),
                   detail=None if workers is None else dict(workers))


@dataclass(frozen=True)
class StudyModel:
    """One plan selector inside a :class:`StudySpec` (a model/mapping/bits
    triple — the same addressing vocabulary as the per-request types)."""

    model: str
    mapping: str
    bits: Optional[int] = None

    def __post_init__(self) -> None:
        _validate_key_fields(self.model, self.mapping, self.bits)

    @property
    def name(self) -> str:
        """Canonical name of the plan this selector addresses."""
        return canonical_name(self.model, self.bits, self.mapping)


@dataclass(frozen=True, eq=False)
class StudySpec:
    """A typed sweep specification: model selectors × sigma grid × ensemble
    parameters, submitted as one asynchronous study job.

    The job decomposes into ``len(models) * len(sigmas)`` *cells*, one
    seeded :class:`EnsembleRequest` each — idempotent pure functions of the
    spec, which is what makes checkpoint/resume bit-exact.  When ``labels``
    is given (one int per image), every cell also scores majority-vote
    accuracy against it.
    """

    images: np.ndarray
    models: Tuple[StudyModel, ...]
    sigmas: Tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25)
    num_samples: int = 25
    seed: int = 0
    labels: Optional[np.ndarray] = None
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        images = np.asarray(self.images)
        if images.ndim < 1 or images.shape[0] < 1:
            raise InvalidRequest(
                f"images must have a non-empty leading batch axis, "
                f"got shape {images.shape}"
            )
        object.__setattr__(self, "images", images)
        models = tuple(self.models) if isinstance(
            self.models, (tuple, list)
        ) else None
        if not models:
            raise InvalidRequest(
                f"models must be a non-empty sequence of StudyModel, "
                f"not {self.models!r}"
            )
        for selector in models:
            if not isinstance(selector, StudyModel):
                raise InvalidRequest(
                    f"models entries must be StudyModel, not {selector!r}"
                )
        object.__setattr__(self, "models", models)
        sigmas = tuple(self.sigmas) if isinstance(
            self.sigmas, (tuple, list)
        ) else None
        if not sigmas:
            raise InvalidRequest(
                f"sigmas must be a non-empty sequence of numbers, "
                f"not {self.sigmas!r}"
            )
        cleaned: List[float] = []
        for sigma in sigmas:
            if (
                isinstance(sigma, bool)
                or not isinstance(sigma, (int, float))
                or not math.isfinite(sigma)
                or sigma < 0
            ):
                raise InvalidRequest(
                    f"sigmas must be non-negative finite numbers, got {sigma!r}"
                )
            cleaned.append(float(sigma))
        object.__setattr__(self, "sigmas", tuple(cleaned))
        if isinstance(self.num_samples, bool) or not isinstance(
            self.num_samples, int
        ) or self.num_samples < 1:
            raise InvalidRequest(
                f"num_samples must be a positive integer, not {self.num_samples!r}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int) \
                or self.seed < 0:
            raise InvalidRequest(
                f"seed must be a non-negative integer, not {self.seed!r}"
            )
        if self.labels is not None:
            labels = np.asarray(self.labels)
            if labels.ndim != 1 or labels.shape[0] != images.shape[0]:
                raise InvalidRequest(
                    f"labels must be one per image; got images "
                    f"{images.shape} and labels {labels.shape}"
                )
            object.__setattr__(self, "labels", labels)
        _validate_request_id(self.request_id)

    @property
    def cell_count(self) -> int:
        """Total cells this spec decomposes into (model-major order)."""
        return len(self.models) * len(self.sigmas)

    def cell(self, index: int) -> Tuple[StudyModel, float]:
        """The (selector, sigma) pair of cell ``index`` (model-major)."""
        if not 0 <= index < self.cell_count:
            raise InvalidRequest(
                f"cell index {index} out of range for {self.cell_count} cells"
            )
        return (
            self.models[index // len(self.sigmas)],
            self.sigmas[index % len(self.sigmas)],
        )


@dataclass(frozen=True, eq=False)
class StudyCellResult:
    """One completed cell: the ensemble aggregates for (selector, sigma).

    ``accuracy`` is the majority-vote accuracy against the spec's labels,
    or ``None`` when the study ran unlabelled.
    """

    model: str
    bits: Optional[int]
    mapping: str
    sigma_fraction: float
    mean_logits: np.ndarray
    predictions: np.ndarray
    confidence: np.ndarray
    accuracy: Optional[float] = None

    @property
    def name(self) -> str:
        return canonical_name(self.model, self.bits, self.mapping)


@dataclass(frozen=True, eq=False)
class StudyResult:
    """The completed study: every cell, model-major then sigma-minor —
    exactly the spec's decomposition order, independent of the order cells
    actually finished (or were resumed) in."""

    job_id: str
    cells: Tuple[StudyCellResult, ...]
    num_samples: int
    seed: int

    def for_model(self, model: str, mapping: str,
                  bits: Optional[int] = None) -> Tuple[StudyCellResult, ...]:
        """The cells of one selector, in sigma order."""
        name = canonical_name(model, bits, mapping)
        return tuple(cell for cell in self.cells if cell.name == name)


#: The states a study job can be in ("cancelled" via DELETE /v1/studies/{id}).
STUDY_STATES = ("running", "done", "failed", "cancelled")


@dataclass(frozen=True, eq=False)
class StudyStatus:
    """Progress snapshot of one study job (``GET /v1/studies/{id}``).

    ``retries`` counts transient-failure re-executions (worker deaths,
    timeouts) — informational only; it never appears inside
    :class:`StudyResult`, which stays bit-identical whether or not the run
    was interrupted.  ``result`` is populated once ``state == "done"``;
    ``error_code``/``error_message`` once ``state == "failed"``.  A job
    cancelled via ``DELETE /v1/studies/{id}`` reports the terminal
    ``"cancelled"`` state with its partial ``cells_done`` count and no
    result.
    """

    job_id: str
    state: str
    cells_total: int
    cells_done: int
    retries: int = 0
    error_code: Optional[str] = None
    error_message: Optional[str] = None
    result: Optional[StudyResult] = None

    def __post_init__(self) -> None:
        if self.state not in STUDY_STATES:
            raise InvalidRequest(
                f"state must be one of {STUDY_STATES}, not {self.state!r}"
            )

    @property
    def done(self) -> bool:
        return self.state == "done"

    @property
    def failed(self) -> bool:
        return self.state == "failed"

    @property
    def cancelled(self) -> bool:
        return self.state == "cancelled"

    @property
    def terminal(self) -> bool:
        """True once the job can no longer make progress."""
        return self.state != "running"


def study_spec(
    images: Any,
    models: Sequence[Any],
    *,
    sigmas: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25),
    num_samples: int = 25,
    seed: int = 0,
    labels: Optional[Any] = None,
    request_id: Optional[str] = None,
) -> StudySpec:
    """Convenience constructor: accepts ``(model, mapping)`` /
    ``(model, mapping, bits)`` tuples or dicts alongside
    :class:`StudyModel` instances."""
    selectors: List[StudyModel] = []
    for item in models:
        if isinstance(item, StudyModel):
            selectors.append(item)
        elif isinstance(item, Mapping):
            selectors.append(StudyModel(
                model=item.get("model"),  # type: ignore[arg-type]
                mapping=item.get("mapping"),  # type: ignore[arg-type]
                bits=item.get("bits"),
            ))
        elif isinstance(item, Sequence) and not isinstance(item, str) \
                and len(item) in (2, 3):
            bits = item[2] if len(item) == 3 else None
            selectors.append(StudyModel(model=item[0], mapping=item[1],
                                        bits=bits))
        else:
            raise InvalidRequest(
                f"cannot interpret model selector {item!r}; pass a "
                f"StudyModel, a (model, mapping[, bits]) tuple, or a dict"
            )
    return StudySpec(
        images=np.asarray(images),
        models=tuple(selectors),
        sigmas=tuple(sigmas),
        num_samples=num_samples,
        seed=seed,
        labels=None if labels is None else np.asarray(labels),
        request_id=request_id,
    )


# Explicit names help `from repro.api.types import *` stay intentional and
# give the lazily re-exporting package __init__ one list to mirror.
__all__ = [
    "EnsembleRequest",
    "EnsembleResult",
    "HealthStatus",
    "ModelInfo",
    "PredictRequest",
    "PredictResult",
    "STUDY_STATES",
    "StudyCellResult",
    "StudyModel",
    "StudyResult",
    "StudySpec",
    "StudyStatus",
    "bits_token",
    "canonical_name",
    "parse_bits_token",
    "study_spec",
]
