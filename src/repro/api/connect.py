"""``connect(target)``: one entry point, three interchangeable backends.

The target string picks the transport; everything after it is backend
configuration.  Query parameters and keyword options merge (keyword wins),
so the same target string can be stored in config and tuned at the call
site:

``local:plans/``  or  ``local:plans/?capacity=8&max_batch=32``
    Build a :class:`~repro.serve.registry.PlanRegistry` over the directory
    plus an in-process :class:`~repro.serve.service.InferenceService`;
    returns a :class:`~repro.api.client.LocalClient` that owns both.
    ``precision=int8`` (or ``int16``/``float32``) serves every plan through
    :meth:`~repro.runtime.plan.InferencePlan.with_precision` — grid-exact
    weight ops run on the integer kernels.  ``max_batch=auto`` turns on the
    adaptive micro-batch cap; ``jobs_dir=PATH`` makes study jobs
    (``client.submit_study``) checkpoint and resume there.
``http://host:port``  (or ``https://``)
    Return an :class:`~repro.api.http_client.HttpClient` for a running
    server — the threaded :class:`~repro.serve.http.PlanServer` or the
    event-loop :class:`~repro.serve.aio.AsyncPlanServer`, which speak
    one protocol (options: ``token``, ``timeout``, ``retries``,
    ``retry_backoff``, ``encoding``, ``pool_size`` / ``keepalive_timeout``
    for the keep-alive connection pool; for ``https://``: ``cafile`` to
    pin a CA bundle, ``insecure=true`` to skip verification in test
    rigs).  ``async=true`` (or :func:`connect_async`) returns the
    ``await``-able :class:`~repro.api.aio.AsyncClient` instead — same
    options, every method a coroutine.
``cluster:plans/?workers=4&replicas=2``
    Spawn a replicated :class:`~repro.serve.cluster.PlanCluster` over the
    directory; returns a :class:`~repro.api.client.ClusterClient` that
    owns it.  ``replicas`` is the consistent-hash ring's replication
    factor R (default 2, capped by ``workers``; ``replicas=1`` restores
    single-owner sharding) and ``vnodes`` its virtual nodes per worker.
    Self-healing and transport knobs ride along:
    ``auto_restart=true`` (supervised respawn of dead workers, with
    ``max_restarts`` / ``restart_backoff`` / ``stability_window``
    shaping the crash-loop circuit breaker), ``shm_threshold=BYTES``
    (shared-memory array transport; ``off`` disables), and
    ``worker_died_retries`` / ``worker_died_backoff`` for the client's
    transparent retry of requests a dying worker stranded.
    ``log_dir=PATH`` writes one logfmt file per worker
    (``worker-N.log``) carrying every request's trace id.
    ``precision=int8`` lowers plans inside every worker, exactly like the
    ``local:`` knob.

Example — the same script against any backend::

    with repro.api.connect(target) as client:
        result = client.predict(PredictRequest(images, "lenet", "acm", bits=4))
"""

from __future__ import annotations

import urllib.parse
from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping, Tuple

if TYPE_CHECKING:
    from repro.api.aio import AsyncClient

from repro.api.client import Client, ClusterClient, LocalClient
from repro.api.http_client import HttpClient
from repro.serve.cluster import PlanCluster
from repro.serve.registry import PlanRegistry
from repro.serve.service import InferenceService

def _parse_max_batch(text: str) -> Any:
    """``max_batch`` query value: an int cap, or ``auto`` for the adaptive
    probe-don't-tune cap (:class:`~repro.serve.scheduler.AdaptiveMaxBatch`)."""
    if text.strip().lower() == "auto":
        return "auto"
    return int(text)


def _parse_bool(text: str) -> bool:
    """Parse a query-string boolean (``auto_restart=true`` and friends)."""
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"expected a boolean, got {text!r}")


def _parse_shm_threshold(text: str) -> Any:
    """``shm_threshold`` query value: bytes, or a negative value / ``off``
    to disable the shared-memory transport."""
    if text.strip().lower() in ("off", "none"):
        return None
    value = int(text)
    return None if value < 0 else value


#: Query parameters each directory-backed scheme understands, with the
#: parser applied to the (string) query value.
_LOCAL_PARAMS: Dict[str, Callable[[str], Any]] = {
    "capacity": int,
    "max_batch": _parse_max_batch,
    "max_wait_ms": float,
    "max_queue_depth": int,
    "max_concurrent_ensembles": int,
    "ensemble_cache_size": int,
    "precision": str,
    "timeout": float,
    "jobs_dir": str,
}
_CLUSTER_PARAMS: Dict[str, Callable[[str], Any]] = {
    "workers": int,
    "replicas": int,
    "vnodes": int,
    "capacity": int,
    "max_batch": _parse_max_batch,
    "max_wait_ms": float,
    "max_queue_depth": int,
    "max_concurrent_ensembles": int,
    "handler_threads": int,
    "start_method": str,
    "precision": str,
    "timeout": float,
    "ensemble_timeout": float,
    "shm_threshold": _parse_shm_threshold,
    "auto_restart": _parse_bool,
    "max_restarts": int,
    "restart_backoff": float,
    "max_restart_backoff": float,
    "stability_window": float,
    "worker_died_retries": int,
    "worker_died_backoff": float,
    "worker_died_backoff_cap": float,
    "log_dir": str,
    "jobs_dir": str,
}
_HTTP_PARAMS: Dict[str, Callable[[str], Any]] = {
    "token": str,
    "timeout": float,
    "retries": int,
    "retry_backoff": float,
    "encoding": str,
    "cafile": str,
    "insecure": _parse_bool,
    "pool_size": int,
    "keepalive_timeout": float,
    "async": _parse_bool,
}


def _merge_params(
    scheme: str, query: str, params: Mapping[str, Callable[[str], Any]],
    options: Mapping[str, Any],
) -> Dict[str, Any]:
    """Parse a query string against ``params`` and fold ``options`` over it.

    Unknown keys — in the query *or* the keyword options — raise
    ``ValueError`` so a typo'd target string fails loudly instead of
    silently serving defaults.
    """
    merged: Dict[str, Any] = {}
    for key, values in urllib.parse.parse_qs(query, keep_blank_values=True).items():
        parser = params.get(key)
        if parser is None:
            raise ValueError(
                f"unknown {scheme} parameter {key!r}; expected one of "
                f"{sorted(params)}"
            )
        merged[key] = parser(values[-1])
    # Explicit keyword options win over the query string.
    for key, value in options.items():
        if key not in params:
            raise ValueError(
                f"unknown {scheme} option {key!r}; expected one of "
                f"{sorted(params)}"
            )
        merged[key] = value
    return merged


def _parse_directory_target(
    target: str, scheme: str, params: Mapping[str, Callable[[str], Any]],
    options: Dict[str, Any],
) -> Tuple[str, Dict[str, Any]]:
    """Split ``scheme:path?query`` and fold the query into ``options``."""
    rest = target[len(scheme) + 1:]
    path, _, query = rest.partition("?")
    if not path:
        raise ValueError(
            f"{scheme}: target needs a plan directory, e.g. "
            f"'{scheme}:plans/' (got {target!r})"
        )
    return path, _merge_params(f"{scheme}:", query, params, options)


def connect(target: str, **options: Any) -> Client:
    """Open a typed client for ``target`` (see module docstring for schemes).

    Directory-backed schemes build and *own* their backend — closing the
    client (or leaving its ``with`` block) drains and closes it.  Unknown
    schemes and parameters raise ``ValueError`` immediately; everything
    after construction speaks typed :class:`~repro.api.errors.ApiError`.
    """
    if target.startswith(("http://", "https://")):
        base_url, _, query = target.partition("?")
        params = _merge_params("http(s)://", query, _HTTP_PARAMS, options)
        if params.pop("async", False):
            # The awaitable client shares the typed dataclasses but not
            # the blocking Client protocol; callers asking for it know.
            from repro.api.aio import AsyncClient

            return AsyncClient(base_url, **params)  # type: ignore[return-value]
        return HttpClient(base_url, **params)

    scheme = target.partition(":")[0]
    if scheme == "local":
        path, params = _parse_directory_target(
            target, "local", _LOCAL_PARAMS, options
        )
        timeout = params.pop("timeout", 60.0)
        capacity = params.pop("capacity", 4)
        jobs_dir = params.pop("jobs_dir", None)
        registry = PlanRegistry(path, capacity=capacity)
        service = InferenceService(registry, **params)
        return LocalClient(service, own_backend=True, timeout=timeout,
                           jobs_dir=jobs_dir)

    if scheme == "cluster":
        path, params = _parse_directory_target(
            target, "cluster", _CLUSTER_PARAMS, options
        )
        timeout = params.pop("timeout", 60.0)
        ensemble_timeout = params.pop("ensemble_timeout", 120.0)
        jobs_dir = params.pop("jobs_dir", None)
        client_options = {
            key: params.pop(key)
            for key in ("worker_died_retries", "worker_died_backoff",
                        "worker_died_backoff_cap")
            if key in params
        }
        params["num_workers"] = params.pop("workers", 2)
        cluster = PlanCluster(path, **params)
        return ClusterClient(cluster, own_backend=True, timeout=timeout,
                             ensemble_timeout=ensemble_timeout,
                             jobs_dir=jobs_dir, **client_options)

    raise ValueError(
        f"unrecognised connect target {target!r}; expected 'local:DIR', "
        f"'cluster:DIR?workers=N', or 'http://HOST:PORT'"
    )


def connect_async(target: str, **options: Any) -> "AsyncClient":
    """Open an ``await``-able :class:`~repro.api.aio.AsyncClient`.

    Only ``http://`` / ``https://`` targets have an async transport (the
    directory-backed schemes are in-process and blocking by nature);
    anything else raises ``ValueError``.  Options are the HTTP option set
    of :func:`connect` (``token``, ``timeout``, ``retries``,
    ``retry_backoff``, ``encoding``, ``cafile``, ``insecure``,
    ``pool_size``, ``keepalive_timeout``)::

        async with connect_async("http://127.0.0.1:8000") as api:
            result = await api.predict(request)
    """
    from repro.api.aio import AsyncClient

    if not target.startswith(("http://", "https://")):
        raise ValueError(
            f"connect_async needs an http:// or https:// target, got "
            f"{target!r}; the directory-backed schemes are sync-only"
        )
    base_url, _, query = target.partition("?")
    params = _merge_params("http(s)://", query, _HTTP_PARAMS, options)
    params.pop("async", None)
    return AsyncClient(base_url, **params)
