"""The shared typed-entry-point fold every backend implementation uses.

``InferenceService`` and ``PlanCluster`` both expose the typed backend
contract (``predict_request`` / ``ensemble_request``); this module holds
the one implementation of the surrounding fold — normalise the request
images, call the backend's legacy kwargs method, pass typed errors
through, fold everything else via
:func:`~repro.api.errors.map_exception`, assemble the shared result
dataclass — so the two backends cannot drift apart.

Import-pure (NumPy + the pure ``repro.api`` leaves only), so the serve
modules can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

import numpy as np

from repro.api.errors import ApiError, map_exception
from repro.api.types import (
    EnsembleRequest,
    EnsembleResult,
    PredictRequest,
    PredictResult,
)
from repro.obs.tracing import ensure_request_id


def typed_predict(
    predict: Callable[..., Any],
    request: PredictRequest,
    **call_kwargs: Any,
) -> PredictResult:
    """Run a legacy ``predict(images, *, model, bits, mapping, ...)`` callable
    for one typed request, with the shared exception fold.

    The request's trace id (assigned here when the caller supplied none)
    is forwarded to the backend callable and stamped onto the result, so
    every hop below this fold logs under the same id.
    """
    request_id = ensure_request_id(request.request_id)
    try:
        logits = predict(
            np.asarray(request.images), model=request.model,
            bits=request.bits, mapping=request.mapping,
            request_id=request_id, **call_kwargs,
        )
    except ApiError:
        raise
    except Exception as error:
        raise map_exception(error) from error
    return PredictResult(
        model=request.model, bits=request.bits, mapping=request.mapping,
        logits=np.asarray(logits), request_id=request_id,
    )


def typed_ensemble(
    ensemble: Callable[..., Any],
    request: EnsembleRequest,
    **call_kwargs: Any,
) -> EnsembleResult:
    """Run a legacy ``predict_under_variation(...)`` callable for one typed
    request, with the shared exception fold.

    The legacy callables already return the shared :class:`EnsembleResult`
    (it is the one ensemble-response type in the system), so no assembly
    is needed on the way out — beyond stamping the trace id when the
    backend predates tracing.
    """
    request_id = ensure_request_id(request.request_id)
    try:
        result = ensemble(
            np.asarray(request.images), model=request.model,
            bits=request.bits, mapping=request.mapping,
            sigma_fraction=request.sigma_fraction,
            num_samples=request.num_samples, seed=request.seed,
            request_id=request_id, **call_kwargs,
        )
    except ApiError:
        raise
    except Exception as error:
        raise map_exception(error) from error
    if not isinstance(result, EnsembleResult):  # pragma: no cover - defensive
        raise map_exception(TypeError(
            f"backend returned {type(result).__name__}, not EnsembleResult"
        ))
    if result.request_id != request_id:
        result = replace(result, request_id=request_id)
    return result
