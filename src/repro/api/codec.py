"""JSON-body codecs between the typed API dataclasses and the wire protocol.

One module owns the translation in both directions, so the HTTP server
(:class:`~repro.serve.http.PlanServer`) and the HTTP client
(:class:`~repro.api.http_client.HttpClient`) can never disagree about the
protocol: the server decodes request bodies with the same functions whose
encoders the client used to produce them, and vice versa for responses.

Arrays ride as :mod:`repro.runtime.wire` payloads (base64-packed bytes or
nested lists, selected per request by the ``encoding`` field); float64
packing round-trips exact bits, which is what makes HTTP responses
certifiably bit-equivalent to in-process results.  Any malformed body
raises the typed :class:`~repro.api.errors.InvalidRequest` so the error a
client sees is identical whether the decode failed locally or server-side.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.api.errors import (
    ApiBackpressure,
    ApiError,
    InvalidRequest,
    error_for,
    map_exception,
)
from repro.api.types import (
    EnsembleRequest,
    EnsembleResult,
    PredictRequest,
    PredictResult,
    StudyCellResult,
    StudyModel,
    StudyResult,
    StudySpec,
    StudyStatus,
    parse_bits_token,
)
from repro.runtime.wire import decode_array, encode_array

#: Response array encodings a request may select.
ENCODINGS = ("b64", "list")


def response_encoding(body: Mapping[str, Any]) -> str:
    """The validated ``encoding`` field of a request body (default b64)."""
    encoding = body.get("encoding", "b64")
    if encoding not in ENCODINGS:
        raise InvalidRequest(
            f"encoding must be 'b64' or 'list', not {encoding!r}"
        )
    return str(encoding)


def _require(body: Mapping[str, Any], field: str) -> Any:
    if field not in body:
        raise InvalidRequest(f"missing required field {field!r}")
    return body[field]


def _decode_images(payload: Any) -> np.ndarray:
    try:
        return np.asarray(decode_array(payload))
    except ApiError:
        raise
    except Exception as error:  # WireFormatError and friends -> typed
        raise map_exception(error) from error


def _decode_bits(value: Any) -> Optional[int]:
    """The ``bits`` request field: int, null, or a canonical token."""
    if value is None or (isinstance(value, int) and not isinstance(value, bool)):
        return value
    if isinstance(value, str):
        return parse_bits_token(value)
    raise InvalidRequest(f"bits must be an int, null, or token, not {value!r}")


def _key_fields(body: Mapping[str, Any]) -> Tuple[str, Optional[int], str]:
    model = _require(body, "model")
    mapping = _require(body, "mapping")
    if not isinstance(model, str):
        raise InvalidRequest("model must be a string")
    if not isinstance(mapping, str):
        raise InvalidRequest("mapping must be a string")
    return model, _decode_bits(body.get("bits")), mapping


# ---------------------------------------------------------------------- #
# Requests
# ---------------------------------------------------------------------- #
def encode_predict_request(
    request: PredictRequest, encoding: str = "b64"
) -> Dict[str, Any]:
    """Render a :class:`PredictRequest` as a ``POST /v1/predict`` body."""
    return {
        "model": request.model,
        "bits": request.bits,
        "mapping": request.mapping,
        "images": encode_array(np.asarray(request.images)),
        "encoding": encoding,
    }


def decode_predict_request(
    body: Mapping[str, Any],
) -> Tuple[PredictRequest, str]:
    """Parse a ``POST /v1/predict`` body; returns (request, response encoding)."""
    model, bits, mapping = _key_fields(body)
    request = PredictRequest(
        images=_decode_images(_require(body, "images")),
        model=model,
        bits=bits,
        mapping=mapping,
    )
    return request, response_encoding(body)


def encode_ensemble_request(
    request: EnsembleRequest, encoding: str = "b64"
) -> Dict[str, Any]:
    """Render an :class:`EnsembleRequest` as a ``POST /v1/predict_under_variation`` body."""
    return {
        "model": request.model,
        "bits": request.bits,
        "mapping": request.mapping,
        "images": encode_array(np.asarray(request.images)),
        "sigma_fraction": request.sigma_fraction,
        "num_samples": request.num_samples,
        "seed": request.seed,
        "encoding": encoding,
    }


def decode_ensemble_request(
    body: Mapping[str, Any],
) -> Tuple[EnsembleRequest, str]:
    """Parse a ``POST /v1/predict_under_variation`` body.

    Field presence and JSON types are checked here; the numeric-range
    invariants (non-negative sigma, positive sample count) live in
    :class:`EnsembleRequest` itself, so they hold for every transport.
    """
    model, bits, mapping = _key_fields(body)
    sigma = body.get("sigma_fraction", 0.1)
    if isinstance(sigma, (int, float)) and not isinstance(sigma, bool):
        sigma = float(sigma)
    # Non-numeric sigma (and any bad num_samples/seed) flows into the
    # request constructor unchanged, whose validation raises the same
    # InvalidRequest a local caller would see.
    request = EnsembleRequest(
        images=_decode_images(_require(body, "images")),
        model=model,
        bits=bits,
        mapping=mapping,
        sigma_fraction=sigma,
        num_samples=body.get("num_samples", 25),
        seed=body.get("seed", 0),
    )
    return request, response_encoding(body)


# ---------------------------------------------------------------------- #
# Results
# ---------------------------------------------------------------------- #
def encode_predict_result(
    result: PredictResult, encoding: str = "b64"
) -> Dict[str, Any]:
    """Render a :class:`PredictResult` as the ``/v1/predict`` response body."""
    body = {
        "model": result.model,
        "bits": result.bits,
        "mapping": result.mapping,
        "logits": encode_array(np.asarray(result.logits), encoding=encoding),
    }
    if result.request_id is not None:
        body["request_id"] = result.request_id
    return body


def _decode_request_id(value: Any) -> Optional[str]:
    return str(value) if value is not None else None


def decode_predict_result(body: Mapping[str, Any]) -> PredictResult:
    """Parse a ``/v1/predict`` response body back into a :class:`PredictResult`."""
    return PredictResult(
        model=str(_require(body, "model")),
        bits=_decode_bits(body.get("bits")),
        mapping=str(_require(body, "mapping")),
        logits=_decode_images(_require(body, "logits")),
        request_id=_decode_request_id(body.get("request_id")),
    )


def encode_ensemble_result(
    result: EnsembleResult, encoding: str = "b64"
) -> Dict[str, Any]:
    """Render an :class:`EnsembleResult` as the ensemble response body.

    The integer aggregates are packed as int64 and the confidence as
    float64, matching the in-process dtypes exactly.
    """
    body: Dict[str, Any] = {
        "model": result.model,
        "bits": result.bits,
        "mapping": result.mapping,
        "sigma_fraction": result.sigma_fraction,
        "num_samples": result.num_samples,
        "seed": result.seed,
        "mean_logits": encode_array(
            np.asarray(result.mean_logits), encoding=encoding
        ),
        "predictions": encode_array(
            np.asarray(result.predictions, dtype=np.int64), encoding=encoding
        ),
        "confidence": encode_array(
            np.asarray(result.confidence, dtype=np.float64), encoding=encoding
        ),
        "vote_counts": encode_array(
            np.asarray(result.vote_counts, dtype=np.int64), encoding=encoding
        ),
    }
    if result.request_id is not None:
        body["request_id"] = result.request_id
    return body


def decode_ensemble_result(body: Mapping[str, Any]) -> EnsembleResult:
    """Parse the ensemble response body back into an :class:`EnsembleResult`."""
    sigma = _require(body, "sigma_fraction")
    num_samples = _require(body, "num_samples")
    seed = _require(body, "seed")
    if not isinstance(sigma, (int, float)) or isinstance(sigma, bool):
        raise InvalidRequest(f"sigma_fraction must be a number, not {sigma!r}")
    if not isinstance(num_samples, int) or isinstance(num_samples, bool):
        raise InvalidRequest(f"num_samples must be an int, not {num_samples!r}")
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise InvalidRequest(f"seed must be an int, not {seed!r}")
    return EnsembleResult(
        model=str(_require(body, "model")),
        bits=_decode_bits(body.get("bits")),
        mapping=str(_require(body, "mapping")),
        mean_logits=_decode_images(_require(body, "mean_logits")),
        predictions=_decode_images(_require(body, "predictions")),
        confidence=_decode_images(_require(body, "confidence")),
        vote_counts=_decode_images(_require(body, "vote_counts")),
        sigma_fraction=float(sigma),
        num_samples=num_samples,
        seed=seed,
        request_id=_decode_request_id(body.get("request_id")),
    )


# ---------------------------------------------------------------------- #
# Studies
# ---------------------------------------------------------------------- #
def _int_field(value: Any, field: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise InvalidRequest(f"{field} must be an int, not {value!r}")
    return value


def _number_field(value: Any, field: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise InvalidRequest(f"{field} must be a number, not {value!r}")
    return float(value)


def encode_study_spec(spec: StudySpec, encoding: str = "b64") -> Dict[str, Any]:
    """Render a :class:`StudySpec` as a ``POST /v1/studies`` body."""
    body: Dict[str, Any] = {
        "models": [
            {"model": m.model, "bits": m.bits, "mapping": m.mapping}
            for m in spec.models
        ],
        "sigmas": list(spec.sigmas),
        "num_samples": spec.num_samples,
        "seed": spec.seed,
        "images": encode_array(np.asarray(spec.images)),
        "encoding": encoding,
    }
    if spec.labels is not None:
        body["labels"] = encode_array(np.asarray(spec.labels))
    if spec.request_id is not None:
        body["request_id"] = spec.request_id
    return body


def decode_study_spec(body: Mapping[str, Any]) -> Tuple[StudySpec, str]:
    """Parse a ``POST /v1/studies`` body; returns (spec, response encoding).

    Shape and JSON types are checked here; the value invariants (positive
    counts, finite sigmas, label alignment) live in :class:`StudySpec`
    itself — every malformed body, however it is malformed, raises the
    typed :class:`InvalidRequest` and nothing else.
    """
    if not isinstance(body, Mapping):
        raise InvalidRequest(f"study spec must be an object, not {type(body).__name__}")
    raw_models = _require(body, "models")
    if not isinstance(raw_models, (list, tuple)):
        raise InvalidRequest(
            f"models must be a list of selectors, not {raw_models!r}"
        )
    selectors: List[StudyModel] = []
    for item in raw_models:
        if not isinstance(item, Mapping):
            raise InvalidRequest(
                f"model selectors must be objects, not {item!r}"
            )
        model, bits, mapping = _key_fields(item)
        selectors.append(StudyModel(model=model, mapping=mapping, bits=bits))
    labels = body.get("labels")
    spec = StudySpec(
        images=_decode_images(_require(body, "images")),
        models=tuple(selectors),
        sigmas=body.get("sigmas", (0.0, 0.05, 0.10, 0.15, 0.20, 0.25)),
        num_samples=body.get("num_samples", 25),
        seed=body.get("seed", 0),
        labels=None if labels is None else _decode_images(labels),
        request_id=_decode_request_id(body.get("request_id")),
    )
    return spec, response_encoding(body)


def encode_study_cell(
    cell: StudyCellResult, encoding: str = "b64"
) -> Dict[str, Any]:
    """Render one completed study cell (checkpoint / wire form)."""
    return {
        "model": cell.model,
        "bits": cell.bits,
        "mapping": cell.mapping,
        "sigma_fraction": cell.sigma_fraction,
        "mean_logits": encode_array(
            np.asarray(cell.mean_logits), encoding=encoding
        ),
        "predictions": encode_array(
            np.asarray(cell.predictions, dtype=np.int64), encoding=encoding
        ),
        "confidence": encode_array(
            np.asarray(cell.confidence, dtype=np.float64), encoding=encoding
        ),
        "accuracy": cell.accuracy,
    }


def decode_study_cell(body: Mapping[str, Any]) -> StudyCellResult:
    """Inverse of :func:`encode_study_cell` (bit-exact for b64 arrays)."""
    if not isinstance(body, Mapping):
        raise InvalidRequest(f"study cell must be an object, not {type(body).__name__}")
    model, bits, mapping = _key_fields(body)
    accuracy = body.get("accuracy")
    return StudyCellResult(
        model=model,
        bits=bits,
        mapping=mapping,
        sigma_fraction=_number_field(
            _require(body, "sigma_fraction"), "sigma_fraction"
        ),
        mean_logits=_decode_images(_require(body, "mean_logits")),
        predictions=_decode_images(_require(body, "predictions")),
        confidence=_decode_images(_require(body, "confidence")),
        accuracy=None if accuracy is None
        else _number_field(accuracy, "accuracy"),
    )


def encode_study_result(
    result: StudyResult, encoding: str = "b64"
) -> Dict[str, Any]:
    """Render a completed :class:`StudyResult`."""
    return {
        "job_id": result.job_id,
        "num_samples": result.num_samples,
        "seed": result.seed,
        "cells": [encode_study_cell(cell, encoding) for cell in result.cells],
    }


def decode_study_result(body: Mapping[str, Any]) -> StudyResult:
    """Inverse of :func:`encode_study_result`."""
    if not isinstance(body, Mapping):
        raise InvalidRequest(
            f"study result must be an object, not {type(body).__name__}"
        )
    cells = _require(body, "cells")
    if not isinstance(cells, (list, tuple)):
        raise InvalidRequest(f"cells must be a list, not {cells!r}")
    job_id = _require(body, "job_id")
    if not isinstance(job_id, str) or not job_id:
        raise InvalidRequest(f"job_id must be a non-empty string, not {job_id!r}")
    return StudyResult(
        job_id=job_id,
        cells=tuple(decode_study_cell(cell) for cell in cells),
        num_samples=_int_field(_require(body, "num_samples"), "num_samples"),
        seed=_int_field(_require(body, "seed"), "seed"),
    )


def encode_study_status(
    status: StudyStatus, encoding: str = "b64"
) -> Dict[str, Any]:
    """Render a :class:`StudyStatus` as the ``GET /v1/studies/{id}`` body."""
    body: Dict[str, Any] = {
        "job_id": status.job_id,
        "state": status.state,
        "cells_total": status.cells_total,
        "cells_done": status.cells_done,
        "retries": status.retries,
    }
    if status.error_code is not None:
        body["error_code"] = status.error_code
        body["error_message"] = status.error_message
    if status.result is not None:
        body["result"] = encode_study_result(status.result, encoding)
    return body


def decode_study_status(body: Mapping[str, Any]) -> StudyStatus:
    """Inverse of :func:`encode_study_status`."""
    if not isinstance(body, Mapping):
        raise InvalidRequest(
            f"study status must be an object, not {type(body).__name__}"
        )
    job_id = _require(body, "job_id")
    if not isinstance(job_id, str) or not job_id:
        raise InvalidRequest(f"job_id must be a non-empty string, not {job_id!r}")
    state = _require(body, "state")
    if not isinstance(state, str):
        raise InvalidRequest(f"state must be a string, not {state!r}")
    error_code = body.get("error_code")
    error_message = body.get("error_message")
    if error_code is not None and not isinstance(error_code, str):
        raise InvalidRequest(f"error_code must be a string, not {error_code!r}")
    if error_message is not None and not isinstance(error_message, str):
        raise InvalidRequest(
            f"error_message must be a string, not {error_message!r}"
        )
    result = body.get("result")
    return StudyStatus(
        job_id=job_id,
        state=state,
        cells_total=_int_field(_require(body, "cells_total"), "cells_total"),
        cells_done=_int_field(_require(body, "cells_done"), "cells_done"),
        retries=_int_field(body.get("retries", 0), "retries"),
        error_code=error_code,
        error_message=error_message,
        result=None if result is None else decode_study_result(result),
    )


# ---------------------------------------------------------------------- #
# Errors
# ---------------------------------------------------------------------- #
def encode_error(
    error: BaseException, status: Optional[int] = None, code: Optional[str] = None
) -> Dict[str, Any]:
    """Render any exception as the protocol's JSON error body.

    Non-typed exceptions are folded through
    :func:`~repro.api.errors.map_exception` first so the embedded ``code``
    is always one a client can resolve; ``status`` / ``code`` override the
    mapped values for protocol-level failures (404 path, 405 method, ...)
    that are not typed API errors.
    """
    api = map_exception(error)
    return {"error": {
        "status": api.status if status is None else status,
        "code": api.code if code is None else code,
        "type": type(error).__name__,
        "message": api.message,
    }}


def decode_error(
    body: Any, status: int, retry_after: Optional[float] = None
) -> ApiError:
    """Resurrect the typed error from an error response body.

    ``retry_after`` (parsed from the HTTP header) is attached to
    :class:`~repro.api.errors.ApiBackpressure` instances.
    """
    code = ""
    message = f"HTTP {status}"
    if isinstance(body, Mapping):
        detail = body.get("error")
        if isinstance(detail, Mapping):
            code = str(detail.get("code", ""))
            message = str(detail.get("message", message))
    error = error_for(code, status, message)
    if retry_after is not None and isinstance(error, ApiBackpressure):
        error.retry_after = float(retry_after)
    return error
