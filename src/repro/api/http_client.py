"""``HttpClient``: the :class:`~repro.api.client.Client` protocol over HTTP.

Speaks the JSON wire protocol of :class:`~repro.serve.http.PlanServer`
(``POST /v1/predict``, ``POST /v1/predict_under_variation``, ``GET
/v1/models``, ``GET /v1/stats``, ``GET /healthz``) through the shared
codecs in :mod:`repro.api.codec`, so requests and responses are the exact
dataclasses every other backend consumes — base64-packed float64 arrays
make the results bit-equivalent to in-process execution.

Connections are pooled: up to ``pool_size`` idle keep-alive connections
are retained (LIFO, so the warmest socket is reused first) and handed back
after each successful, fully-read exchange.  The pool never retains a
connection in an ambiguous state — any transport failure, timeout, or
half-read response closes the socket instead of releasing it, so a
poisoned connection (stray body bytes that would be misparsed as the next
response) cannot leak into a later request.  A pooled connection the
server quietly closed while idle costs one transparent re-issue on a
fresh socket, not a caller-visible error.

Failure handling:

* HTTP error responses are resolved back to the typed
  :class:`~repro.api.errors.ApiError` hierarchy via the machine-readable
  ``code`` the server embeds (429 additionally carries the parsed
  ``Retry-After`` as :attr:`ApiBackpressure.retry_after`).
* Transport-level failures (connection refused/reset, a dropped
  keep-alive socket) are retried up to ``retries`` times with a small
  backoff.  Every request in this protocol is idempotent — predictions
  are deterministic functions of the request — so retrying a POST whose
  response never arrived is safe.  Exhausted retries raise the typed
  :class:`~repro.api.errors.ApiConnectionError`.  Socket *timeouts* are
  deliberately not retried: the server is still computing, so a re-send
  only multiplies its load — they raise
  :class:`~repro.api.errors.ApiTimeout`, matching every other backend.
* An optional bearer ``token`` is sent as ``Authorization: Bearer ...``;
  a 401 raises :class:`~repro.api.errors.ApiAuthError`.

:class:`~repro.api.aio.AsyncClient` is the ``asyncio`` counterpart —
same typed surface, ``await``-able methods, the same pooling semantics —
built on the shared decode helpers below so the two transports cannot
drift apart.
"""

from __future__ import annotations

import http.client
import json
import ssl
import threading
import time
import urllib.parse
from dataclasses import replace
from types import TracebackType
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type

from repro.api.codec import (
    decode_ensemble_result,
    decode_error,
    decode_predict_result,
    decode_study_status,
    encode_ensemble_request,
    encode_predict_request,
    encode_study_spec,
)
from repro.api.errors import (
    ApiConnectionError,
    ApiError,
    ApiTimeout,
    InvalidRequest,
)
from repro.api.types import (
    EnsembleRequest,
    EnsembleResult,
    HealthStatus,
    ModelInfo,
    PredictRequest,
    PredictResult,
    StudySpec,
    StudyStatus,
)
from repro.obs.tracing import REQUEST_ID_HEADER, ensure_request_id

#: Transport-level failures worth a retry: the request may never have
#: reached the server, or the (idempotent) response was lost in flight.
_RETRYABLE = (ConnectionError, http.client.HTTPException, OSError)


# ---------------------------------------------------------------------- #
# Shared wire helpers (sync HttpClient and async AsyncClient)
# ---------------------------------------------------------------------- #
def parse_retry_after(headers: Mapping[str, str]) -> Optional[float]:
    """The parsed ``Retry-After`` of a (lower-cased) response header map."""
    header = headers.get("retry-after")
    if header is None:
        return None
    try:
        return float(header)
    except ValueError:
        return None


def response_to_error(
    parsed: Any, status: int, headers: Mapping[str, str]
) -> ApiError:
    """Resolve a non-2xx response into its typed :class:`ApiError`."""
    return decode_error(parsed, status,
                        retry_after=parse_retry_after(headers))


def parse_json_body(raw: bytes) -> Any:
    """Best-effort JSON parse of a response body (undecodable → ``{}``)."""
    if not raw:
        return {}
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {}


def predict_result_from_body(body: Any, request_id: str) -> PredictResult:
    if not isinstance(body, Mapping):
        raise InvalidRequest(f"malformed predict response: {body!r}")
    result = decode_predict_result(body)
    if result.request_id is None:  # pre-tracing server
        result = replace(result, request_id=request_id)
    return result


def ensemble_result_from_body(body: Any, request_id: str) -> EnsembleResult:
    if not isinstance(body, Mapping):
        raise InvalidRequest(f"malformed ensemble response: {body!r}")
    result = decode_ensemble_result(body)
    if result.request_id is None:  # pre-tracing server
        result = replace(result, request_id=request_id)
    return result


def study_status_from_body(body: Any) -> StudyStatus:
    if not isinstance(body, Mapping):
        raise InvalidRequest(f"malformed study response: {body!r}")
    return decode_study_status(body)


def require_job_id(job_id: str) -> None:
    if not isinstance(job_id, str) or not job_id:
        raise InvalidRequest("job_id must be a non-empty string")


def _close_quietly(connection: http.client.HTTPConnection) -> None:
    try:
        connection.close()
    except Exception:  # noqa: BLE001 - teardown must never raise
        pass


class _ConnectionPool:
    """Bounded, thread-safe pool of idle keep-alive connections.

    LIFO so the most recently used (warmest, least likely to have been
    reaped by the server's idle timeout) socket is reused first; entries
    idle past ``keepalive_timeout`` are closed on acquire instead of being
    handed out.  Callers must only :meth:`release` a connection whose
    response was *fully read* on a socket the server will keep open —
    anything ambiguous gets closed, never pooled.
    """

    def __init__(self, size: int, keepalive_timeout: float) -> None:
        self._size = size
        self._keepalive = keepalive_timeout
        self._lock = threading.Lock()
        self._idle: List[Tuple[http.client.HTTPConnection, float]] = []
        self._closed = False

    def acquire(self) -> Optional[http.client.HTTPConnection]:
        """An idle pooled connection, or ``None`` (caller dials fresh)."""
        now = time.monotonic()
        stale: List[http.client.HTTPConnection] = []
        taken: Optional[http.client.HTTPConnection] = None
        with self._lock:
            while self._idle:
                connection, stored = self._idle.pop()
                if now - stored <= self._keepalive:
                    taken = connection
                    break
                stale.append(connection)
        for connection in stale:
            _close_quietly(connection)
        return taken

    def release(self, connection: http.client.HTTPConnection) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self._size:
                self._idle.append((connection, time.monotonic()))
                return
        _close_quietly(connection)

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
            self._closed = True
        for connection, _ in idle:
            _close_quietly(connection)

    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)


class HttpClient:
    """Typed client for a served HTTP endpoint (threaded or async edge).

    Parameters
    ----------
    base_url:
        ``http://host:port`` (a trailing path prefix is kept and prepended
        to every route, so a reverse-proxied deployment works too).
    token:
        Optional shared secret; sent as ``Authorization: Bearer <token>``.
    timeout:
        Socket timeout per attempt, seconds.
    retries:
        Additional attempts after a transport-level failure (not after an
        HTTP error response, which is authoritative).
    retry_backoff:
        Sleep before retry ``n`` is ``retry_backoff * 2**(n-1)`` seconds.
    encoding:
        Response array form requested from the server: ``"b64"`` (exact
        bits, compact) or ``"list"`` (human-readable JSON).
    cafile:
        For ``https://`` endpoints: a PEM bundle to verify the server
        certificate against (e.g. a self-signed deployment's own cert).
        Defaults to the system trust store.
    insecure:
        Skip certificate verification entirely (test rigs only).
    pool_size:
        Idle keep-alive connections retained for reuse (``0`` disables
        pooling and restores one-connection-per-request behaviour).
    keepalive_timeout:
        Seconds an idle pooled connection stays eligible for reuse; keep
        it at or below the server's idle timeout so the pool never hands
        out a socket the server is about to close.

    Every request carries an ``X-Request-Id`` (the request dataclass's, or
    client-minted) so client, edge, and worker logs line up; transport
    retries, timeouts, and connection reuse are counted in
    :meth:`client_stats` so a retry storm — or a pool that never hits —
    is visible from the caller's side too.
    """

    def __init__(
        self,
        base_url: str,
        token: Optional[str] = None,
        timeout: Optional[float] = 60.0,
        retries: int = 2,
        retry_backoff: float = 0.05,
        encoding: str = "b64",
        cafile: Optional[str] = None,
        insecure: bool = False,
        pool_size: int = 8,
        keepalive_timeout: float = 25.0,
    ) -> None:
        parts = urllib.parse.urlsplit(base_url)
        if parts.scheme not in ("http", "https"):
            raise ValueError(
                f"base_url must start with http:// or https://, got {base_url!r}"
            )
        host = parts.hostname
        if not host:
            raise ValueError(f"base_url {base_url!r} has no host")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if pool_size < 0:
            raise ValueError("pool_size must be non-negative")
        if keepalive_timeout <= 0:
            raise ValueError("keepalive_timeout must be positive")
        if encoding not in ("b64", "list"):
            raise ValueError(f"encoding must be 'b64' or 'list', not {encoding!r}")
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.encoding = encoding
        self.pool_size = pool_size
        self.keepalive_timeout = keepalive_timeout
        self._scheme = parts.scheme
        self._host: str = host
        self._port = parts.port or (443 if parts.scheme == "https" else 80)
        self._prefix = parts.path.rstrip("/")
        self._ssl_context: Optional[ssl.SSLContext] = None
        if parts.scheme == "https":
            if insecure:
                context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
                context.check_hostname = False
                context.verify_mode = ssl.CERT_NONE
            else:
                context = ssl.create_default_context(cafile=cafile)
            self._ssl_context = context
        self._pool = _ConnectionPool(pool_size, keepalive_timeout)
        # Per-call request id, carried thread-locally so _attempt keeps
        # its (method, path, payload) seam for tests and subclasses.
        self._call_context = threading.local()
        # Client-side transport counters (thread-safe): how this client
        # experienced the wire, independent of what the server recorded.
        self._stats_lock = threading.Lock()
        self._transport_stats = {
            "requests": 0,
            "responses": 0,
            "retries": 0,
            "timeouts": 0,
            "connection_failures": 0,
            "http_errors": 0,
            "connections_reused": 0,
            "connections_opened": 0,
            "stale_retries": 0,
        }

    def _count(self, event: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._transport_stats[event] += amount

    def client_stats(self) -> Dict[str, int]:
        """This client's transport counters (requests, retries, reuse...)."""
        with self._stats_lock:
            return dict(self._transport_stats)

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        self._count("connections_opened")
        if self._scheme == "https":
            return http.client.HTTPSConnection(
                self._host, self._port, timeout=self.timeout,
                context=self._ssl_context,
            )
        return http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout
        )

    def _exchange(
        self,
        connection: http.client.HTTPConnection,
        method: str,
        path: str,
        payload: Optional[bytes],
    ) -> Tuple[int, Dict[str, str], Any, bool]:
        """One request/response on ``connection``.

        Returns ``(status, headers, body, reusable)`` — ``reusable`` is
        True only when the response was fully read off a socket the
        server will keep open, i.e. the connection is provably in a clean
        between-requests state.  Any exception leaves the connection
        ambiguous; the *caller* must close it, never pool it.
        """
        headers = {"Content-Type": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        request_id = getattr(self._call_context, "request_id", None)
        if request_id is not None:
            headers[REQUEST_ID_HEADER] = request_id
        connection.request(
            method, self._prefix + path, body=payload, headers=headers
        )
        response = connection.getresponse()
        # read() consumes exactly the declared Content-Length; a peer that
        # disconnects mid-body raises IncompleteRead (retryable), and the
        # half-read socket is discarded by the caller — never reused.
        raw = response.read()
        status = response.status
        header_map = {key.lower(): value for key, value in response.getheaders()}
        reusable = bool(response.isclosed()) and not response.will_close
        return status, header_map, parse_json_body(raw), reusable

    def _attempt(
        self,
        method: str,
        path: str,
        payload: Optional[bytes],
    ) -> Tuple[int, Dict[str, str], Any]:
        """One request over a pooled or fresh connection.

        Returns ``(status, headers, body)``.  Connection hygiene lives
        here: a clean, fully-read keep-alive exchange releases the socket
        back to the pool; every failure path closes it.  A *reused*
        connection that fails before yielding a response gets one free
        re-issue on a fresh socket — the server merely closed it while it
        sat idle — without consuming a caller-visible retry.  Timeouts are
        excluded from that free pass: the server may be computing, and
        re-sending would double its load.
        """
        connection = self._pool.acquire()
        reused = connection is not None
        if connection is None:
            connection = self._connection()
        else:
            self._count("connections_reused")
        try:
            status, headers, body, reusable = self._exchange(
                connection, method, path, payload
            )
        except TimeoutError:
            _close_quietly(connection)
            raise
        except _RETRYABLE:
            _close_quietly(connection)
            if not reused:
                raise
            # Stale pooled socket: re-issue once on a fresh connection.
            self._count("stale_retries")
            connection = self._connection()
            try:
                status, headers, body, reusable = self._exchange(
                    connection, method, path, payload
                )
            except BaseException:
                _close_quietly(connection)
                raise
        except BaseException:
            _close_quietly(connection)
            raise
        if reusable:
            self._pool.release(connection)
        else:
            _close_quietly(connection)
        return status, headers, body

    def _call(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        request_id: Optional[str] = None,
        ok_statuses: Tuple[int, ...] = (200,),
    ) -> Any:
        """Issue one API call, retrying transport failures; typed errors out."""
        payload = (
            None if body is None
            else json.dumps(body, allow_nan=False).encode("utf-8")
        )
        last_error: Optional[BaseException] = None
        self._call_context.request_id = request_id
        for attempt in range(self.retries + 1):
            if attempt:
                self._count("retries")
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            self._count("requests")
            try:
                status, headers, parsed = self._attempt(method, path, payload)
            except TimeoutError as error:
                # socket.timeout.  The request reached the server and is
                # (still) being computed — re-sending it would multiply the
                # server load without helping, and the typed contract maps
                # timeouts to ApiTimeout everywhere.  Caught before
                # _RETRYABLE: TimeoutError is an OSError subclass.
                self._count("timeouts")
                raise ApiTimeout(
                    f"{method} {path} against {self.base_url} timed out "
                    f"after {self.timeout}s"
                ) from error
            except _RETRYABLE as error:
                self._count("connection_failures")
                last_error = error
                continue
            self._count("responses")
            if status in ok_statuses:
                return parsed
            self._count("http_errors")
            raise response_to_error(parsed, status, headers)
        raise ApiConnectionError(
            f"{self.base_url} unreachable after {self.retries + 1} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        )

    # ------------------------------------------------------------------ #
    # Client protocol
    # ------------------------------------------------------------------ #
    def predict(self, request: PredictRequest) -> PredictResult:
        request_id = ensure_request_id(request.request_id)
        body = self._call(
            "POST", "/v1/predict",
            encode_predict_request(request, encoding=self.encoding),
            request_id=request_id,
        )
        return predict_result_from_body(body, request_id)

    def ensemble(self, request: EnsembleRequest) -> EnsembleResult:
        request_id = ensure_request_id(request.request_id)
        body = self._call(
            "POST", "/v1/predict_under_variation",
            encode_ensemble_request(request, encoding=self.encoding),
            request_id=request_id,
        )
        return ensemble_result_from_body(body, request_id)

    def submit_study(self, spec: StudySpec) -> str:
        """Submit a study job to the server; returns its job id.

        Submission is idempotent on the server side only at the cell
        level; the POST itself is retried like every other call because a
        resubmitted study merely starts a second job computing identical
        (deterministic, seeded) results.
        """
        request_id = ensure_request_id(spec.request_id)
        body = self._call(
            "POST", "/v1/studies",
            encode_study_spec(spec, encoding=self.encoding),
            request_id=request_id,
        )
        return study_status_from_body(body).job_id

    def get_study(self, job_id: str) -> StudyStatus:
        """Poll one study job: state, progress, result when done."""
        require_job_id(job_id)
        body = self._call("GET", f"/v1/studies/{job_id}")
        return study_status_from_body(body)

    def cancel_study(self, job_id: str) -> StudyStatus:
        """Cancel one study job (``DELETE /v1/studies/{id}``; idempotent).

        A running job flips to the terminal ``"cancelled"`` state; a job
        already done/failed/cancelled answers its current status
        unchanged; an unknown id raises the typed 404
        (:class:`~repro.api.errors.ModelNotFound`).
        """
        require_job_id(job_id)
        body = self._call("DELETE", f"/v1/studies/{job_id}")
        return study_status_from_body(body)

    def models(self) -> List[ModelInfo]:
        body = self._call("GET", "/v1/models")
        entries = body.get("models", []) if isinstance(body, Mapping) else []
        return [ModelInfo.from_wire(entry) for entry in entries]

    def stats(self) -> Dict[str, Any]:
        body = self._call("GET", "/v1/stats")
        stats = body.get("stats", {}) if isinstance(body, Mapping) else {}
        stats = dict(stats)
        # The caller's view of the wire, alongside the server's counters.
        stats["client"] = self.client_stats()
        return stats

    def health(self) -> HealthStatus:
        # A degraded or draining server answers the probe with 503 plus a
        # diagnostic body — that is a *successful* health check reporting
        # an unhealthy service, not a transport error.
        body = self._call("GET", "/healthz", ok_statuses=(200, 503))
        if not isinstance(body, Mapping):
            raise InvalidRequest(f"malformed health response: {body!r}")
        return HealthStatus.from_wire(body)

    def close(self) -> None:
        """Close the pooled idle connections (in-flight requests finish)."""
        self._pool.close()

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()
