"""Typed error hierarchy of the ``repro.api`` client layer.

Every failure a client can observe — regardless of whether the request ran
in-process, over HTTP, or against a worker process of a plan cluster — is
expressed as one :class:`ApiError` subclass carrying a *stable
machine-readable code* (:attr:`ApiError.code`) and the HTTP status the
error maps to on the wire (:attr:`ApiError.status`).  The codes are the
cross-transport contract: the HTTP front-end embeds them in error bodies,
:class:`~repro.api.http_client.HttpClient` resolves them back to the same
classes, and the backend-equivalence tests assert that one malformed
request produces the *identical* typed error through every backend.

:func:`map_exception` is the single place legacy exceptions (``KeyError``
for an unknown plan, ``ValueError`` for bad geometry, ``RuntimeError`` for
a closed backend, ...) are folded into the typed hierarchy; the in-process
service, the cluster façade, and the HTTP server all route through it so
the mapping can never drift apart.

This module is import-pure (stdlib only) so any layer — including the
low-level serve modules — may depend on it without cycles.
"""

from __future__ import annotations

from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, Optional, Type


class ApiError(Exception):
    """Base of every typed API failure.

    Subclasses override the two class attributes:

    * ``code`` — stable machine-readable identifier, carried verbatim in
      HTTP error bodies and used by clients to re-raise the right class.
    * ``status`` — the HTTP status the error maps to on the wire.

    Instances are constructed with a single message argument (kept in
    ``args``), which makes every subclass picklable across the cluster's
    process boundary: unpickling calls ``cls(message)`` and then restores
    any extra attributes from ``__dict__``.
    """

    code: str = "internal"
    status: int = 500

    def __init__(self, message: str) -> None:
        super().__init__(message)

    @property
    def message(self) -> str:
        """The human-readable failure description."""
        return str(self.args[0]) if self.args else ""


class InvalidRequest(ApiError):
    """The request itself is malformed: bad payload, geometry, or fields."""

    code = "invalid_request"
    status = 400


class ApiAuthError(ApiError):
    """The server requires a bearer token and the request lacked a valid one."""

    code = "auth_failed"
    status = 401


class ModelNotFound(ApiError):
    """No plan is published under the requested (model, bits, mapping) key."""

    code = "model_not_found"
    status = 404


class ApiBackpressure(ApiError):
    """The serving queue is past its configured depth; retry after a delay.

    ``retry_after`` is the server's pacing hint in seconds (the HTTP
    front-end renders it as a ``Retry-After`` header on the 429 response).
    """

    code = "backpressure"
    status = 429

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class ApiServerError(ApiError):
    """An internal failure on the serving side (e.g. a corrupt artifact)."""

    code = "internal"
    status = 500


class ApiConnectionError(ApiError):
    """The backend could not be reached at the transport level."""

    code = "unreachable"
    status = 502


class BackendClosed(ApiError):
    """The backend is closed or shutting down; the request was not served."""

    code = "backend_closed"
    status = 503


class WorkerDied(ApiError):
    """A cluster worker process died.

    Raised for the in-flight requests the dead worker stranded *and* for
    new requests routed to its shard while it is down.  The metadata tells
    a client what to do next:

    * ``worker_index`` — the shard whose process died (``None`` when the
      failure could not be attributed to one worker).
    * ``breaker_open`` — ``True`` when the shard's circuit breaker is open:
      the worker crash-looped past the cluster's ``max_restarts`` budget
      and will *not* be respawned automatically, so retrying is pointless
      until an operator calls
      :meth:`~repro.serve.cluster.PlanCluster.restart_worker`.  With the
      breaker closed, every protocol request is idempotent/deterministic
      and safe to retry — a self-healing cluster will have respawned the
      shard shortly (:class:`~repro.api.client.ClusterClient` retries
      transparently in exactly this case).

    Extra attributes live in ``__dict__`` and therefore survive pickling
    across the cluster's process boundary (see :class:`ApiError`).
    """

    code = "worker_died"
    status = 503

    def __init__(
        self,
        message: str,
        worker_index: Optional[int] = None,
        breaker_open: bool = False,
    ) -> None:
        super().__init__(message)
        self.worker_index = worker_index
        self.breaker_open = bool(breaker_open)


class ApiTimeout(ApiError):
    """The request did not complete within its deadline."""

    code = "timeout"
    status = 504


#: Stable code → class registry; the inverse of ``ApiError.code``.  Clients
#: use it to resurrect the typed error a server embedded in an error body.
ERROR_CODES: Dict[str, Type[ApiError]] = {
    cls.code: cls
    for cls in (
        InvalidRequest,
        ApiAuthError,
        ModelNotFound,
        ApiBackpressure,
        ApiServerError,
        ApiConnectionError,
        BackendClosed,
        WorkerDied,
        ApiTimeout,
    )
}

#: Fallback resolution for error responses that carry no known code (e.g. a
#: proxy or an older server): the HTTP status alone picks the closest class.
STATUS_CLASSES: Dict[int, Type[ApiError]] = {
    400: InvalidRequest,
    401: ApiAuthError,
    403: ApiAuthError,
    404: ModelNotFound,
    405: InvalidRequest,
    408: ApiTimeout,
    413: InvalidRequest,
    429: ApiBackpressure,
    500: ApiServerError,
    502: ApiConnectionError,
    503: BackendClosed,
    504: ApiTimeout,
}


#: Codes the HTTP layer emits for *protocol*-level failures (unknown path,
#: wrong method, oversized body).  They name misuses of the endpoint, not
#: backend results, so they resolve to InvalidRequest — never to
#: ModelNotFound, which a client may legitimately branch on (e.g. to
#: trigger plan publishing) and which the 404-status fallback alone would
#: wrongly pick for an unknown path.
PROTOCOL_CODES: Dict[str, Type[ApiError]] = {
    "not_found": InvalidRequest,
    "method_not_allowed": InvalidRequest,
    "payload_too_large": InvalidRequest,
}


def error_for(code: str, status: int, message: str) -> ApiError:
    """Resurrect the typed error for a wire-level ``(code, status, message)``."""
    cls = (ERROR_CODES.get(code) or PROTOCOL_CODES.get(code)
           or STATUS_CLASSES.get(status, ApiServerError))
    return cls(message)


def map_exception(error: BaseException) -> ApiError:
    """Fold a legacy exception into the typed hierarchy.

    This is the one shared mapping every backend applies, so the same
    underlying failure yields the identical typed error through the
    in-process service, the HTTP server, and the cluster:

    * ``KeyError`` — an unknown plan key → :class:`ModelNotFound` (the
      quoted ``str()`` wrapper ``KeyError`` adds is unwrapped);
    * ``ValueError`` / ``TypeError`` (including the wire format's
      ``WireFormatError``) — malformed payloads or incompatible geometry →
      :class:`InvalidRequest`;
    * timeouts → :class:`ApiTimeout`;
    * ``PlanArtifactError`` (matched by name; this module stays
      import-pure) — a corrupt published artifact → :class:`ApiServerError`;
    * any other ``RuntimeError`` — the backends' "closed / shutting down"
      signal → :class:`BackendClosed`.
    """
    if isinstance(error, ApiError):
        return error
    if isinstance(error, KeyError):
        message = str(error.args[0]) if error.args else str(error)
        return ModelNotFound(message)
    if isinstance(error, (ValueError, TypeError)):
        return InvalidRequest(str(error))
    if isinstance(error, (FutureTimeoutError, TimeoutError)):
        return ApiTimeout(str(error) or "request timed out")
    if type(error).__name__ == "PlanArtifactError":
        return ApiServerError(str(error))
    if isinstance(error, RuntimeError):
        return BackendClosed(str(error))
    return ApiServerError(f"{type(error).__name__}: {error}")
