"""The Fig. 6 variation study, driven through the ``repro.api`` facade.

:func:`variation_sweep_via_client` replays the paper's device-variation
protocol — accuracy versus sigma, averaged over seeded Monte-Carlo draws —
against *any* :class:`~repro.api.client.Client`.  It is now a thin wrapper
over the asynchronous study-job subsystem (:mod:`repro.serve.jobs`): the
sweep is submitted as one :class:`~repro.api.types.StudySpec`, executed as
checkpointed, resumable cells, and folded back into the same
:class:`ClientSweepResult` rows as before.  Because every cell is a pure
function of the seeded request, the sweep result is bit-identical whether
it ran in-process, over HTTP, or against a cluster — and whether the job
ran straight through or was killed and resumed half-way.

:func:`wait_study` is the blocking half of the async pair: poll a
submitted job until it finishes and return its typed
:class:`~repro.api.types.StudyResult` (or resurrect the job's typed error).

(The training side of Fig. 6 still lives in
:func:`repro.experiments.fig6.run_variation_study` /
:mod:`repro.serve.pool`; this module covers the inference sweep over
*published* plans, the part a deployment actually re-runs.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.client import Client
from repro.api.errors import ApiTimeout, error_for
from repro.api.types import StudyResult, StudySpec, study_spec


@dataclass(frozen=True)
class SigmaPoint:
    """One operating point of a sweep: accuracy and vote stability at a sigma."""

    sigma_fraction: float
    accuracy: float
    mean_confidence: float
    stable_fraction: float


@dataclass(frozen=True)
class ClientSweepResult:
    """Accuracy versus device-variation sigma for one served plan."""

    model: str
    bits: Optional[int]
    mapping: str
    num_samples: int
    seed: int
    points: Tuple[SigmaPoint, ...]

    @property
    def sigmas(self) -> List[float]:
        return [point.sigma_fraction for point in self.points]

    @property
    def accuracies(self) -> List[float]:
        return [point.accuracy for point in self.points]

    def as_rows(self) -> List[str]:
        """Formatted rows, one per sigma point (same shape as Fig. 6 rows)."""
        name = f"{self.model}/{self.mapping}"
        return [
            f"{name:16s} sigma={point.sigma_fraction * 100.0:5.1f}%  "
            f"accuracy={point.accuracy * 100.0:6.2f}%  "
            f"stable={point.stable_fraction * 100.0:5.1f}%"
            for point in self.points
        ]


def wait_study(
    client: Client,
    job_id: str,
    timeout: Optional[float] = 120.0,
    poll_interval: float = 0.05,
) -> StudyResult:
    """Poll ``job_id`` on ``client`` until it finishes; typed result out.

    A failed job resurrects its typed error (the same
    :class:`~repro.api.errors.ApiError` subclass the failing cell raised);
    a job cancelled server-side (``client.cancel_study`` /
    ``DELETE /v1/studies/{id}``) raises
    :class:`~repro.api.errors.BackendClosed` — cancelled is terminal, the
    result will never arrive; a job still running at ``timeout`` raises
    :class:`~repro.api.errors.ApiTimeout` — the job itself keeps running
    (and checkpointing), so a later :meth:`Client.get_study` can still
    collect it.
    """
    deadline = (
        None if timeout is None else time.monotonic() + float(timeout)
    )
    while True:
        status = client.get_study(job_id)
        if status.failed:
            raise error_for(
                status.error_code or "server_error", 500,
                status.error_message or f"study job {job_id!r} failed",
            )
        if status.cancelled:
            raise error_for(
                "backend_closed", 503,
                f"study job {job_id!r} was cancelled",
            )
        if status.done and status.result is not None:
            return status.result
        if deadline is not None and time.monotonic() >= deadline:
            raise ApiTimeout(
                f"study job {job_id!r} still running after {timeout}s "
                f"({status.cells_done}/{status.cells_total} cells done)"
            )
        time.sleep(poll_interval)


def variation_sweep_via_client(
    client: Client,
    images: Any,
    labels: Any,
    *,
    model: str,
    mapping: str,
    bits: Optional[int] = None,
    sigmas: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25),
    num_samples: int = 25,
    seed: int = 0,
    timeout: Optional[float] = 600.0,
) -> ClientSweepResult:
    """Sweep ensemble accuracy over ``sigmas`` for one published plan.

    The sweep is one single-model :class:`StudySpec` submitted through
    :meth:`Client.submit_study`: each sigma becomes one checkpointed cell,
    accuracy scores the majority-vote predictions against ``labels``, and
    the confidence statistics summarise how stable the votes are under
    that much device variation.  Cells are seeded and idempotent, so the
    rows are bit-identical to issuing the ensembles synchronously — and
    survive a worker or manager death mid-sweep.
    """
    image_array = np.asarray(images)
    label_array = np.asarray(labels)
    if label_array.ndim != 1 or image_array.shape[0] != label_array.shape[0]:
        raise ValueError(
            f"labels must be one per image; got images {image_array.shape} "
            f"and labels {label_array.shape}"
        )
    spec: StudySpec = study_spec(
        images=image_array,
        models=[(model, mapping, bits)],
        sigmas=[float(sigma) for sigma in sigmas],
        num_samples=num_samples,
        seed=seed,
        labels=label_array,
    )
    job_id = client.submit_study(spec)
    result = wait_study(client, job_id, timeout=timeout)
    points: List[SigmaPoint] = []
    for cell in result.cells:
        confidence = np.asarray(cell.confidence, dtype=np.float64)
        accuracy = (
            cell.accuracy
            if cell.accuracy is not None
            else float(
                (np.asarray(cell.predictions) == label_array).mean()
            )
        )
        points.append(SigmaPoint(
            sigma_fraction=float(cell.sigma_fraction),
            accuracy=float(accuracy),
            mean_confidence=float(confidence.mean()),
            stable_fraction=float((confidence == 1.0).mean()),
        ))
    return ClientSweepResult(
        model=model,
        bits=bits,
        mapping=mapping,
        num_samples=num_samples,
        seed=seed,
        points=tuple(points),
    )
