"""The Fig. 6 variation study, driven through the ``repro.api`` facade.

:func:`variation_sweep_via_client` replays the paper's device-variation
protocol — accuracy versus sigma, averaged over seeded Monte-Carlo draws —
as a sequence of :class:`~repro.api.types.EnsembleRequest` calls against
*any* :class:`~repro.api.client.Client`.  Because every backend returns
bit-identical ensembles for the same seeded request, the sweep result is
the same whether it ran in-process, over HTTP, or against a cluster —
which turns the study itself into a serving-equivalence certificate.

(The training side of Fig. 6 still lives in
:func:`repro.experiments.fig6.run_variation_study` /
:mod:`repro.serve.pool`; this module covers the inference sweep over
*published* plans, the part a deployment actually re-runs.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.client import Client
from repro.api.types import EnsembleRequest


@dataclass(frozen=True)
class SigmaPoint:
    """One operating point of a sweep: accuracy and vote stability at a sigma."""

    sigma_fraction: float
    accuracy: float
    mean_confidence: float
    stable_fraction: float


@dataclass(frozen=True)
class ClientSweepResult:
    """Accuracy versus device-variation sigma for one served plan."""

    model: str
    bits: Optional[int]
    mapping: str
    num_samples: int
    seed: int
    points: Tuple[SigmaPoint, ...]

    @property
    def sigmas(self) -> List[float]:
        return [point.sigma_fraction for point in self.points]

    @property
    def accuracies(self) -> List[float]:
        return [point.accuracy for point in self.points]

    def as_rows(self) -> List[str]:
        """Formatted rows, one per sigma point (same shape as Fig. 6 rows)."""
        name = f"{self.model}/{self.mapping}"
        return [
            f"{name:16s} sigma={point.sigma_fraction * 100.0:5.1f}%  "
            f"accuracy={point.accuracy * 100.0:6.2f}%  "
            f"stable={point.stable_fraction * 100.0:5.1f}%"
            for point in self.points
        ]


def variation_sweep_via_client(
    client: Client,
    images: Any,
    labels: Any,
    *,
    model: str,
    mapping: str,
    bits: Optional[int] = None,
    sigmas: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25),
    num_samples: int = 25,
    seed: int = 0,
) -> ClientSweepResult:
    """Sweep ensemble accuracy over ``sigmas`` for one published plan.

    For each sigma, one seeded :class:`EnsembleRequest` covers the whole
    evaluation batch; accuracy scores the majority-vote predictions against
    ``labels``, and the confidence statistics summarise how stable the
    votes are under that much device variation.
    """
    image_array = np.asarray(images)
    label_array = np.asarray(labels)
    if label_array.ndim != 1 or image_array.shape[0] != label_array.shape[0]:
        raise ValueError(
            f"labels must be one per image; got images {image_array.shape} "
            f"and labels {label_array.shape}"
        )
    points: List[SigmaPoint] = []
    for sigma in sigmas:
        result = client.ensemble(EnsembleRequest(
            images=image_array,
            model=model,
            mapping=mapping,
            bits=bits,
            sigma_fraction=float(sigma),
            num_samples=num_samples,
            seed=seed,
        ))
        predictions = np.asarray(result.predictions)
        confidence = np.asarray(result.confidence, dtype=np.float64)
        points.append(SigmaPoint(
            sigma_fraction=float(sigma),
            accuracy=float((predictions == label_array).mean()),
            mean_confidence=float(confidence.mean()),
            stable_fraction=float((confidence == 1.0).mean()),
        ))
    return ClientSweepResult(
        model=model,
        bits=bits,
        mapping=mapping,
        num_samples=num_samples,
        seed=seed,
        points=tuple(points),
    )
