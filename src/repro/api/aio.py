"""``AsyncClient``: the typed client surface as ``await``-ables.

The ``asyncio`` counterpart of :class:`~repro.api.http_client.HttpClient`:
the same typed dataclasses in and out, the same machine-readable error
mapping, the same idempotent-retry policy — with every method a coroutine
and the transport a pool of keep-alive ``asyncio`` stream connections
instead of blocking sockets.  Response decoding is shared with the sync
client (module-level helpers in :mod:`repro.api.http_client`), so the two
transports return bit-identical results and raise identical typed errors
by construction.

Pooling: at most ``pool_size`` connections to the host exist at once — a
semaphore makes callers past the limit *wait for a connection* instead of
dialing more sockets — and connections are reused LIFO across requests
while they stay warm (``keepalive_timeout``).  The pool never retains an
ambiguous socket: a timeout, transport failure, or half-read response
closes the connection; only a fully-read keep-alive exchange releases it
for reuse.  A pooled connection the server quietly closed while idle
costs one transparent re-issue on a fresh socket, not an error.

Works against either edge — the threaded
:class:`~repro.serve.http.PlanServer` or the event-loop
:class:`~repro.serve.aio.AsyncPlanServer` — over HTTP or TLS::

    async with connect_async("http://127.0.0.1:8000", token="s3cret") as api:
        result = await api.predict(PredictRequest(images=batch, model="mlp"))

Concurrency model: one ``AsyncClient`` belongs to one event loop.  Methods
may be awaited concurrently (that is the point — ``asyncio.gather`` many
predicts over the pooled connections); sharing an instance across loops
or threads is not supported.
"""

from __future__ import annotations

import asyncio
import json
import ssl
import time
import urllib.parse
from types import TracebackType
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type

from repro.api.codec import (
    encode_ensemble_request,
    encode_predict_request,
    encode_study_spec,
)
from repro.api.errors import ApiConnectionError, ApiTimeout, InvalidRequest
from repro.api.http_client import (
    ensemble_result_from_body,
    parse_json_body,
    predict_result_from_body,
    require_job_id,
    response_to_error,
    study_status_from_body,
)
from repro.api.types import (
    EnsembleRequest,
    EnsembleResult,
    HealthStatus,
    ModelInfo,
    PredictRequest,
    PredictResult,
    StudySpec,
    StudyStatus,
)
from repro.obs.tracing import REQUEST_ID_HEADER, ensure_request_id

#: Transport failures worth re-issuing the (idempotent) request over:
#: the connection died before a complete response arrived.
#: ``EOFError`` covers ``asyncio.IncompleteReadError`` (a peer that hung
#: up mid-response).  Note ``TimeoutError`` is an ``OSError`` subclass —
#: timeouts are caught first and deliberately never retried.
_ASYNC_RETRYABLE = (ConnectionError, EOFError, OSError)

_Conn = Tuple[asyncio.StreamReader, asyncio.StreamWriter]


def _close_conn(writer: asyncio.StreamWriter) -> None:
    try:
        writer.close()
    except Exception:  # noqa: BLE001 - teardown must never raise
        pass


class _AsyncPool:
    """Per-host connection pool: a concurrency cap plus LIFO idle reuse.

    ``acquire`` first takes the semaphore (so at most ``limit``
    connections are in flight or idle at once — callers past the limit
    queue on the semaphore, they do not dial), then hands back the
    warmest idle connection, or ``None`` when the caller should dial a
    fresh one.  ``release`` returns the semaphore and either parks the
    connection for reuse or closes it.
    """

    def __init__(self, limit: int, keepalive_timeout: float) -> None:
        self._sem = asyncio.Semaphore(limit)
        self._keepalive = keepalive_timeout
        self._idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter,
                               float]] = []
        self._closed = False

    async def acquire(self) -> Optional[_Conn]:
        await self._sem.acquire()
        now = time.monotonic()
        while self._idle:
            reader, writer, stored = self._idle.pop()
            if now - stored <= self._keepalive and not writer.is_closing():
                return reader, writer
            _close_conn(writer)
        return None

    def release(self, conn: Optional[_Conn], reusable: bool) -> None:
        if conn is not None:
            reader, writer = conn
            if reusable and not self._closed and not writer.is_closing():
                self._idle.append((reader, writer, time.monotonic()))
            else:
                _close_conn(writer)
        self._sem.release()

    def idle_count(self) -> int:
        return len(self._idle)

    async def close(self) -> None:
        self._closed = True
        idle, self._idle = self._idle, []
        for _, writer, _ in idle:
            _close_conn(writer)
        for _, writer, _ in idle:
            try:
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - teardown must never raise
                pass


class AsyncClient:
    """Awaitable typed client for a served HTTP endpoint.

    Same parameters and semantics as
    :class:`~repro.api.http_client.HttpClient` (``token``, ``timeout``,
    ``retries``, ``retry_backoff``, ``encoding``, ``cafile``,
    ``insecure``, ``pool_size``, ``keepalive_timeout``) — with every
    protocol method an ``await``-able and ``pool_size`` acting as a hard
    per-host concurrency cap: the ``pool_size + 1``-th concurrent request
    waits for a pooled connection instead of opening another socket.
    """

    def __init__(
        self,
        base_url: str,
        token: Optional[str] = None,
        timeout: Optional[float] = 60.0,
        retries: int = 2,
        retry_backoff: float = 0.05,
        encoding: str = "b64",
        cafile: Optional[str] = None,
        insecure: bool = False,
        pool_size: int = 8,
        keepalive_timeout: float = 25.0,
    ) -> None:
        parts = urllib.parse.urlsplit(base_url)
        if parts.scheme not in ("http", "https"):
            raise ValueError(
                f"base_url must start with http:// or https://, got {base_url!r}"
            )
        host = parts.hostname
        if not host:
            raise ValueError(f"base_url {base_url!r} has no host")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        if keepalive_timeout <= 0:
            raise ValueError("keepalive_timeout must be positive")
        if encoding not in ("b64", "list"):
            raise ValueError(f"encoding must be 'b64' or 'list', not {encoding!r}")
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.encoding = encoding
        self.pool_size = pool_size
        self.keepalive_timeout = keepalive_timeout
        self._host: str = host
        self._port = parts.port or (443 if parts.scheme == "https" else 80)
        self._prefix = parts.path.rstrip("/")
        self._ssl_context: Optional[ssl.SSLContext] = None
        if parts.scheme == "https":
            if insecure:
                context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
                context.check_hostname = False
                context.verify_mode = ssl.CERT_NONE
            else:
                context = ssl.create_default_context(cafile=cafile)
            self._ssl_context = context
        self._pool = _AsyncPool(pool_size, keepalive_timeout)
        self._closed = False
        # Same counter catalogue as the sync client, so stats()["client"]
        # has one shape regardless of transport.
        self._transport_stats: Dict[str, int] = {
            "requests": 0,
            "responses": 0,
            "retries": 0,
            "timeouts": 0,
            "connection_failures": 0,
            "http_errors": 0,
            "connections_reused": 0,
            "connections_opened": 0,
            "stale_retries": 0,
        }

    def _count(self, event: str, amount: int = 1) -> None:
        # Single-loop access only; plain increments are race-free there.
        self._transport_stats[event] += amount

    def client_stats(self) -> Dict[str, int]:
        """This client's transport counters (requests, retries, reuse...)."""
        return dict(self._transport_stats)

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    async def _open_connection(self) -> _Conn:
        self._count("connections_opened")
        reader, writer = await asyncio.open_connection(
            self._host, self._port, ssl=self._ssl_context
        )
        return reader, writer

    def _request_bytes(
        self,
        method: str,
        path: str,
        payload: Optional[bytes],
        request_id: Optional[str],
    ) -> bytes:
        lines = [
            f"{method} {self._prefix + path} HTTP/1.1",
            f"Host: {self._host}:{self._port}",
            "Content-Type: application/json",
        ]
        if payload is not None:
            lines.append(f"Content-Length: {len(payload)}")
        if self.token is not None:
            lines.append(f"Authorization: Bearer {self.token}")
        if request_id is not None:
            lines.append(f"{REQUEST_ID_HEADER}: {request_id}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head if payload is None else head + payload

    async def _exchange(
        self,
        conn: _Conn,
        method: str,
        path: str,
        payload: Optional[bytes],
        request_id: Optional[str],
    ) -> Tuple[int, Dict[str, str], Any, bool]:
        """One request/response on ``conn``; see the sync twin's contract.

        Returns ``(status, headers, body, reusable)``; any exception
        leaves the connection ambiguous and the caller must close it.
        """
        reader, writer = conn
        writer.write(self._request_bytes(method, path, payload, request_id))
        await writer.drain()
        status_line = await reader.readline()
        if not status_line:
            # EOF before a status byte: the keep-alive peer hung up.
            raise ConnectionResetError("server closed connection")
        try:
            status = int(status_line.decode("latin-1").split(" ", 2)[1])
        except (IndexError, ValueError, UnicodeDecodeError):
            raise ConnectionError(
                f"malformed response status line {status_line!r}"
            )
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if line == b"":
                raise ConnectionResetError("connection lost in headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_header = headers.get("content-length")
        if length_header is not None:
            raw = await reader.readexactly(int(length_header))
            reusable = headers.get("connection", "").lower() != "close"
        else:
            # No explicit framing: body runs to EOF, connection spent.
            raw = await reader.read()
            reusable = False
        return status, headers, parse_json_body(raw), reusable

    async def _dial(self) -> _Conn:
        try:
            return await asyncio.wait_for(
                self._open_connection(), timeout=self.timeout
            )
        except (asyncio.TimeoutError, TimeoutError) as error:
            raise ApiTimeout(
                f"connect to {self.base_url} timed out after {self.timeout}s"
            ) from error

    async def _timed_exchange(
        self,
        conn: _Conn,
        method: str,
        path: str,
        payload: Optional[bytes],
        request_id: Optional[str],
    ) -> Tuple[int, Dict[str, str], Any, bool]:
        try:
            return await asyncio.wait_for(
                self._exchange(conn, method, path, payload, request_id),
                timeout=self.timeout,
            )
        except (asyncio.TimeoutError, TimeoutError) as error:
            raise ApiTimeout(
                f"{method} {path} against {self.base_url} timed out "
                f"after {self.timeout}s"
            ) from error

    async def _attempt(
        self,
        method: str,
        path: str,
        payload: Optional[bytes],
        request_id: Optional[str],
    ) -> Tuple[int, Dict[str, str], Any]:
        """One request over a pooled or fresh connection.

        Mirrors the sync client's connection hygiene exactly: clean
        fully-read exchanges release the socket for reuse, every failure
        closes it (the pool's concurrency slot is returned either way),
        and a *reused* connection failing before a complete response gets
        one free re-issue on a fresh socket (timeouts excluded — the
        server may still be computing).
        """
        conn = await self._pool.acquire()
        reused = conn is not None
        released = False
        try:
            if conn is None:
                conn = await self._dial()
            else:
                self._count("connections_reused")
            try:
                status, headers, body, reusable = await self._timed_exchange(
                    conn, method, path, payload, request_id
                )
            except _ASYNC_RETRYABLE:
                _close_conn(conn[1])
                conn = None
                if not reused:
                    raise
                # Stale pooled socket: re-issue once on a fresh connection.
                self._count("stale_retries")
                conn = await self._dial()
                status, headers, body, reusable = await self._timed_exchange(
                    conn, method, path, payload, request_id
                )
            self._pool.release(conn, reusable)
            released = True
            return status, headers, body
        except BaseException:
            if conn is not None:
                _close_conn(conn[1])
            raise
        finally:
            if not released:
                # Failure path: the connection (if any) is already closed
                # above; hand only the concurrency slot back.
                self._pool.release(None, False)

    async def _call(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        request_id: Optional[str] = None,
        ok_statuses: Tuple[int, ...] = (200,),
    ) -> Any:
        """Issue one API call, retrying transport failures; typed errors out."""
        if self._closed:
            raise ApiConnectionError("client is closed")
        payload = (
            None if body is None
            else json.dumps(body, allow_nan=False).encode("utf-8")
        )
        last_error: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                self._count("retries")
                await asyncio.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            self._count("requests")
            try:
                status, headers, parsed = await self._attempt(
                    method, path, payload, request_id
                )
            except ApiTimeout:
                # The server is still computing; re-sending only multiplies
                # its load.  Typed contract: timeouts map to ApiTimeout.
                self._count("timeouts")
                raise
            except _ASYNC_RETRYABLE as error:
                self._count("connection_failures")
                last_error = error
                continue
            self._count("responses")
            if status in ok_statuses:
                return parsed
            self._count("http_errors")
            raise response_to_error(parsed, status, headers)
        raise ApiConnectionError(
            f"{self.base_url} unreachable after {self.retries + 1} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        )

    # ------------------------------------------------------------------ #
    # Client protocol (awaitable)
    # ------------------------------------------------------------------ #
    async def predict(self, request: PredictRequest) -> PredictResult:
        """Deterministic logits for one request (bit-exact across backends)."""
        request_id = ensure_request_id(request.request_id)
        body = await self._call(
            "POST", "/v1/predict",
            encode_predict_request(request, encoding=self.encoding),
            request_id=request_id,
        )
        return predict_result_from_body(body, request_id)

    async def ensemble(self, request: EnsembleRequest) -> EnsembleResult:
        """Seeded Monte-Carlo ensemble prediction under device variation."""
        request_id = ensure_request_id(request.request_id)
        body = await self._call(
            "POST", "/v1/predict_under_variation",
            encode_ensemble_request(request, encoding=self.encoding),
            request_id=request_id,
        )
        return ensemble_result_from_body(body, request_id)

    async def submit_study(self, spec: StudySpec) -> str:
        """Submit an asynchronous study job; returns its job id."""
        request_id = ensure_request_id(spec.request_id)
        body = await self._call(
            "POST", "/v1/studies",
            encode_study_spec(spec, encoding=self.encoding),
            request_id=request_id,
        )
        return study_status_from_body(body).job_id

    async def get_study(self, job_id: str) -> StudyStatus:
        """Poll one study job: state, progress, result when done."""
        require_job_id(job_id)
        body = await self._call("GET", f"/v1/studies/{job_id}")
        return study_status_from_body(body)

    async def cancel_study(self, job_id: str) -> StudyStatus:
        """Cancel one study job (``DELETE /v1/studies/{id}``; idempotent)."""
        require_job_id(job_id)
        body = await self._call("DELETE", f"/v1/studies/{job_id}")
        return study_status_from_body(body)

    async def models(self) -> List[ModelInfo]:
        """The backend's published-plan catalogue (with content digests)."""
        body = await self._call("GET", "/v1/models")
        entries = body.get("models", []) if isinstance(body, Mapping) else []
        return [ModelInfo.from_wire(entry) for entry in entries]

    async def stats(self) -> Dict[str, Any]:
        """Serving statistics, with this client's transport counters under
        ``"client"``."""
        body = await self._call("GET", "/v1/stats")
        stats = body.get("stats", {}) if isinstance(body, Mapping) else {}
        stats = dict(stats)
        stats["client"] = self.client_stats()
        return stats

    async def health(self) -> HealthStatus:
        """Liveness probe; a 503 is a successful check reporting unhealthy."""
        body = await self._call("GET", "/healthz", ok_statuses=(200, 503))
        if not isinstance(body, Mapping):
            raise InvalidRequest(f"malformed health response: {body!r}")
        return HealthStatus.from_wire(body)

    async def close(self) -> None:
        """Close the pooled idle connections (in-flight requests finish)."""
        if self._closed:
            return
        self._closed = True
        await self._pool.close()

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        await self.close()
