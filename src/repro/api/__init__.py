"""Unified typed client layer: one facade over every serving backend.

``repro.api`` is the surface consumers code against, with the transport an
implementation detail selected at :func:`connect` time:

* **Types** (:mod:`repro.api.types`) — ``@dataclass`` requests/responses
  (:class:`PredictRequest`, :class:`EnsembleRequest`,
  :class:`PredictResult`, :class:`EnsembleResult`, :class:`ModelInfo`,
  :class:`HealthStatus`) shared by every backend *and* by the serve-side
  internals, so the HTTP handlers are thin codecs (:mod:`repro.api.codec`)
  and the cluster pickles the same objects across its process boundary.
* **Errors** (:mod:`repro.api.errors`) — a typed :class:`ApiError`
  hierarchy with stable machine-readable codes (``model_not_found``,
  ``invalid_request``, ``backpressure``, ``auth_failed``, ``worker_died``,
  ...); the same malformed request raises the identical typed error
  through every backend.
* **Clients** (:mod:`repro.api.client`, :mod:`repro.api.http_client`,
  :mod:`repro.api.aio`) — the :class:`Client` protocol and its three
  interchangeable implementations: :class:`LocalClient` (in-process
  :class:`~repro.serve.service.InferenceService`), :class:`HttpClient`
  (wire protocol against either HTTP edge, with a keep-alive connection
  pool, idempotent-request retries, and bearer-token auth), and
  :class:`ClusterClient` (sharded
  :class:`~repro.serve.cluster.PlanCluster`) — plus :class:`AsyncClient`,
  the ``await``-able HTTP client (same dataclasses, same typed errors,
  pooled ``asyncio`` connections).
* **Dispatch** (:mod:`repro.api.connect`) — ``connect("local:plans/")``,
  ``connect("http://host:8100")``, ``connect("cluster:plans/?workers=4")``;
  :func:`connect_async` (or ``connect("http://…?async=true")``) for the
  awaitable client.
* **Studies** (:mod:`repro.api.study`, :mod:`repro.serve.jobs`) —
  asynchronous, checkpointed study jobs: submit a typed
  :class:`StudySpec` sweep (models × sigmas) via
  :meth:`Client.submit_study`, poll with :meth:`Client.get_study` /
  :func:`wait_study`, collect a :class:`StudyResult` that is bit-identical
  whether the job ran straight through or was killed and resumed.  The
  Fig. 6 sigma sweep (:func:`variation_sweep_via_client`) is a thin
  wrapper over one such job.

All three backends return bit-identical float64 predictions for the same
request; the backend-equivalence test matrix enforces it.

The pure modules (``types``, ``errors``, ``codec``) import nothing from
:mod:`repro.serve`, which lets the serve internals depend on them; the
client/connect layer (which *does* import the backends) loads lazily via
module ``__getattr__`` so the two packages can import each other's leaves
without a cycle.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING, Any, Dict, List

from repro.api.errors import (
    ApiAuthError,
    ApiBackpressure,
    ApiConnectionError,
    ApiError,
    ApiServerError,
    ApiTimeout,
    BackendClosed,
    ERROR_CODES,
    InvalidRequest,
    ModelNotFound,
    WorkerDied,
    error_for,
    map_exception,
)
from repro.api.types import (
    EnsembleRequest,
    EnsembleResult,
    HealthStatus,
    ModelInfo,
    PredictRequest,
    PredictResult,
    STUDY_STATES,
    StudyCellResult,
    StudyModel,
    StudyResult,
    StudySpec,
    StudyStatus,
    bits_token,
    canonical_name,
    parse_bits_token,
    study_spec,
)

if TYPE_CHECKING:  # the lazy names, visible to type checkers
    from repro.api.aio import AsyncClient
    from repro.api.client import Client, ClusterClient, LocalClient
    from repro.api.connect import connect, connect_async
    from repro.api.http_client import HttpClient
    from repro.api.study import (
        ClientSweepResult,
        SigmaPoint,
        variation_sweep_via_client,
        wait_study,
    )

#: Lazily resolved exports -> defining module.  These modules import the
#: serve backends, so resolving them eagerly from a serve-internal import
#: of repro.api.types would cycle.
_LAZY: Dict[str, str] = {
    "AsyncClient": "repro.api.aio",
    "Client": "repro.api.client",
    "ClusterClient": "repro.api.client",
    "LocalClient": "repro.api.client",
    "HttpClient": "repro.api.http_client",
    "connect": "repro.api.connect",
    "connect_async": "repro.api.connect",
    "ClientSweepResult": "repro.api.study",
    "SigmaPoint": "repro.api.study",
    "variation_sweep_via_client": "repro.api.study",
    "wait_study": "repro.api.study",
}

__all__ = [
    "ApiAuthError",
    "ApiBackpressure",
    "ApiConnectionError",
    "ApiError",
    "ApiServerError",
    "ApiTimeout",
    "AsyncClient",
    "BackendClosed",
    "Client",
    "ClientSweepResult",
    "ClusterClient",
    "ERROR_CODES",
    "EnsembleRequest",
    "EnsembleResult",
    "HealthStatus",
    "HttpClient",
    "InvalidRequest",
    "LocalClient",
    "ModelInfo",
    "ModelNotFound",
    "PredictRequest",
    "PredictResult",
    "STUDY_STATES",
    "SigmaPoint",
    "StudyCellResult",
    "StudyModel",
    "StudyResult",
    "StudySpec",
    "StudyStatus",
    "WorkerDied",
    "bits_token",
    "canonical_name",
    "connect",
    "connect_async",
    "error_for",
    "map_exception",
    "parse_bits_token",
    "study_spec",
    "variation_sweep_via_client",
    "wait_study",
]


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    module = importlib.import_module(module_name)
    # Cache every export of the module, not just the requested name: the
    # import above also binds the *submodule* onto this package (standard
    # submodule semantics), and for repro.api.connect that binding would
    # shadow the connect() function — resolving connect_async first must
    # not turn repro.api.connect into a module object.
    for export, owner in _LAZY.items():
        if owner == module_name:
            globals()[export] = getattr(module, export)
    value: Any = globals()[name]
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_LAZY))
