"""Conductance ranges and uniform quantisation of crossbar weights.

The paper assumes synapse conductances in ``[Gmin, Gmax]`` (with ``Gmin = 0``
for simplicity) and ``2^B`` equally spaced states for a ``B``-bit device.
During training the crossbar matrix ``M`` is quantised to these states with a
straight-through estimator, following the DoReFa-style recipe the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor import Tensor


@dataclass(frozen=True)
class ConductanceRange:
    """The representable conductance range of a synapse device.

    Attributes
    ----------
    g_min, g_max:
        Minimum and maximum programmable conductance.  The paper sets
        ``g_min = 0`` for its analysis; the class supports a non-zero minimum
        as well because real devices have a finite off conductance.
    """

    g_min: float = 0.0
    g_max: float = 1.0

    def __post_init__(self) -> None:
        if self.g_max <= self.g_min:
            raise ValueError("g_max must be strictly greater than g_min")
        if self.g_min < 0:
            raise ValueError("conductances cannot be negative")

    @property
    def span(self) -> float:
        """Width of the conductance range."""
        return self.g_max - self.g_min

    @property
    def midpoint(self) -> float:
        """Middle of the range; the BC mapping fixes its bias column here."""
        return 0.5 * (self.g_min + self.g_max)

    def clip(self, values: np.ndarray) -> np.ndarray:
        """Clip values into the representable range."""
        return np.clip(values, self.g_min, self.g_max)

    def contains(self, values: np.ndarray, tolerance: float = 1e-9) -> bool:
        """Return True if every value lies inside the range (within tolerance)."""
        values = np.asarray(values)
        return bool(
            (values >= self.g_min - tolerance).all()
            and (values <= self.g_max + tolerance).all()
        )


class UniformQuantizer:
    """Uniform quantiser over a conductance range.

    Parameters
    ----------
    bits:
        Device precision ``B``; the quantiser exposes ``2^B`` levels.
    range:
        The conductance range the levels span.
    """

    def __init__(self, bits: int, conductance_range: ConductanceRange = ConductanceRange()):
        if bits < 1:
            raise ValueError("bits must be at least 1")
        if bits > 16:
            raise ValueError("bits above 16 are not meaningful for crossbar devices")
        self.bits = int(bits)
        self.range = conductance_range
        self.num_levels = 2 ** self.bits
        self.levels = np.linspace(
            conductance_range.g_min, conductance_range.g_max, self.num_levels
        )

    @property
    def step(self) -> float:
        """Spacing between adjacent quantisation levels."""
        return self.range.span / (self.num_levels - 1)

    def quantize_array(self, values: np.ndarray) -> np.ndarray:
        """Snap a NumPy array to the nearest quantisation level.

        Ties (values exactly half-way between two levels) resolve to the lower
        level, matching the tensor-path quantiser (:meth:`quantize_ste`) so
        that the two code paths always program identical device states.
        """
        return self.snap(values)

    def snap(self, values: np.ndarray) -> np.ndarray:
        """Vectorised nearest-level snap with O(N) memory.

        Equivalent to an arg-min over the full level table (ties resolve to
        the lower level) but computed from a rounded candidate index refined
        against its two neighbours, so snapping a stacked Monte-Carlo draw of
        conductances does not materialise an ``N x 2^bits`` distance matrix.
        """
        values = self.range.clip(np.asarray(values, dtype=np.float64))
        candidate = np.rint((values - self.range.g_min) / self.step).astype(np.int64)
        candidate = np.clip(candidate, 0, self.num_levels - 1)
        # The float-computed candidate can be off by one; compare against the
        # lower/self/upper neighbours in ascending order so exact half-way
        # values pick the lower level, exactly like argmin over all levels.
        neighbours = np.stack(
            [
                np.clip(candidate - 1, 0, self.num_levels - 1),
                candidate,
                np.clip(candidate + 1, 0, self.num_levels - 1),
            ]
        )
        distances = np.abs(values[None, ...] - self.levels[neighbours])
        best = distances.argmin(axis=0)
        return self.levels[np.take_along_axis(neighbours, best[None, ...], axis=0)[0]]

    def quantize_ste(self, tensor: Tensor) -> Tensor:
        """Quantise a tensor with a straight-through estimator backward pass."""
        clipped = tensor.clip(self.range.g_min, self.range.g_max)
        return clipped.quantize_ste(self.levels)

    def state_index(self, values: np.ndarray) -> np.ndarray:
        """Return the integer state index of each value (ties resolve downward)."""
        values = self.range.clip(np.asarray(values, dtype=np.float64))
        return np.abs(values[..., None] - self.levels).argmin(axis=-1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UniformQuantizer(bits={self.bits}, "
            f"range=[{self.range.g_min}, {self.range.g_max}])"
        )
