"""Crossbar-array tile model.

A :class:`CrossbarArray` holds one physical tile of non-negative conductances
and models programming (write) and analog matrix-vector readout, including the
device non-idealities from the other modules of this package: limited
precision, programming (device) variation, and optional read noise.

:class:`CrossbarTiling` partitions an arbitrary-size non-negative matrix over
fixed-size tiles, which the hardware cost model (:mod:`repro.hardware`) uses
to count arrays, ADCs and wire lengths for the different mapping schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.xbar.quantization import ConductanceRange, UniformQuantizer
from repro.xbar.variation import DeviceVariationModel


class CrossbarArray:
    """One physical crossbar tile storing a non-negative conductance matrix.

    The tile is organised as ``rows x cols`` where rows carry the input
    voltages and columns accumulate currents, i.e. the stored matrix maps an
    input vector of length ``rows`` to an output vector of length ``cols``
    via ``output = input @ G``.

    Parameters
    ----------
    rows, cols:
        Physical dimensions of the tile.
    quantizer:
        Optional conductance quantiser applied when programming.
    variation:
        Optional device-variation model applied when programming.
    read_noise_sigma:
        Standard deviation of additive Gaussian noise on each analog column
        current at read time, as a fraction of the full-scale column current.
    rng:
        Random generator for variation and read noise.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        quantizer: Optional[UniformQuantizer] = None,
        variation: Optional[DeviceVariationModel] = None,
        read_noise_sigma: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if rows <= 0 or cols <= 0:
            raise ValueError("crossbar dimensions must be positive")
        if read_noise_sigma < 0:
            raise ValueError("read_noise_sigma must be non-negative")
        self.rows = rows
        self.cols = cols
        self.quantizer = quantizer
        self.variation = variation
        self.read_noise_sigma = read_noise_sigma
        self._rng = rng if rng is not None else np.random.default_rng()
        conductance_range = (
            quantizer.range if quantizer is not None
            else (variation.range if variation is not None else ConductanceRange())
        )
        self.range = conductance_range
        self.conductances = np.zeros((rows, cols))

    # ------------------------------------------------------------------ #
    # Programming
    # ------------------------------------------------------------------ #
    def program(self, target: np.ndarray) -> np.ndarray:
        """Program the tile to the target conductance matrix.

        The target is clipped to the conductance range, quantised to the
        available device states, and perturbed by device variation.  The
        actually-programmed conductances are stored and returned.
        """
        target = np.asarray(target, dtype=np.float64)
        if target.shape != (self.rows, self.cols):
            raise ValueError(
                f"target shape {target.shape} does not match tile ({self.rows}, {self.cols})"
            )
        if (target < 0).any():
            raise ValueError("crossbar conductances must be non-negative")
        programmed = self.range.clip(target)
        if self.quantizer is not None:
            programmed = self.quantizer.quantize_array(programmed)
        if self.variation is not None:
            programmed = self.variation.perturb(programmed, rng=self._rng)
        self.conductances = programmed
        return programmed.copy()

    # ------------------------------------------------------------------ #
    # Analog readout
    # ------------------------------------------------------------------ #
    def matvec(self, inputs: np.ndarray) -> np.ndarray:
        """Analog matrix-vector product for a single input vector."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.shape != (self.rows,):
            raise ValueError(f"expected input of shape ({self.rows},), got {inputs.shape}")
        currents = inputs @ self.conductances
        return self._add_read_noise(currents)

    def matmat(self, inputs: np.ndarray) -> np.ndarray:
        """Analog matrix-matrix product for a batch of input vectors (N, rows)."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.rows:
            raise ValueError(
                f"expected inputs of shape (N, {self.rows}), got {inputs.shape}"
            )
        currents = inputs @ self.conductances
        return self._add_read_noise(currents)

    def _add_read_noise(self, currents: np.ndarray) -> np.ndarray:
        if self.read_noise_sigma == 0.0:
            return currents
        full_scale = self.rows * self.range.g_max
        noise = self._rng.normal(0.0, self.read_noise_sigma * full_scale, size=currents.shape)
        return currents + noise

    def utilisation(self) -> float:
        """Fraction of devices programmed to a non-minimum conductance."""
        return float((self.conductances > self.range.g_min).mean())


@dataclass
class TilePlacement:
    """Location of one tile within a tiled matrix."""

    row_start: int
    col_start: int
    rows: int
    cols: int


class CrossbarTiling:
    """Partition a large non-negative matrix over fixed-size crossbar tiles.

    Parameters
    ----------
    matrix:
        The non-negative matrix to map, of shape ``(rows, cols)`` where rows
        correspond to inputs and columns to crossbar columns.
    tile_rows, tile_cols:
        Physical tile dimensions (e.g. 128x128).
    quantizer, variation, read_noise_sigma, rng:
        Forwarded to every :class:`CrossbarArray` tile.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        tile_rows: int = 128,
        tile_cols: int = 128,
        quantizer: Optional[UniformQuantizer] = None,
        variation: Optional[DeviceVariationModel] = None,
        read_noise_sigma: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("CrossbarTiling expects a 2-D matrix")
        if (matrix < 0).any():
            raise ValueError("crossbar matrices must be non-negative")
        self.matrix_shape = matrix.shape
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self._rng = rng if rng is not None else np.random.default_rng()

        self.tiles: List[CrossbarArray] = []
        self.placements: List[TilePlacement] = []
        rows, cols = matrix.shape
        for row_start in range(0, rows, tile_rows):
            for col_start in range(0, cols, tile_cols):
                block = matrix[row_start:row_start + tile_rows, col_start:col_start + tile_cols]
                tile = CrossbarArray(
                    rows=block.shape[0],
                    cols=block.shape[1],
                    quantizer=quantizer,
                    variation=variation,
                    read_noise_sigma=read_noise_sigma,
                    rng=self._rng,
                )
                tile.program(block)
                self.tiles.append(tile)
                self.placements.append(
                    TilePlacement(row_start, col_start, block.shape[0], block.shape[1])
                )

    @property
    def num_tiles(self) -> int:
        """Number of physical tiles used."""
        return len(self.tiles)

    def programmed_matrix(self) -> np.ndarray:
        """Reassemble the actually-programmed matrix from all tiles."""
        assembled = np.zeros(self.matrix_shape)
        for tile, placement in zip(self.tiles, self.placements):
            assembled[
                placement.row_start:placement.row_start + placement.rows,
                placement.col_start:placement.col_start + placement.cols,
            ] = tile.conductances
        return assembled

    def matmat(self, inputs: np.ndarray) -> np.ndarray:
        """Compute ``inputs @ matrix`` using the programmed tiles.

        Partial products from tiles that share output columns are accumulated
        digitally, exactly as a tiled accelerator would after ADC conversion.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.matrix_shape[0]:
            raise ValueError(
                f"expected inputs of shape (N, {self.matrix_shape[0]}), got {inputs.shape}"
            )
        outputs = np.zeros((inputs.shape[0], self.matrix_shape[1]))
        for tile, placement in zip(self.tiles, self.placements):
            input_slice = inputs[:, placement.row_start:placement.row_start + placement.rows]
            outputs[:, placement.col_start:placement.col_start + placement.cols] += tile.matmat(
                input_slice
            )
        return outputs

    @staticmethod
    def count_tiles(rows: int, cols: int, tile_rows: int = 128, tile_cols: int = 128) -> int:
        """Number of tiles needed for a ``rows x cols`` matrix (no instantiation)."""
        if rows <= 0 or cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        row_tiles = -(-rows // tile_rows)
        col_tiles = -(-cols // tile_cols)
        return row_tiles * col_tiles
