"""Synapse device models: linear and non-linear conductance update.

The paper considers devices (FeFET/RRAM-style analog synapses) whose
conductance is changed by applying potentiation or depression pulses.  Ideal
("linear") devices change their conductance by a fixed amount per pulse;
real devices exhibit a *non-linear* state-dependent step: potentiation steps
shrink as the device approaches ``Gmax`` and depression steps shrink as it
approaches ``Gmin``.  The paper restricts its study to devices with
*symmetric* up/down non-linearity (its Fig. 4a) so that the effect of the
non-linearity is isolated from the learning rule.

The standard behavioural model (used by NeuroSim and the device literature)
expresses the conductance after ``p`` potentiation pulses out of ``P`` total:

``G(p) = B * (1 - exp(-p * nu / P)) + Gmin``  with ``B = (Gmax-Gmin) / (1 - exp(-nu))``

where ``nu`` is the non-linearity coefficient.  The depression curve is the
mirror image.  :class:`NonlinearDevice` implements this model and
:class:`NonlinearUpdateRule` converts an ideal weight change requested by the
optimiser into the change the device would actually realise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.xbar.quantization import ConductanceRange


class DeviceModel:
    """Interface for synapse device behavioural models."""

    #: Conductance range of the device.
    range: ConductanceRange

    def realised_update(self, conductance: np.ndarray, ideal_delta: np.ndarray) -> np.ndarray:
        """Return the conductance change the device realises for an ideal request."""
        raise NotImplementedError

    def potentiation_curve(self, num_pulses: int) -> np.ndarray:
        """Conductance trajectory under ``num_pulses`` consecutive potentiation pulses."""
        raise NotImplementedError

    def depression_curve(self, num_pulses: int) -> np.ndarray:
        """Conductance trajectory under ``num_pulses`` consecutive depression pulses."""
        raise NotImplementedError


@dataclass
class LinearDevice(DeviceModel):
    """An ideal device whose conductance changes exactly as requested.

    The only non-ideality it retains is the bounded range: updates that would
    push the conductance outside ``[Gmin, Gmax]`` saturate at the boundary.
    """

    range: ConductanceRange = ConductanceRange()

    def realised_update(self, conductance: np.ndarray, ideal_delta: np.ndarray) -> np.ndarray:
        conductance = np.asarray(conductance, dtype=np.float64)
        target = self.range.clip(conductance + np.asarray(ideal_delta, dtype=np.float64))
        return target - conductance

    def potentiation_curve(self, num_pulses: int) -> np.ndarray:
        return np.linspace(self.range.g_min, self.range.g_max, num_pulses)

    def depression_curve(self, num_pulses: int) -> np.ndarray:
        return np.linspace(self.range.g_max, self.range.g_min, num_pulses)


@dataclass
class NonlinearDevice(DeviceModel):
    """A device with symmetric, state-dependent (non-linear) weight update.

    Parameters
    ----------
    nonlinearity:
        The non-linearity coefficient ``nu``.  ``nu -> 0`` recovers a linear
        device; typical experimental analog synapses fall in the 1-5 range.
    num_pulses:
        Number of programming pulses needed to traverse the full conductance
        range (equivalently, the number of analog states the device supports
        during training).
    range:
        Conductance range of the device.
    """

    nonlinearity: float = 2.0
    num_pulses: int = 64
    range: ConductanceRange = ConductanceRange()

    def __post_init__(self) -> None:
        if self.nonlinearity < 0:
            raise ValueError("nonlinearity must be non-negative")
        if self.num_pulses < 2:
            raise ValueError("num_pulses must be at least 2")

    # ------------------------------------------------------------------ #
    # Closed-form pulse response
    # ------------------------------------------------------------------ #
    def _curve_scale(self) -> float:
        nu = max(self.nonlinearity, 1e-9)
        return self.range.span / (1.0 - np.exp(-nu))

    def potentiation_curve(self, num_pulses: int = None) -> np.ndarray:
        pulses = num_pulses if num_pulses is not None else self.num_pulses
        nu = max(self.nonlinearity, 1e-9)
        p = np.linspace(0.0, 1.0, pulses)
        return self.range.g_min + self._curve_scale() * (1.0 - np.exp(-nu * p))

    def depression_curve(self, num_pulses: int = None) -> np.ndarray:
        pulses = num_pulses if num_pulses is not None else self.num_pulses
        # Symmetric device: depression mirrors potentiation.
        return self.range.g_max + self.range.g_min - self.potentiation_curve(pulses)

    # ------------------------------------------------------------------ #
    # State-dependent step size
    # ------------------------------------------------------------------ #
    def potentiation_step(self, conductance: np.ndarray) -> np.ndarray:
        """Conductance increase realised by one potentiation pulse at ``conductance``.

        Differentiating the pulse response gives a step proportional to the
        remaining headroom: ``dG = (nu / P) * (scale - (G - Gmin))``.
        """
        conductance = self.range.clip(np.asarray(conductance, dtype=np.float64))
        nu = max(self.nonlinearity, 1e-9)
        headroom = self._curve_scale() - (conductance - self.range.g_min)
        return (nu / self.num_pulses) * np.maximum(headroom, 0.0)

    def depression_step(self, conductance: np.ndarray) -> np.ndarray:
        """Conductance decrease realised by one depression pulse at ``conductance``."""
        conductance = self.range.clip(np.asarray(conductance, dtype=np.float64))
        nu = max(self.nonlinearity, 1e-9)
        headroom = self._curve_scale() - (self.range.g_max - conductance)
        return (nu / self.num_pulses) * np.maximum(headroom, 0.0)

    def realised_update(self, conductance: np.ndarray, ideal_delta: np.ndarray) -> np.ndarray:
        """Translate an ideal conductance change into the realised change.

        The optimiser requests ``ideal_delta``.  The device translates that
        request into an (effective, possibly fractional) number of pulses
        assuming a linear device, then realises each pulse with the
        state-dependent step size.  For efficiency the pulse train is applied
        in a single step using the local step size — accurate for the small
        per-minibatch updates seen during SGD — and the result is clipped to
        the device range.
        """
        conductance = np.asarray(conductance, dtype=np.float64)
        ideal_delta = np.asarray(ideal_delta, dtype=np.float64)

        linear_step = self.range.span / self.num_pulses
        pulse_equivalents = ideal_delta / linear_step

        step_up = self.potentiation_step(conductance)
        step_down = self.depression_step(conductance)
        realised = np.where(
            ideal_delta >= 0,
            pulse_equivalents * step_up,
            pulse_equivalents * step_down,
        )
        target = self.range.clip(conductance + realised)
        return target - conductance


class LinearUpdateRule:
    """Optimiser hook that applies the ideal (linear, range-bounded) update."""

    def __init__(self, device: LinearDevice = None):
        self.device = device if device is not None else LinearDevice()

    def apply(self, weights: np.ndarray, ideal_delta: np.ndarray) -> np.ndarray:
        """Return the realised weight change for the requested ideal change."""
        return self.device.realised_update(weights, ideal_delta)


class NonlinearUpdateRule:
    """Optimiser hook that applies the non-linear device update.

    This is the piece that couples SGD to the device physics: the gradient
    step computed by the optimiser is reshaped by the state-dependent step
    size of the synapse device before it is applied to the crossbar matrix.
    """

    def __init__(self, device: NonlinearDevice = None):
        self.device = device if device is not None else NonlinearDevice()

    def apply(self, weights: np.ndarray, ideal_delta: np.ndarray) -> np.ndarray:
        """Return the realised weight change for the requested ideal change."""
        return self.device.realised_update(weights, ideal_delta)
