"""Device-to-device variation model.

Following the paper (Section IV, Fig. 4b), programmed conductances deviate
from their target value by zero-mean Gaussian noise whose standard deviation
is expressed as a percentage of the conductance range.  Variation is applied
*after* training, to the deployed weights, and inference accuracy is then
evaluated without retraining — exactly the protocol of the paper's Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.xbar.quantization import ConductanceRange


@dataclass
class DeviceVariationModel:
    """Zero-mean Gaussian conductance variation.

    Attributes
    ----------
    sigma_fraction:
        Standard deviation of the perturbation, as a fraction of the
        conductance range span (the paper sweeps 0 to 25 %).
    range:
        Conductance range; used both to scale the perturbation and to clip the
        perturbed values back into the physically representable interval.
    clip_to_range:
        Whether to clip perturbed conductances back into ``[Gmin, Gmax]``.
        Real devices cannot leave their range, so this defaults to ``True``.
    """

    sigma_fraction: float = 0.0
    range: ConductanceRange = ConductanceRange()
    clip_to_range: bool = True

    def __post_init__(self) -> None:
        if self.sigma_fraction < 0:
            raise ValueError("sigma_fraction must be non-negative")

    @property
    def sigma_absolute(self) -> float:
        """The perturbation standard deviation in conductance units."""
        return self.sigma_fraction * self.range.span

    def perturb(
        self, conductances: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Return a perturbed copy of ``conductances``."""
        conductances = np.asarray(conductances, dtype=np.float64)
        if self.sigma_fraction == 0.0:
            return conductances.copy()
        rng = rng if rng is not None else np.random.default_rng()
        noisy = conductances + rng.normal(0.0, self.sigma_absolute, size=conductances.shape)
        if self.clip_to_range:
            noisy = self.range.clip(noisy)
        return noisy

    def perturb_stack(
        self,
        conductances: np.ndarray,
        num_samples: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Draw ``num_samples`` independent perturbations in one stacked array.

        Returns an array of shape ``(num_samples,) + conductances.shape``;
        the Monte-Carlo inference engine evaluates all draws of a variation
        sigma point with one batched pass instead of one model run per draw.
        """
        if num_samples < 1:
            raise ValueError("num_samples must be at least 1")
        conductances = np.asarray(conductances, dtype=np.float64)
        if self.sigma_fraction == 0.0:
            return np.broadcast_to(
                conductances, (num_samples,) + conductances.shape
            ).copy()
        rng = rng if rng is not None else np.random.default_rng()
        noisy = conductances[None, ...] + rng.normal(
            0.0, self.sigma_absolute, size=(num_samples,) + conductances.shape
        )
        if self.clip_to_range:
            noisy = self.range.clip(noisy)
        return noisy


def apply_variation(
    conductances: np.ndarray,
    sigma_fraction: float,
    conductance_range: ConductanceRange = ConductanceRange(),
    rng: Optional[np.random.Generator] = None,
    clip_to_range: bool = True,
) -> np.ndarray:
    """Functional convenience wrapper around :class:`DeviceVariationModel`."""
    model = DeviceVariationModel(
        sigma_fraction=sigma_fraction, range=conductance_range, clip_to_range=clip_to_range
    )
    return model.perturb(conductances, rng=rng)
