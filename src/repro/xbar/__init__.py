"""Crossbar-array device models.

This package models the device non-idealities studied in the paper's
evaluation (Section IV):

* **Limited weight precision** — synapse conductances can only take ``2^B``
  discrete states in a range ``[Gmin, Gmax]`` (:mod:`repro.xbar.quantization`).
* **Non-linear weight update** — a potentiation/depression pulse changes the
  conductance by a state-dependent amount; the paper assumes symmetric
  up/down non-linearity (:mod:`repro.xbar.device`).
* **Device variation** — programmed conductances deviate from their targets
  by zero-mean Gaussian noise (:mod:`repro.xbar.variation`).
* **Array organisation** — large matrices are tiled over fixed-size crossbar
  arrays; :mod:`repro.xbar.crossbar` models programming and analog readout of
  a tile, and computes the tile counts used by the hardware cost model.
"""

from repro.xbar.quantization import ConductanceRange, UniformQuantizer
from repro.xbar.device import (
    DeviceModel,
    LinearDevice,
    NonlinearDevice,
    NonlinearUpdateRule,
    LinearUpdateRule,
)
from repro.xbar.variation import DeviceVariationModel, apply_variation
from repro.xbar.crossbar import CrossbarArray, CrossbarTiling

__all__ = [
    "ConductanceRange",
    "UniformQuantizer",
    "DeviceModel",
    "LinearDevice",
    "NonlinearDevice",
    "NonlinearUpdateRule",
    "LinearUpdateRule",
    "DeviceVariationModel",
    "apply_variation",
    "CrossbarArray",
    "CrossbarTiling",
]
