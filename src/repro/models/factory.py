"""Helpers that build either baseline or crossbar-mapped layers.

Centralising the choice here keeps the model definitions identical for every
mapping: the architectures differ only in which layer class carries the
weights, exactly as in the paper's four training configurations (baseline,
DE, BC, ACM).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mapping.mapped_layer import MappedConv2d, MappedLinear
from repro.mapping.periphery import MAPPING_NAMES
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module

#: Accepted values for the ``mapping`` argument of the model factories.
VALID_MAPPINGS = ("baseline",) + MAPPING_NAMES


def _check_mapping(mapping: str) -> str:
    key = mapping.lower()
    if key not in VALID_MAPPINGS:
        raise ValueError(f"unknown mapping {mapping!r}; expected one of {VALID_MAPPINGS}")
    return key


def make_linear(
    in_features: int,
    out_features: int,
    mapping: str = "baseline",
    bias: bool = True,
    quantizer_bits: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Module:
    """Create a dense layer for the requested mapping."""
    key = _check_mapping(mapping)
    if key == "baseline":
        return Linear(in_features, out_features, bias=bias, rng=rng)
    return MappedLinear(
        in_features,
        out_features,
        mapping=key,
        bias=bias,
        quantizer_bits=quantizer_bits,
        rng=rng,
    )


def make_conv(
    in_channels: int,
    out_channels: int,
    kernel_size: int,
    mapping: str = "baseline",
    stride: int = 1,
    padding: int = 0,
    bias: bool = True,
    quantizer_bits: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Module:
    """Create a 2-D convolution layer for the requested mapping."""
    key = _check_mapping(mapping)
    if key == "baseline":
        return Conv2d(
            in_channels, out_channels, kernel_size,
            stride=stride, padding=padding, bias=bias, rng=rng,
        )
    return MappedConv2d(
        in_channels,
        out_channels,
        kernel_size,
        stride=stride,
        padding=padding,
        mapping=key,
        bias=bias,
        quantizer_bits=quantizer_bits,
        rng=rng,
    )
