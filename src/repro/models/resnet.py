"""ResNet-20 network (the paper's second CIFAR-10 model)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.models.factory import make_conv, make_linear
from repro.nn.activations import ReLU
from repro.nn.layers import BatchNorm2d, GlobalAvgPool2d, Identity
from repro.nn.module import Module, Sequential
from repro.tensor import Tensor


class BasicBlock(Module):
    """A two-convolution residual block with an optional projection shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        mapping: str = "baseline",
        quantizer_bits: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.conv1 = make_conv(
            in_channels, out_channels, 3, mapping=mapping, stride=stride,
            padding=1, bias=False, quantizer_bits=quantizer_bits, rng=rng,
        )
        self.bn1 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.conv2 = make_conv(
            out_channels, out_channels, 3, mapping=mapping, stride=1,
            padding=1, bias=False, quantizer_bits=quantizer_bits, rng=rng,
        )
        self.bn2 = BatchNorm2d(out_channels)

        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module = Sequential(
                make_conv(
                    in_channels, out_channels, 1, mapping=mapping, stride=stride,
                    padding=0, bias=False, quantizer_bits=quantizer_bits, rng=rng,
                ),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, inputs: Tensor) -> Tensor:
        residual = self.shortcut(inputs)
        out = self.relu(self.bn1(self.conv1(inputs)))
        out = self.bn2(self.conv2(out))
        return self.relu(out + residual)


class ResNet20(Module):
    """ResNet-20: a stem convolution, three stages of residual blocks, a dense head.

    The canonical ResNet-20 uses three stages of three blocks; the number of
    blocks per stage is configurable so tests can instantiate a shallower
    variant, while the default reproduces the paper's depth.
    """

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 10,
        blocks_per_stage: int = 3,
        widths: Sequence[int] = (8, 16, 32),
        mapping: str = "baseline",
        quantizer_bits: Optional[int] = None,
        image_size: int = 16,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if len(widths) != 3:
            raise ValueError("ResNet20 expects exactly three stage widths")
        if blocks_per_stage < 1:
            raise ValueError("blocks_per_stage must be at least 1")
        rng = rng if rng is not None else np.random.default_rng()
        self.mapping = mapping
        self.in_channels = in_channels
        self.image_size = image_size

        self.stem = Sequential(
            make_conv(
                in_channels, widths[0], 3, mapping=mapping, padding=1, bias=False,
                quantizer_bits=quantizer_bits, rng=rng,
            ),
            BatchNorm2d(widths[0]),
            ReLU(),
        )

        stages = []
        previous = widths[0]
        for stage_index, width in enumerate(widths):
            for block_index in range(blocks_per_stage):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                stages.append(
                    BasicBlock(
                        previous, width, stride=stride, mapping=mapping,
                        quantizer_bits=quantizer_bits, rng=rng,
                    )
                )
                previous = width
        self.stages = Sequential(*stages)

        self.head = Sequential(GlobalAvgPool2d())
        self.fc = make_linear(
            widths[-1], num_classes, mapping=mapping,
            quantizer_bits=quantizer_bits, rng=rng,
        )

    @property
    def example_input_shape(self):
        """Per-sample input shape used for compile-time shape caching.

        The network is fully convolutional up to the global pool, so this is
        the canonical evaluation resolution rather than a hard requirement.
        """
        return (self.in_channels, self.image_size, self.image_size)

    def forward(self, inputs: Tensor) -> Tensor:
        out = self.stem(inputs)
        out = self.stages(out)
        out = self.head(out)
        return self.fc(out)


def make_resnet20(
    mapping: str = "baseline",
    quantizer_bits: Optional[int] = None,
    num_classes: int = 10,
    blocks_per_stage: int = 3,
    widths: Sequence[int] = (8, 16, 32),
    seed: int = 0,
) -> ResNet20:
    """Build the ResNet-20 variant with a reproducible initialisation."""
    rng = np.random.default_rng(seed)
    return ResNet20(
        in_channels=3,
        num_classes=num_classes,
        blocks_per_stage=blocks_per_stage,
        widths=widths,
        mapping=mapping,
        quantizer_bits=quantizer_bits,
        rng=rng,
    )
