"""VGG-9 network (the paper's CIFAR-10 model with 6 conv + 3 FC layers)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.models.factory import make_conv, make_linear
from repro.nn.activations import ReLU
from repro.nn.layers import BatchNorm2d, Flatten, MaxPool2d
from repro.nn.module import Module, Sequential
from repro.tensor import Tensor


class VGG9(Module):
    """A reduced-width VGG-9: three conv blocks of two layers, then three FC layers.

    The layer count (6 convolutional + 3 fully-connected) matches the VGG-9
    configuration the paper trains on CIFAR-10; channel widths are scaled
    down so CPU training on the synthetic task stays tractable.
    """

    def __init__(
        self,
        in_channels: int = 3,
        image_size: int = 16,
        num_classes: int = 10,
        widths: Sequence[int] = (16, 32, 64),
        mapping: str = "baseline",
        quantizer_bits: Optional[int] = None,
        batch_norm: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if len(widths) != 3:
            raise ValueError("VGG9 expects exactly three block widths")
        rng = rng if rng is not None else np.random.default_rng()
        self.mapping = mapping
        self.in_channels = in_channels
        self.image_size = image_size

        def conv(cin, cout):
            return make_conv(
                cin, cout, 3, mapping=mapping, padding=1,
                quantizer_bits=quantizer_bits, rng=rng,
            )

        def dense(fin, fout):
            return make_linear(
                fin, fout, mapping=mapping, quantizer_bits=quantizer_bits, rng=rng
            )

        blocks = []
        previous = in_channels
        for width in widths:
            blocks.append(conv(previous, width))
            if batch_norm:
                blocks.append(BatchNorm2d(width))
            blocks.append(ReLU())
            blocks.append(conv(width, width))
            if batch_norm:
                blocks.append(BatchNorm2d(width))
            blocks.append(ReLU())
            blocks.append(MaxPool2d(2))
            previous = width
        self.features = Sequential(*blocks)

        # Three pooling stages: image_size / 8 spatial resolution remains.
        feature_size = image_size // 8
        flat = widths[-1] * feature_size * feature_size
        self.classifier = Sequential(
            Flatten(),
            dense(flat, 128), ReLU(),
            dense(128, 64), ReLU(),
            dense(64, num_classes),
        )

    @property
    def example_input_shape(self):
        """Per-sample input shape used for compile-time shape caching."""
        return (self.in_channels, self.image_size, self.image_size)

    def forward(self, inputs: Tensor) -> Tensor:
        return self.classifier(self.features(inputs))


def make_vgg9(
    mapping: str = "baseline",
    quantizer_bits: Optional[int] = None,
    num_classes: int = 10,
    image_size: int = 16,
    widths: Sequence[int] = (16, 32, 64),
    seed: int = 0,
) -> VGG9:
    """Build the VGG-9 variant with a reproducible initialisation."""
    rng = np.random.default_rng(seed)
    return VGG9(
        in_channels=3,
        image_size=image_size,
        num_classes=num_classes,
        widths=widths,
        mapping=mapping,
        quantizer_bits=quantizer_bits,
        rng=rng,
    )
