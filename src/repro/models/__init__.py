"""Network factories used by the paper's experiments.

Every factory accepts a ``mapping`` argument:

* ``"baseline"`` — ordinary signed-weight layers (the paper's FP32 baseline),
* ``"acm"`` / ``"de"`` / ``"bc"`` — every weight-bearing layer is replaced by
  its crossbar-mapped counterpart with the chosen periphery matrix.

The architectures follow the paper's choices (a LeNet variant, a VGG-9 with
six convolutional and three fully-connected layers, a ResNet-20 with three
stages of three residual blocks, and a two-layer MLP for the system-level
evaluation), scaled down in width so CPU training on the synthetic tasks is
tractable.
"""

from repro.models.factory import make_linear, make_conv
from repro.models.mlp import MLP, make_mlp
from repro.models.lenet import LeNet, make_lenet
from repro.models.vgg import VGG9, make_vgg9
from repro.models.resnet import ResNet20, make_resnet20, BasicBlock

__all__ = [
    "make_linear",
    "make_conv",
    "MLP",
    "make_mlp",
    "LeNet",
    "make_lenet",
    "VGG9",
    "make_vgg9",
    "ResNet20",
    "make_resnet20",
    "BasicBlock",
]
