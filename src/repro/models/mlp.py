"""Multi-layer perceptron factory.

The paper uses a two-layer MLP for its system-level evaluation (Table I); the
factory also serves as the simplest end-to-end check of the mapped layers.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.models.factory import make_linear
from repro.nn.activations import ReLU
from repro.nn.layers import Flatten
from repro.nn.module import Module, Sequential
from repro.tensor import Tensor


class MLP(Module):
    """A fully-connected classifier with configurable hidden widths."""

    def __init__(
        self,
        input_size: int,
        hidden_sizes: Sequence[int],
        num_classes: int,
        mapping: str = "baseline",
        quantizer_bits: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if input_size <= 0 or num_classes <= 0:
            raise ValueError("input_size and num_classes must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.mapping = mapping

        layers = [Flatten()]
        previous = input_size
        for width in hidden_sizes:
            layers.append(
                make_linear(previous, width, mapping=mapping,
                            quantizer_bits=quantizer_bits, rng=rng)
            )
            layers.append(ReLU())
            previous = width
        layers.append(
            make_linear(previous, num_classes, mapping=mapping,
                        quantizer_bits=quantizer_bits, rng=rng)
        )
        self.network = Sequential(*layers)

    @property
    def example_input_shape(self):
        """Per-sample input shape used for compile-time shape caching."""
        return (self.input_size,)

    def forward(self, inputs: Tensor) -> Tensor:
        return self.network(inputs)


def make_mlp(
    input_size: int = 256,
    hidden_sizes: Sequence[int] = (64,),
    num_classes: int = 10,
    mapping: str = "baseline",
    quantizer_bits: Optional[int] = None,
    seed: int = 0,
) -> MLP:
    """Build the two-layer MLP used for the system-level evaluation.

    Defaults give one hidden layer of 64 units on 16x16 inputs, i.e. the
    "two-layered MLP" of the paper's Table I scaled to the synthetic task.
    """
    rng = np.random.default_rng(seed)
    return MLP(
        input_size=input_size,
        hidden_sizes=hidden_sizes,
        num_classes=num_classes,
        mapping=mapping,
        quantizer_bits=quantizer_bits,
        rng=rng,
    )
