"""LeNet-style convolutional network (the paper's MNIST model)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.factory import make_conv, make_linear
from repro.nn.activations import ReLU
from repro.nn.layers import Flatten, MaxPool2d
from repro.nn.module import Module, Sequential
from repro.tensor import Tensor


class LeNet(Module):
    """A LeNet variant: two conv+pool stages followed by two dense layers.

    Sized for the synthetic 16x16 single-channel digits task; widths follow
    the classic LeNet proportions (6 and 16 feature maps).
    """

    def __init__(
        self,
        in_channels: int = 1,
        image_size: int = 16,
        num_classes: int = 10,
        mapping: str = "baseline",
        quantizer_bits: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.mapping = mapping
        self.in_channels = in_channels
        self.image_size = image_size

        def conv(cin, cout, k, padding):
            return make_conv(
                cin, cout, k, mapping=mapping, padding=padding,
                quantizer_bits=quantizer_bits, rng=rng,
            )

        def dense(fin, fout):
            return make_linear(
                fin, fout, mapping=mapping, quantizer_bits=quantizer_bits, rng=rng
            )

        # Two 3x3 conv + pool stages: 16x16 -> 8x8 -> 4x4 spatial.
        feature_size = image_size // 4
        self.features = Sequential(
            conv(in_channels, 6, 3, padding=1), ReLU(), MaxPool2d(2),
            conv(6, 16, 3, padding=1), ReLU(), MaxPool2d(2),
        )
        self.classifier = Sequential(
            Flatten(),
            dense(16 * feature_size * feature_size, 64), ReLU(),
            dense(64, num_classes),
        )

    @property
    def example_input_shape(self):
        """Per-sample input shape used for compile-time shape caching."""
        return (self.in_channels, self.image_size, self.image_size)

    def forward(self, inputs: Tensor) -> Tensor:
        return self.classifier(self.features(inputs))


def make_lenet(
    mapping: str = "baseline",
    quantizer_bits: Optional[int] = None,
    num_classes: int = 10,
    image_size: int = 16,
    seed: int = 0,
) -> LeNet:
    """Build the LeNet variant with a reproducible initialisation."""
    rng = np.random.default_rng(seed)
    return LeNet(
        in_channels=1,
        image_size=image_size,
        num_classes=num_classes,
        mapping=mapping,
        quantizer_bits=quantizer_bits,
        rng=rng,
    )
