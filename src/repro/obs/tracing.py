"""Per-request ids threaded across every transport of the serving stack.

A request id is a short opaque token that travels with one logical
request through every hop — client, HTTP edge, scheduler lane, cluster
pipe/shm protocol, worker — so a single grep over structured logs
reconstructs its path.  Clients may mint their own (any string matching
the grammar below); anything that receives a request without one assigns
a fresh server-side id via :func:`ensure_request_id`.

Over HTTP the id rides in the ``X-Request-Id`` header (echoed on every
response); over the in-process and cluster transports it rides in the
``request_id`` field of the typed request/result dataclasses.
"""

from __future__ import annotations

import re
import uuid
from typing import Optional

#: HTTP header carrying the request id (request and response).
REQUEST_ID_HEADER = "X-Request-Id"

# Conservative grammar: printable, header-safe, bounded.  First character
# alphanumeric so ids never look like header-continuation whitespace.
_REQUEST_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._:\-]{0,127}$")


def new_request_id() -> str:
    """Mint a fresh server-assigned request id (32 hex chars)."""
    return uuid.uuid4().hex


def valid_request_id(value: object) -> bool:
    """True when ``value`` is a string matching the request-id grammar."""
    return isinstance(value, str) and _REQUEST_ID.match(value) is not None


def ensure_request_id(value: Optional[str]) -> str:
    """Return ``value`` when it is a valid id, else mint a fresh one.

    Invalid ids are replaced rather than rejected: tracing is telemetry,
    not validation, and must never fail a request.
    """
    if value is not None and valid_request_id(value):
        return value
    return new_request_id()
