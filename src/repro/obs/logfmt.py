"""Structured (logfmt-style) logging on top of stdlib ``logging``.

Two pieces:

* :func:`log_event` — emit one event as ``event=predict request_id=...
  model=... latency_ms=...`` through an ordinary :class:`logging.Logger`,
  so handlers, levels, and propagation all behave as usual;
* :class:`LogfmtFormatter` — a formatter that prefixes every record with
  ``ts=<iso8601> level=<level> logger=<name>``, so a worker's log file is
  a machine-greppable line protocol end to end.

Values are rendered with :func:`logfmt`: bare when they contain no
whitespace or quotes, double-quoted with ``\\`` escaping otherwise;
``None`` renders as empty, booleans lowercase, floats compactly.
"""

from __future__ import annotations

import datetime
import logging
from typing import Mapping, Optional

_NEEDS_QUOTING = (" ", "\t", "\n", '"', "=")


def _render_value(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        text = f"{value:.6g}"
    else:
        text = str(value)
    if text == "" or any(ch in text for ch in _NEEDS_QUOTING):
        escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'
    return text


def logfmt(fields: Mapping[str, object]) -> str:
    """Render a mapping as one logfmt line fragment (``k=v k2=v2 ...``)."""
    return " ".join(f"{key}={_render_value(value)}" for key, value in fields.items())


def log_event(
    logger: logging.Logger,
    event: str,
    level: int = logging.INFO,
    **fields: object,
) -> None:
    """Log one structured event; the ``event=`` pair always leads."""
    if not logger.isEnabledFor(level):
        return
    parts = {"event": event}
    parts.update(fields)
    logger.log(level, "%s", logfmt(parts))


class LogfmtFormatter(logging.Formatter):
    """Prefix every record with ``ts= level= logger=`` logfmt pairs."""

    def format(self, record: logging.LogRecord) -> str:
        ts = datetime.datetime.fromtimestamp(
            record.created, tz=datetime.timezone.utc
        ).isoformat(timespec="milliseconds")
        prefix = logfmt(
            {"ts": ts, "level": record.levelname.lower(), "logger": record.name}
        )
        message = record.getMessage()
        if record.exc_info and record.exc_info[0] is not None:
            exc: Optional[str] = self.formatException(record.exc_info)
            if exc:
                message = f"{message} exc={_render_value(exc)}"
        return f"{prefix} {message}"
