"""``repro.obs`` — the stdlib-only observability layer of the serving stack.

Three small, dependency-free modules that the serve and api layers thread
through every process boundary:

* :mod:`repro.obs.metrics` — a lock-safe registry of counters, gauges, and
  fixed-bucket histograms with Prometheus text exposition
  (:func:`render`).  Metric families are plain frozen dataclasses, so a
  cluster worker can :meth:`MetricsRegistry.collect` its registry and ship
  the samples across the pickle boundary for the parent to merge
  (:func:`relabel` tags them with the worker index) into one
  ``GET /metrics`` page.
* :mod:`repro.obs.tracing` — per-request ids: client-generated or
  server-assigned, carried in the ``X-Request-Id`` header over HTTP and in
  the ``request_id`` field of the typed request/response dataclasses over
  every other transport, so one grep reconstructs a request's path across
  process hops.
* :mod:`repro.obs.logfmt` — structured (logfmt-style) log records via
  stdlib ``logging``: :func:`log_event` renders ``key=value`` pairs, and
  :class:`LogfmtFormatter` prefixes records with ``ts=/level=/logger=`` so
  worker log files are machine-greppable line protocols.

The package is deliberately import-pure (stdlib only, not even NumPy), so
every layer — including the strictly typed ``repro.api`` — may depend on
it without cycles, and it passes ``mypy --strict`` in full.
"""

from repro.obs.logfmt import LogfmtFormatter, log_event, logfmt
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Sample,
    relabel,
    render,
)
from repro.obs.tracing import (
    REQUEST_ID_HEADER,
    ensure_request_id,
    new_request_id,
    valid_request_id,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "LogfmtFormatter",
    "MetricFamily",
    "MetricsRegistry",
    "REQUEST_ID_HEADER",
    "Sample",
    "ensure_request_id",
    "log_event",
    "logfmt",
    "new_request_id",
    "relabel",
    "render",
    "valid_request_id",
]
