"""Lock-safe metric instruments with Prometheus text exposition.

A :class:`MetricsRegistry` owns a namespace of instruments — monotonic
:class:`Counter`\\ s, :class:`Gauge`\\ s, and fixed-bucket
:class:`Histogram`\\ s — each optionally labelled.  Instruments are
get-or-create (re-requesting the same name returns the existing one, a
conflicting redefinition raises), so components can declare their
instruments independently against one shared registry.

Exposition is two-phase so it survives process boundaries:

* :meth:`MetricsRegistry.collect` snapshots every instrument into plain
  frozen :class:`MetricFamily` dataclasses (picklable — a cluster worker
  ships its families over the pipe for the parent to merge);
* :func:`render` turns any iterable of families into the Prometheus text
  format (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, label escaping,
  histogram ``_bucket``/``_sum``/``_count`` series with a terminal
  ``+Inf`` bucket.

Live values that already have an owner (a queue depth, an in-flight
count) are exported via *callbacks* registered with
:meth:`MetricsRegistry.register_callback`: the callable is invoked at
collect time and returns ``(labels, value)`` pairs, so the registry never
duplicates state — ``stats_summary()`` and ``/metrics`` read the same
source of truth.

Everything is stdlib-only and thread-safe (one small lock per instrument,
one registry lock for the namespace; callbacks run outside both).
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Sequence,
    Tuple,
    Type,
    TypeVar,
    cast,
)

#: Latency histogram buckets (seconds): sub-millisecond to 10 s, roughly
#: logarithmic — the range micro-batched NumPy inference actually spans.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: The types :func:`render` knows how to head a family with.
_FAMILY_TYPES = ("counter", "gauge", "histogram", "untyped")

LabelPairs = Tuple[Tuple[str, str], ...]
#: A callback yields ``(labels, value)`` pairs at collect time.
CallbackFn = Callable[[], Sequence[Tuple[Mapping[str, str], float]]]


@dataclass(frozen=True)
class Sample:
    """One exposition line: sample name, label pairs, value."""

    name: str
    labels: LabelPairs
    value: float


@dataclass(frozen=True)
class MetricFamily:
    """One metric and its samples — plain data, picklable across processes."""

    name: str
    type: str
    help: str
    samples: Tuple[Sample, ...]


def _check_metric_name(name: str) -> str:
    if not _METRIC_NAME.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _check_label_names(labels: Sequence[str]) -> Tuple[str, ...]:
    for label in labels:
        if not _LABEL_NAME.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name {label!r}")
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate label names in {labels!r}")
    return tuple(labels)


def format_value(value: float) -> str:
    """Render one sample value the way Prometheus expects.

    Integral values print without a fraction (``17``, not ``17.0``);
    infinities print as ``+Inf`` / ``-Inf``; NaN as ``NaN``.
    """
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: LabelPairs) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


class _Instrument:
    """Shared base: a named, optionally labelled family of child series."""

    metric_type = "untyped"

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...]) -> None:  # noqa: A002
        self.name = _check_metric_name(name)
        self.help = help
        self.label_names = _check_label_names(label_names)
        self._lock = threading.Lock()

    def _label_values(self, labels: Mapping[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _pairs(self, values: Tuple[str, ...]) -> LabelPairs:
        return tuple(zip(self.label_names, values))

    def collect(self) -> MetricFamily:
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing value (optionally per label set)."""

    metric_type = "counter"

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...]) -> None:  # noqa: A002
        super().__init__(name, help, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._label_values(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._label_values(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def collect(self) -> MetricFamily:
        with self._lock:
            items = sorted(self._values.items())
        samples = tuple(
            Sample(self.name, self._pairs(values), value)
            for values, value in items
        )
        if not self.label_names and not samples:
            samples = (Sample(self.name, (), 0.0),)
        return MetricFamily(self.name, self.metric_type, self.help, samples)


class Gauge(_Instrument):
    """A value that can go up and down (optionally per label set)."""

    metric_type = "gauge"

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...]) -> None:  # noqa: A002
        super().__init__(name, help, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._label_values(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._label_values(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = self._label_values(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def collect(self) -> MetricFamily:
        with self._lock:
            items = sorted(self._values.items())
        samples = tuple(
            Sample(self.name, self._pairs(values), value)
            for values, value in items
        )
        if not self.label_names and not samples:
            samples = (Sample(self.name, (), 0.0),)
        return MetricFamily(self.name, self.metric_type, self.help, samples)


class _HistogramChild:
    __slots__ = ("counts", "total", "count")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * num_buckets
        self.total = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket distribution: cumulative ``le`` buckets + sum + count."""

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002 - prometheus vocabulary
        label_names: Tuple[str, ...],
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        if "le" in self.label_names:
            raise ValueError("'le' is reserved for histogram buckets")
        if not buckets:
            raise ValueError("a histogram needs at least one finite bucket")
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"buckets must be strictly increasing: {buckets!r}")
        if math.isinf(buckets[-1]):
            buckets = buckets[:-1]  # +Inf is implicit, always present
        self.buckets = tuple(float(bound) for bound in buckets)
        self._children: Dict[Tuple[str, ...], _HistogramChild] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._label_values(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistogramChild(len(self.buckets))
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    child.counts[index] += 1
                    break
            child.total += value
            child.count += 1

    def count(self, **labels: str) -> int:
        key = self._label_values(labels)
        with self._lock:
            child = self._children.get(key)
            return child.count if child is not None else 0

    def collect(self) -> MetricFamily:
        with self._lock:
            snapshot = [
                (values, list(child.counts), child.total, child.count)
                for values, child in sorted(self._children.items())
            ]
        samples: List[Sample] = []
        for values, counts, total, count in snapshot:
            pairs = self._pairs(values)
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                samples.append(Sample(
                    f"{self.name}_bucket",
                    pairs + (("le", format_value(bound)),),
                    float(cumulative),
                ))
            samples.append(Sample(
                f"{self.name}_bucket", pairs + (("le", "+Inf"),), float(count)
            ))
            samples.append(Sample(f"{self.name}_sum", pairs, total))
            samples.append(Sample(f"{self.name}_count", pairs, float(count)))
        return MetricFamily(self.name, self.metric_type, self.help, tuple(samples))


@dataclass(frozen=True)
class _Callback:
    name: str
    type: str
    help: str
    fn: CallbackFn


_I = TypeVar("_I", bound=_Instrument)


class MetricsRegistry:
    """One namespace of instruments plus collect-time callbacks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}
        self._callbacks: Dict[str, _Callback] = {}

    # ------------------------------------------------------------------ #
    # Declaration (get-or-create; conflicting redefinitions raise)
    # ------------------------------------------------------------------ #
    def _get_or_create(
        self,
        cls: Type[_I],
        name: str,
        labels: Sequence[str],
        factory: Callable[[], _I],
    ) -> _I:
        with self._lock:
            if name in self._callbacks:
                raise ValueError(f"{name!r} is already a callback metric")
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.label_names}"
                    )
                return cast(_I, existing)
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()  # noqa: A002
    ) -> Counter:
        return self._get_or_create(
            Counter, name, labels, lambda: Counter(name, help, tuple(labels))
        )

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()  # noqa: A002
    ) -> Gauge:
        return self._get_or_create(
            Gauge, name, labels, lambda: Gauge(name, help, tuple(labels))
        )

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labels: Sequence[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram,
            name,
            labels,
            lambda: Histogram(name, help, tuple(labels), buckets=buckets),
        )

    def register_callback(
        self, name: str, type: str, help: str, fn: CallbackFn  # noqa: A002
    ) -> None:
        """Export live state owned elsewhere: ``fn`` runs at collect time
        and returns ``(labels, value)`` pairs (a failing callback collects
        as an empty family rather than breaking the scrape)."""
        _check_metric_name(name)
        if type not in _FAMILY_TYPES:
            raise ValueError(f"unknown metric type {type!r}")
        with self._lock:
            if name in self._instruments or name in self._callbacks:
                raise ValueError(f"metric {name!r} is already registered")
            self._callbacks[name] = _Callback(name, type, help, fn)

    # ------------------------------------------------------------------ #
    # Collection
    # ------------------------------------------------------------------ #
    def collect(self) -> List[MetricFamily]:
        """Snapshot every instrument and callback into plain families."""
        with self._lock:
            instruments = list(self._instruments.values())
            callbacks = list(self._callbacks.values())
        families = [instrument.collect() for instrument in instruments]
        for callback in callbacks:
            samples: Tuple[Sample, ...]
            try:
                samples = tuple(
                    Sample(callback.name,
                           tuple((str(k), str(v)) for k, v in labels.items()),
                           float(value))
                    for labels, value in callback.fn()
                )
            except Exception:  # noqa: BLE001 - a scrape must never fail
                samples = ()
            families.append(MetricFamily(
                callback.name, callback.type, callback.help, samples
            ))
        return families

    def expose(self) -> str:
        """This registry's instruments as Prometheus text."""
        return render(self.collect())


def relabel(
    families: Iterable[MetricFamily], label: str, value: str
) -> List[MetricFamily]:
    """Add one label pair to every sample (e.g. tag a worker's families).

    An existing pair with the same label name is replaced, so re-tagging
    is idempotent.
    """
    if not _LABEL_NAME.match(label):
        raise ValueError(f"invalid label name {label!r}")
    out: List[MetricFamily] = []
    for family in families:
        samples = tuple(
            Sample(
                sample.name,
                tuple(pair for pair in sample.labels if pair[0] != label)
                + ((label, str(value)),),
                sample.value,
            )
            for sample in family.samples
        )
        out.append(MetricFamily(family.name, family.type, family.help, samples))
    return out


def render(families: Iterable[MetricFamily]) -> str:
    """Prometheus text format (version 0.0.4) for an iterable of families.

    Families with the same name (e.g. one per cluster worker) merge under
    one ``# HELP``/``# TYPE`` header; the first family's metadata wins.
    Histogram bucket samples keep their family-relative order, so bucket
    cumulative counts stay monotonic per series.
    """
    merged: Dict[str, MetricFamily] = {}
    order: List[str] = []
    for family in families:
        _check_metric_name(family.name)
        existing = merged.get(family.name)
        if existing is None:
            merged[family.name] = family
            order.append(family.name)
        else:
            merged[family.name] = MetricFamily(
                existing.name, existing.type, existing.help,
                existing.samples + family.samples,
            )
    lines: List[str] = []
    for name in order:
        family = merged[name]
        if family.help:
            lines.append(f"# HELP {name} {_escape_help(family.help)}")
        family_type = family.type if family.type in _FAMILY_TYPES else "untyped"
        lines.append(f"# TYPE {name} {family_type}")
        for sample in family.samples:
            lines.append(
                f"{sample.name}{_render_labels(sample.labels)} "
                f"{format_value(sample.value)}"
            )
    return "\n".join(lines) + "\n" if lines else ""
