"""The paper's core contribution: periphery matrices and mapped layers.

A signed weight matrix ``W`` (shape ``NO x NI``) is factored as
``W = S @ M`` where ``M >= 0`` (shape ``ND x NI``) is stored on the crossbar
and ``S`` (shape ``NO x ND``) is a fixed signed "periphery matrix" realised
with adders/subtractors at the crossbar periphery.  Three periphery matrices
are studied:

* **DE** (double element): ``ND = 2*NO``, each output is the difference of a
  dedicated column pair.
* **BC** (bias column): ``ND = NO + 1``, every output subtracts a shared
  reference column whose devices sit at mid-range conductance.
* **ACM** (adjacent connection matrix, the paper's proposal):
  ``ND = NO + 1``, each output is the difference of two *adjacent* crossbar
  columns, so every column (except the ends) is shared by two outputs.

This package provides the periphery-matrix constructors, verification of the
sufficient conditions (Eq. 3 of the paper), the decomposition algorithm that
produces a non-negative ``M`` for any signed ``W``, mapped dense/conv layers
usable inside any network, and the quantified regularisation analysis of
Section III-E.
"""

from repro.mapping.periphery import (
    PeripheryMatrix,
    acm_periphery,
    bc_periphery,
    de_periphery,
    random_valid_periphery,
    periphery_for,
    MAPPING_NAMES,
)
from repro.mapping.decompose import (
    decompose,
    reconstruct,
    check_sufficient_conditions,
    SufficientConditionReport,
    minimum_nonnegative_factor,
)
from repro.mapping.mapped_layer import MappedLinear, MappedConv2d
from repro.mapping.regularization import (
    weight_sum_constraint,
    count_representable_sums,
    effective_weight_range,
)

__all__ = [
    "PeripheryMatrix",
    "acm_periphery",
    "bc_periphery",
    "de_periphery",
    "random_valid_periphery",
    "periphery_for",
    "MAPPING_NAMES",
    "decompose",
    "reconstruct",
    "check_sufficient_conditions",
    "SufficientConditionReport",
    "minimum_nonnegative_factor",
    "MappedLinear",
    "MappedConv2d",
    "weight_sum_constraint",
    "count_representable_sums",
    "effective_weight_range",
]
