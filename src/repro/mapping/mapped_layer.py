"""Crossbar-mapped dense and convolutional layers.

A mapped layer stores the non-negative crossbar matrix ``M`` (one row per
physical crossbar column) as its trainable parameter and applies the fixed
periphery matrix ``S`` of the chosen mapping, so that the layer's effective
signed weight is ``W = S @ M``.  Training therefore happens directly in the
mapped parameterisation, exactly as in the paper: ``M`` is kept non-negative
(projected SGD), optionally quantised to the device precision with a
straight-through estimator, and optionally updated through a non-linear
device update rule (see :class:`repro.optim.SGD`).

The BC mapping's reference column is a physical column whose devices are
*fixed* at the mid-range conductance; it is stored as a non-trainable buffer
and concatenated to the trainable part in the forward pass.  Being a real
column of devices, it is still subject to device variation at inference time.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.mapping.periphery import PeripheryMatrix, periphery_for
from repro.nn.module import Module, Parameter
from repro.nn import init
from repro.tensor import Tensor, functional, is_grad_enabled
from repro.xbar.quantization import ConductanceRange, UniformQuantizer
from repro.xbar.variation import DeviceVariationModel


def _default_weight_scale(fan_in: int) -> float:
    """Conductance full-scale used when the caller does not specify one.

    The scale is chosen so that the BC mapping (whose representable weight
    range is half the conductance span) covers exactly the Kaiming-uniform
    initialisation interval, while DE and ACM get twice that range — the same
    relative relationship the paper describes for a device range [0, Gmax].
    """
    return 2.0 * math.sqrt(6.0 / fan_in)


class _MappedBase(Module):
    """Shared machinery for the mapped dense and convolutional layers."""

    def __init__(
        self,
        num_outputs: int,
        fan_in: int,
        mapping: str,
        weight_scale: Optional[float],
        quantizer_bits: Optional[int],
        rng: Optional[np.random.Generator],
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.mapping = mapping.lower()
        self.num_outputs = num_outputs
        self.fan_in = fan_in
        scale = weight_scale if weight_scale is not None else _default_weight_scale(fan_in)
        if scale <= 0:
            raise ValueError("weight_scale must be positive")
        self.conductance_range = ConductanceRange(0.0, scale)
        self.periphery: PeripheryMatrix = periphery_for(self.mapping, num_outputs)
        self.quantizer: Optional[UniformQuantizer] = None
        if quantizer_bits is not None:
            self.quantizer = UniformQuantizer(quantizer_bits, self.conductance_range)

        signed_init = init.kaiming_uniform((num_outputs, fan_in), rng)
        crossbar_init = self._initial_crossbar_matrix(signed_init, rng)

        if self.mapping == "bc":
            # The trainable part excludes the fixed reference column.  The
            # reference devices are programmed to the mid-range conductance,
            # or to the nearest representable device state when the devices
            # are quantised.
            reference_value = self.conductance_range.midpoint
            if self.quantizer is not None:
                reference_value = float(
                    self.quantizer.quantize_array(np.array([reference_value]))[0]
                )
            self.crossbar = Parameter(
                crossbar_init[:num_outputs], constraint="non_negative", name="crossbar"
            )
            self.register_buffer("reference_column", np.full((1, fan_in), reference_value))
        else:
            self.crossbar = Parameter(
                crossbar_init, constraint="non_negative", name="crossbar"
            )

        #: Variation model applied at inference time (None = ideal devices).
        self.variation: Optional[DeviceVariationModel] = None
        # Spawn the variation stream off the initialisation generator: a
        # seeded model gets reproducible variation draws by default, and
        # spawning does not advance the parent stream, so initial weights are
        # unchanged relative to not having a variation stream at all.
        self._variation_rng = self._spawn_variation_rng(rng)
        self._effective_weight_cache: Optional[Tensor] = None

    @staticmethod
    def _spawn_variation_rng(rng: np.random.Generator) -> np.random.Generator:
        try:
            return rng.spawn(1)[0]
        except (AttributeError, TypeError, ValueError):  # pragma: no cover
            # Generators wrapping bit generators without a seed sequence
            # cannot spawn; fall back to an independent unseeded stream.
            return np.random.default_rng()

    # ------------------------------------------------------------------ #
    # Initialisation
    # ------------------------------------------------------------------ #
    def _initial_crossbar_matrix(
        self, signed_weight: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Map a signed initial weight matrix into the crossbar parameterisation.

        DE and BC admit an exact, clip-free decomposition of the Kaiming
        initialisation, so that is used directly.  For ACM (and any general
        chained periphery matrix) the exact decomposition of a random signed
        matrix is a random walk along the column chain whose range exceeds the
        conductance window for wide layers; clipping it would leave a large
        fraction of devices pinned at the range boundaries and destabilise
        quantised training.  ACM layers are therefore initialised directly in
        the mapped parameterisation: conductances are drawn uniformly from the
        central half of the device range, which yields zero-mean,
        triangular-distributed effective weights with full headroom on every
        device.
        """
        g_max = self.conductance_range.g_max
        midpoint = self.conductance_range.midpoint
        if self.mapping == "bc":
            # The reference devices sit at mid-range conductance; with a
            # quantiser present they are programmed to the nearest device
            # state, and the free columns are initialised relative to that
            # *realised* reference so initial weights remain zero-centred.
            reference_value = midpoint
            if self.quantizer is not None:
                reference_value = float(
                    self.quantizer.quantize_array(np.array([midpoint]))[0]
                )
            free = np.clip(signed_weight + reference_value, 0.0, g_max)
            reference = np.full((1, signed_weight.shape[1]), midpoint)
            return np.concatenate([free, reference], axis=0)
        if self.mapping == "de":
            positive = np.clip(signed_weight, 0.0, g_max)
            negative = np.clip(-signed_weight, 0.0, g_max)
            stacked = np.empty((2 * signed_weight.shape[0], signed_weight.shape[1]))
            stacked[0::2] = positive
            stacked[1::2] = negative
            return stacked
        # ACM and other chained peripheries: direct device-range-aware init.
        num_columns = self.periphery.num_columns
        return rng.uniform(
            0.25 * g_max, 0.75 * g_max, size=(num_columns, signed_weight.shape[1])
        )

    # ------------------------------------------------------------------ #
    # Effective weights
    # ------------------------------------------------------------------ #
    def _crossbar_tensor(self) -> Tensor:
        """Return the full crossbar matrix as a tensor (trainable + fixed rows)."""
        if self.mapping == "bc":
            reference = Tensor(self.reference_column)
            full = Tensor.concatenate([self.crossbar, reference], axis=0)
        else:
            full = self.crossbar
        if self.variation is not None and not self.training:
            perturbed = self.variation.perturb(full.data, rng=self._variation_rng)
            full = Tensor(perturbed)
        if self.quantizer is not None:
            full = self.quantizer.quantize_ste(full)
        else:
            full = full.clip(self.conductance_range.g_min, self.conductance_range.g_max)
        return full

    def _cache_usable(self) -> bool:
        """Whether the effective weight is a constant that may be memoised.

        Only in eval mode, with no variation active and gradients globally
        disabled, is the effective weight a pure function of the stored
        conductances; anything else (training, STE gradients, per-forward
        variation draws) must rebuild it.
        """
        return not self.training and self.variation is None and not is_grad_enabled()

    def _invalidate_cache(self) -> None:
        self._effective_weight_cache = None

    def effective_weight_tensor(self) -> Tensor:
        """The signed weight ``W = S @ M`` as a differentiable tensor.

        In eval mode with no variation active (and gradients disabled) the
        realized weight is cached, so repeated inference batches stop paying
        the periphery matmul and re-quantisation; the cache is dropped on
        mode switches, :meth:`set_variation`, :meth:`clip_conductances` and
        :meth:`~repro.nn.module.Module.load_state_dict`.
        """
        if self._cache_usable():
            if self._effective_weight_cache is None:
                periphery = Tensor(self.periphery.matrix)
                self._effective_weight_cache = periphery.matmul(self._crossbar_tensor())
            return self._effective_weight_cache
        periphery = Tensor(self.periphery.matrix)
        return periphery.matmul(self._crossbar_tensor())

    def effective_weight(self) -> np.ndarray:
        """The signed weight matrix currently realised by the layer (NumPy copy)."""
        return self.effective_weight_tensor().data.copy()

    def conductances(self) -> np.ndarray:
        """The non-negative crossbar matrix including any fixed reference rows."""
        if self.mapping == "bc":
            return np.concatenate([self.crossbar.data, self.reference_column], axis=0).copy()
        return self.crossbar.data.copy()

    @property
    def num_crossbar_columns(self) -> int:
        """Number of physical crossbar columns used by this layer (``ND``)."""
        return self.periphery.num_columns

    @property
    def num_devices(self) -> int:
        """Total number of synapse devices used by this layer."""
        return self.num_crossbar_columns * self.fan_in

    # ------------------------------------------------------------------ #
    # Device variation control (used by evaluation under variation)
    # ------------------------------------------------------------------ #
    def set_variation(
        self,
        sigma_fraction: float,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Enable (or disable with 0.0) device variation for inference."""
        self._invalidate_cache()
        if sigma_fraction == 0.0:
            self.variation = None
            return
        self.variation = DeviceVariationModel(
            sigma_fraction=sigma_fraction, range=self.conductance_range
        )
        if rng is not None:
            self._variation_rng = rng

    def clip_conductances(self) -> None:
        """Project the trainable crossbar matrix into the device range in place."""
        self._invalidate_cache()
        np.clip(
            self.crossbar.data,
            self.conductance_range.g_min,
            self.conductance_range.g_max,
            out=self.crossbar.data,
        )


class MappedLinear(_MappedBase):
    """Fully-connected layer realised on a non-negative crossbar array.

    Parameters
    ----------
    in_features, out_features:
        Logical layer dimensions (signed weight is ``out_features x in_features``).
    mapping:
        ``"acm"``, ``"de"`` or ``"bc"``.
    bias:
        Whether to add a digital (periphery) bias; the bias is not stored on
        the crossbar and is unaffected by device non-idealities.
    weight_scale:
        Conductance full scale ``Gmax``; defaults to twice the Kaiming bound.
    quantizer_bits:
        Device precision in bits; ``None`` trains with full-precision
        conductances (the paper's FP32 case).
    rng:
        Random generator for initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        mapping: str = "acm",
        bias: bool = True,
        weight_scale: Optional[float] = None,
        quantizer_bits: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        super().__init__(
            num_outputs=out_features,
            fan_in=in_features,
            mapping=mapping,
            weight_scale=weight_scale,
            quantizer_bits=quantizer_bits,
            rng=rng,
        )
        self.in_features = in_features
        self.out_features = out_features
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            generator = rng if rng is not None else np.random.default_rng()
            self.bias: Optional[Parameter] = Parameter(
                init.uniform((out_features,), -bound, bound, generator), name="bias"
            )
        else:
            self.bias = None

    def forward(self, inputs: Tensor) -> Tensor:
        weight = self.effective_weight_tensor()
        output = inputs.matmul(weight.T)
        if self.bias is not None:
            output = output + self.bias
        return output


class MappedConv2d(_MappedBase):
    """2-D convolution realised on a non-negative crossbar array.

    The flattened kernel matrix (``out_channels x in_channels*kh*kw``) is the
    signed weight that gets factored through the periphery matrix; the
    convolution itself is lowered to a matrix product against the crossbar
    (im2col), which matches how crossbar accelerators execute convolutions.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        mapping: str = "acm",
        bias: bool = True,
        weight_scale: Optional[float] = None,
        quantizer_bits: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        fan_in = in_channels * kernel_size * kernel_size
        super().__init__(
            num_outputs=out_channels,
            fan_in=fan_in,
            mapping=mapping,
            weight_scale=weight_scale,
            quantizer_bits=quantizer_bits,
            rng=rng,
        )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        if bias:
            bound = 1.0 / math.sqrt(fan_in)
            generator = rng if rng is not None else np.random.default_rng()
            self.bias: Optional[Parameter] = Parameter(
                init.uniform((out_channels,), -bound, bound, generator), name="bias"
            )
        else:
            self.bias = None

    def forward(self, inputs: Tensor) -> Tensor:
        weight = self.effective_weight_tensor()
        return functional.conv2d_from_matrix(
            inputs,
            weight,
            kernel_shape=(self.in_channels, self.kernel_size, self.kernel_size),
            bias=self.bias,
            stride=self.stride,
            padding=self.padding,
        )
