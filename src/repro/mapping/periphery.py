"""Periphery-matrix constructors for the ACM, DE and BC mappings.

Every mapping is described by a :class:`PeripheryMatrix`: a fixed matrix ``S``
with entries in ``{-1, 0, +1}`` that combines the outputs of the crossbar
columns into the signed MVM outputs.  ``S`` has shape ``NO x ND`` where ``NO``
is the number of logical (signed) outputs and ``ND >= NO + 1`` is the number
of physical crossbar columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Canonical names of the mappings studied in the paper.
MAPPING_NAMES = ("acm", "de", "bc")


@dataclass(frozen=True)
class PeripheryMatrix:
    """A fixed signed combination matrix applied at the crossbar periphery.

    Attributes
    ----------
    matrix:
        The ``NO x ND`` matrix with entries in ``{-1, 0, +1}``.
    name:
        Human-readable mapping name (``"acm"``, ``"de"``, ``"bc"``, ...).
    positive_null_vector:
        A strictly positive vector in the null space of ``matrix`` (the
        second sufficient condition of the paper's Eq. 3).  Stored so the
        decomposition can shift particular solutions into the non-negative
        orthant without recomputing a null-space basis.
    """

    matrix: np.ndarray
    name: str = "custom"
    positive_null_vector: Optional[np.ndarray] = field(default=None)

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("periphery matrix must be 2-D")
        if not np.isin(matrix, (-1.0, 0.0, 1.0)).all():
            raise ValueError("periphery matrix entries must be in {-1, 0, +1}")
        object.__setattr__(self, "matrix", matrix)
        if self.positive_null_vector is not None:
            vector = np.asarray(self.positive_null_vector, dtype=np.float64)
            if vector.shape != (matrix.shape[1],):
                raise ValueError("positive null vector has the wrong length")
            object.__setattr__(self, "positive_null_vector", vector)

    # ------------------------------------------------------------------ #
    # Shape helpers
    # ------------------------------------------------------------------ #
    @property
    def num_outputs(self) -> int:
        """Number of logical signed outputs ``NO``."""
        return self.matrix.shape[0]

    @property
    def num_columns(self) -> int:
        """Number of physical crossbar columns ``ND``."""
        return self.matrix.shape[1]

    @property
    def extra_columns(self) -> int:
        """Hardware overhead in columns relative to the logical outputs."""
        return self.num_columns - self.num_outputs

    @property
    def operations_per_output(self) -> int:
        """Number of additions/subtractions performed per output at the periphery."""
        nonzero_per_row = np.count_nonzero(self.matrix, axis=1)
        return int(nonzero_per_row.max() - 1) if self.num_outputs else 0

    def apply(self, column_outputs: np.ndarray) -> np.ndarray:
        """Combine per-column crossbar outputs into signed outputs.

        Parameters
        ----------
        column_outputs:
            Array whose last dimension has length ``ND`` (one value per
            physical crossbar column, e.g. digitised column currents).
        """
        column_outputs = np.asarray(column_outputs, dtype=np.float64)
        if column_outputs.shape[-1] != self.num_columns:
            raise ValueError(
                f"expected last dimension {self.num_columns}, got {column_outputs.shape[-1]}"
            )
        return column_outputs @ self.matrix.T

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PeripheryMatrix(name={self.name!r}, "
            f"outputs={self.num_outputs}, columns={self.num_columns})"
        )


def acm_periphery(num_outputs: int) -> PeripheryMatrix:
    """Adjacent connection matrix: output ``j`` is ``column_j - column_{j+1}``.

    Uses ``NO + 1`` crossbar columns; every interior column is shared (with
    opposite signs) by two neighbouring outputs, which is the source of the
    paper's nearest-neighbour coupling and its mild regularisation effect.
    """
    if num_outputs < 1:
        raise ValueError("num_outputs must be at least 1")
    num_columns = num_outputs + 1
    matrix = np.zeros((num_outputs, num_columns))
    for j in range(num_outputs):
        matrix[j, j] = 1.0
        matrix[j, j + 1] = -1.0
    return PeripheryMatrix(matrix, name="acm", positive_null_vector=np.ones(num_columns))


def de_periphery(num_outputs: int) -> PeripheryMatrix:
    """Double-element mapping: output ``j`` is ``column_{2j} - column_{2j+1}``.

    Uses ``2 * NO`` crossbar columns (a positive and a negative element per
    weight), doubling the representable weight range at twice the hardware.
    """
    if num_outputs < 1:
        raise ValueError("num_outputs must be at least 1")
    num_columns = 2 * num_outputs
    matrix = np.zeros((num_outputs, num_columns))
    for j in range(num_outputs):
        matrix[j, 2 * j] = 1.0
        matrix[j, 2 * j + 1] = -1.0
    return PeripheryMatrix(matrix, name="de", positive_null_vector=np.ones(num_columns))


def bc_periphery(num_outputs: int) -> PeripheryMatrix:
    """Bias-column mapping: output ``j`` is ``column_j - column_ref``.

    Uses ``NO + 1`` columns; the last column is a shared reference whose
    devices are fixed to the middle of the conductance range, so the
    representable weight range is half that of DE/ACM.
    """
    if num_outputs < 1:
        raise ValueError("num_outputs must be at least 1")
    num_columns = num_outputs + 1
    matrix = np.zeros((num_outputs, num_columns))
    for j in range(num_outputs):
        matrix[j, j] = 1.0
        matrix[j, num_columns - 1] = -1.0
    return PeripheryMatrix(matrix, name="bc", positive_null_vector=np.ones(num_columns))


def random_valid_periphery(
    num_outputs: int,
    extra_columns: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> PeripheryMatrix:
    """Sample a random periphery matrix satisfying the sufficient conditions.

    Used by the ablation benchmark to compare ACM against other members of the
    family of valid periphery matrices with the same hardware overhead.  Each
    row contains exactly one ``+1`` and one ``-1`` (so the all-ones vector is
    in the null space).  Rows are built as the edges of a random tree over the
    crossbar columns (grown by random attachment), which guarantees full row
    rank by construction: ACM itself is the special case where the tree is a
    path visiting the columns in order.
    """
    if num_outputs < 1:
        raise ValueError("num_outputs must be at least 1")
    if extra_columns < 1:
        raise ValueError("extra_columns must be at least 1")
    rng = rng if rng is not None else np.random.default_rng()
    num_columns = num_outputs + extra_columns

    matrix = np.zeros((num_outputs, num_columns))
    column_order = rng.permutation(num_columns)
    connected = [column_order[0]]
    for j in range(num_outputs):
        new_column = column_order[j + 1]
        anchor = connected[int(rng.integers(len(connected)))]
        if rng.random() < 0.5:
            matrix[j, new_column], matrix[j, anchor] = 1.0, -1.0
        else:
            matrix[j, new_column], matrix[j, anchor] = -1.0, 1.0
        connected.append(new_column)

    return PeripheryMatrix(
        matrix, name="random", positive_null_vector=np.ones(num_columns)
    )


def periphery_for(mapping: str, num_outputs: int) -> PeripheryMatrix:
    """Build the periphery matrix for a mapping selected by name.

    Parameters
    ----------
    mapping:
        One of ``"acm"``, ``"de"``, ``"bc"`` (case-insensitive).
    num_outputs:
        Number of logical signed outputs of the layer being mapped.
    """
    key = mapping.lower()
    if key == "acm":
        return acm_periphery(num_outputs)
    if key == "de":
        return de_periphery(num_outputs)
    if key == "bc":
        return bc_periphery(num_outputs)
    raise ValueError(f"unknown mapping {mapping!r}; expected one of {MAPPING_NAMES}")
