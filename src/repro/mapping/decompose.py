"""Decomposition of a signed weight matrix into ``S @ M`` with ``M >= 0``.

This module implements and verifies the mathematical core of the paper's
Section III: given a periphery matrix ``S`` satisfying the sufficient
conditions (full row rank and a strictly positive null-space vector), any
signed matrix ``W`` can be written as ``W = S @ M`` with element-wise
non-negative ``M``.  The constructive proof is followed directly: solve the
under-determined system for a particular solution, then shift it along the
positive null-space direction until every entry is non-negative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class SufficientConditionReport:
    """Outcome of checking the paper's Eq. (3) sufficient conditions.

    Attributes
    ----------
    rank:
        Numerical rank of the periphery matrix.
    full_row_rank:
        Whether ``rank(S) == NO`` (condition 1).
    has_positive_null_vector:
        Whether a strictly positive null-space vector exists (condition 2).
    positive_null_vector:
        A strictly positive null-space vector if one was found, else ``None``.
    satisfied:
        True when both conditions hold.
    """

    rank: int
    full_row_rank: bool
    has_positive_null_vector: bool
    positive_null_vector: Optional[np.ndarray]
    satisfied: bool


def _find_positive_null_vector(matrix: np.ndarray, tolerance: float = 1e-9) -> Optional[np.ndarray]:
    """Search the null space of ``matrix`` for a strictly positive vector.

    The all-ones vector is checked first (it is the null vector for every
    mapping in the paper).  Otherwise a linear program would be the general
    tool; here we fall back to examining the null-space basis and returning a
    positive combination when one basis vector is already single-signed.
    """
    num_columns = matrix.shape[1]
    ones = np.ones(num_columns)
    if np.allclose(matrix @ ones, 0.0, atol=tolerance):
        return ones

    # General fallback: inspect the SVD null-space basis.
    _, singular_values, vt = np.linalg.svd(matrix)
    rank = int((singular_values > tolerance).sum())
    null_basis = vt[rank:]
    for vector in null_basis:
        if (vector > tolerance).all():
            return vector / vector.min()
        if (vector < -tolerance).all():
            return -vector / (-vector).min()
    # Try a uniform combination of the basis vectors.
    if len(null_basis):
        combined = null_basis.sum(axis=0)
        if (np.abs(matrix @ combined) < tolerance).all() and (combined > tolerance).all():
            return combined / combined.min()
    return None


def check_sufficient_conditions(periphery) -> SufficientConditionReport:
    """Check the paper's sufficient conditions (Eq. 3) for a periphery matrix.

    Parameters
    ----------
    periphery:
        Either a :class:`~repro.mapping.periphery.PeripheryMatrix` or a plain
        2-D array.
    """
    matrix = periphery.matrix if hasattr(periphery, "matrix") else np.asarray(periphery, float)
    num_outputs = matrix.shape[0]
    rank = int(np.linalg.matrix_rank(matrix))
    full_row_rank = rank == num_outputs

    known_vector = getattr(periphery, "positive_null_vector", None)
    positive_null_vector = None
    if known_vector is not None and np.allclose(matrix @ known_vector, 0.0, atol=1e-9):
        if (known_vector > 0).all():
            positive_null_vector = np.asarray(known_vector, dtype=np.float64)
    if positive_null_vector is None:
        positive_null_vector = _find_positive_null_vector(matrix)

    has_positive = positive_null_vector is not None
    return SufficientConditionReport(
        rank=rank,
        full_row_rank=full_row_rank,
        has_positive_null_vector=has_positive,
        positive_null_vector=positive_null_vector,
        satisfied=full_row_rank and has_positive,
    )


def decompose(
    weights: np.ndarray,
    periphery,
    margin: float = 0.0,
) -> np.ndarray:
    """Factor a signed matrix ``W`` as ``S @ M`` with ``M >= 0`` and return ``M``.

    Parameters
    ----------
    weights:
        Signed weight matrix ``W`` of shape ``(NO, NI)``.
    periphery:
        The periphery matrix ``S`` (shape ``NO x ND``); must satisfy the
        sufficient conditions.
    margin:
        Optional extra non-negative offset added along the positive null
        direction, useful to keep programmed conductances away from the
        absolute zero state.

    Returns
    -------
    numpy.ndarray
        Non-negative matrix ``M`` of shape ``(ND, NI)`` with ``S @ M == W``
        (up to numerical precision).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError("weights must be a 2-D matrix (NO, NI)")
    if margin < 0:
        raise ValueError("margin must be non-negative")

    matrix = periphery.matrix if hasattr(periphery, "matrix") else np.asarray(periphery, float)
    report = check_sufficient_conditions(periphery)
    if not report.satisfied:
        raise ValueError(
            "periphery matrix does not satisfy the sufficient conditions: "
            f"rank={report.rank} (need {matrix.shape[0]}), "
            f"positive null vector found={report.has_positive_null_vector}"
        )

    num_outputs, num_columns = matrix.shape
    if weights.shape[0] != num_outputs:
        raise ValueError(
            f"weights have {weights.shape[0]} rows but periphery expects {num_outputs}"
        )

    # Particular (minimum-norm) solution of S m_k = w_k for every column k.
    particular, *_ = np.linalg.lstsq(matrix, weights, rcond=None)

    # Shift along the positive null vector until every entry is non-negative.
    null_vector = report.positive_null_vector
    minimum_per_column = particular.min(axis=0)
    shift = np.maximum(0.0, -(minimum_per_column)) / null_vector.min()
    shifted = particular + np.outer(null_vector, shift)
    if margin > 0:
        shifted = shifted + margin * null_vector[:, None]

    # Numerical guard: clip tiny negatives introduced by floating point.
    shifted = np.where(shifted < 0, np.where(shifted > -1e-12, 0.0, shifted), shifted)
    if (shifted < 0).any():
        raise RuntimeError("decomposition failed to produce a non-negative factor")
    return shifted


def reconstruct(nonnegative: np.ndarray, periphery) -> np.ndarray:
    """Recombine a non-negative crossbar matrix through the periphery matrix."""
    matrix = periphery.matrix if hasattr(periphery, "matrix") else np.asarray(periphery, float)
    nonnegative = np.asarray(nonnegative, dtype=np.float64)
    if nonnegative.shape[0] != matrix.shape[1]:
        raise ValueError(
            f"M has {nonnegative.shape[0]} rows but periphery expects {matrix.shape[1]}"
        )
    return matrix @ nonnegative


def minimum_nonnegative_factor(weights: np.ndarray, periphery) -> np.ndarray:
    """Decompose with the smallest possible conductance usage.

    Like :func:`decompose` but, after the non-negativity shift, any common
    offset along the null direction that keeps ``M`` non-negative is removed
    per column, so at least one device per column sits at ``Gmin``.  This is
    the natural programming choice when the conductance budget is tight.
    """
    matrix = periphery.matrix if hasattr(periphery, "matrix") else np.asarray(periphery, float)
    factor = decompose(weights, periphery)
    report = check_sufficient_conditions(periphery)
    null_vector = report.positive_null_vector
    # Remove the largest multiple of the null vector that keeps M >= 0.
    ratios = factor / null_vector[:, None]
    removable = ratios.min(axis=0)
    tightened = factor - np.outer(null_vector, removable)
    tightened = np.where(np.abs(tightened) < 1e-12, 0.0, tightened)
    if (tightened < 0).any():
        raise RuntimeError("tightened decomposition became negative")
    # The reconstruction is unchanged because we only moved along the null space.
    assert np.allclose(matrix @ tightened, matrix @ factor, atol=1e-8)
    return tightened
