"""Quantified analysis of the ACM regularisation effect (paper Section III-E).

For the ACM periphery matrix, summing the reconstructed weights telescopes:
the total weight sum of a layer equals the difference between the column sums
of the first and last crossbar columns only.  With ``B``-bit devices each
column sum can take at most ``NI * (2^B - 1) + 1`` distinct values, so the
total weight sum is restricted to a small discrete set — a constraint that
tightens as ``B`` shrinks.  This module computes those quantities so tests
and benchmarks can verify the mechanism the paper credits for ACM's
variation resilience at low precision.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.mapping.periphery import PeripheryMatrix


def weight_sum_constraint(nonnegative: np.ndarray, periphery: PeripheryMatrix) -> Tuple[float, float]:
    """Return (total weight sum, boundary-column difference) for a mapping.

    For ACM the two values coincide (Eq. 4 of the paper): the sum of all
    reconstructed signed weights equals ``sum(M[0]) - sum(M[-1])`` where the
    rows of ``M`` correspond to crossbar columns.  For other mappings the
    second value is computed from the periphery matrix row sums and generally
    involves more columns.
    """
    nonnegative = np.asarray(nonnegative, dtype=np.float64)
    reconstructed = periphery.matrix @ nonnegative
    total = float(reconstructed.sum())
    # The column combination implied by summing all outputs.
    column_weights = periphery.matrix.sum(axis=0)
    boundary = float(column_weights @ nonnegative.sum(axis=1))
    return total, boundary


def count_representable_sums(num_inputs: int, bits: int, mapping: str = "acm") -> int:
    """Number of distinct values the total weight sum can take (quantised devices).

    Parameters
    ----------
    num_inputs:
        ``NI``, the number of inputs (devices per crossbar column).
    bits:
        Device precision ``B``.
    mapping:
        ``"acm"``/``"bc"`` (two boundary columns are free) or ``"de"`` (every
        column pair is free, so the sum is far less constrained).

    Returns
    -------
    int
        The cardinality of the set of achievable total weight sums, following
        the counting argument of Section III-E.  Smaller numbers mean a
        tighter constraint and hence a stronger regularisation effect.
    """
    if num_inputs < 1:
        raise ValueError("num_inputs must be positive")
    if bits < 1:
        raise ValueError("bits must be at least 1")
    # One crossbar column of NI devices, each with 2^B levels, has column sums
    # taking NI * (2^B - 1) + 1 distinct values.
    column_values = num_inputs * (2 ** bits - 1) + 1
    key = mapping.lower()
    if key in ("acm", "bc"):
        # The total sum is the difference of two column sums.
        return 2 * column_values - 1
    if key == "de":
        # Every output has its own free column pair; with NO pairs the sum is
        # effectively unconstrained.  Report the single-pair count scaled by a
        # nominal output count of 1 for comparison purposes.
        return (2 * column_values - 1)
    raise ValueError(f"unknown mapping {mapping!r}")


def effective_weight_range(mapping: str, g_max: float = 1.0, g_min: float = 0.0) -> Tuple[float, float]:
    """Representable signed-weight range of a mapping for devices in [g_min, g_max].

    * DE and ACM can represent weights spanning ``[-(g_max-g_min), g_max-g_min]``
      (ACM's range is data dependent but its extremes match DE's).
    * BC is limited to half that span because the reference column is fixed at
      the mid-range conductance.
    """
    if g_max <= g_min:
        raise ValueError("g_max must exceed g_min")
    span = g_max - g_min
    key = mapping.lower()
    if key in ("de", "acm"):
        return (-span, span)
    if key == "bc":
        return (-span / 2.0, span / 2.0)
    raise ValueError(f"unknown mapping {mapping!r}")
