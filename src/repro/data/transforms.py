"""Simple array transforms used by the data pipeline and examples."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


def normalize(images: np.ndarray, mean: float = None, std: float = None) -> np.ndarray:
    """Standardise images to zero mean and unit standard deviation.

    If ``mean``/``std`` are not provided they are computed from the data,
    which is the convention used by the synthetic dataset generators.
    """
    images = np.asarray(images, dtype=np.float64)
    mean = images.mean() if mean is None else mean
    std = images.std() if std is None else std
    if std == 0:
        raise ValueError("cannot normalise images with zero standard deviation")
    return (images - mean) / std


def flatten(images: np.ndarray) -> np.ndarray:
    """Flatten ``(N, C, H, W)`` images to ``(N, C*H*W)`` feature vectors."""
    images = np.asarray(images)
    return images.reshape(images.shape[0], -1)


def random_horizontal_flip(
    images: np.ndarray, probability: float = 0.5, rng: np.random.Generator = None
) -> np.ndarray:
    """Flip each image horizontally with the given probability (augmentation)."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    rng = rng if rng is not None else np.random.default_rng()
    images = np.asarray(images).copy()
    flips = rng.random(len(images)) < probability
    images[flips] = images[flips][..., ::-1]
    return images


def compose(*transforms: Callable[[np.ndarray], np.ndarray]) -> Callable[[np.ndarray], np.ndarray]:
    """Chain transforms left-to-right into a single callable."""

    def apply(images: np.ndarray) -> np.ndarray:
        for transform in transforms:
            images = transform(images)
        return images

    return apply


def one_hot(labels: Sequence[int], num_classes: int) -> np.ndarray:
    """Convert integer labels to a one-hot matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError("labels out of range for the requested number of classes")
    encoded = np.zeros((len(labels), num_classes))
    encoded[np.arange(len(labels)), labels] = 1.0
    return encoded
