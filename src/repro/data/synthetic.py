"""Synthetic image-classification tasks standing in for MNIST and CIFAR-10.

The generators build class-conditional images from smooth spatial prototypes
(sums of oriented Gaussian blobs and stripes) plus per-sample geometric jitter
and additive noise.  Each class therefore has real spatial structure that a
convolutional network can exploit, while per-sample variation keeps the task
from being trivially separable.  Difficulty is controlled by the noise level,
the jitter amplitude, and the prototype separation.

Two presets are provided:

* :func:`synthetic_mnist` — 10 classes, 1x16x16 images, easy enough that all
  mappings saturate at full precision (mirrors the MNIST rows of Fig. 5).
* :func:`synthetic_cifar` — 10 classes, 3x16x16 images, noisier and with more
  intra-class variation so accuracy degrades visibly at low weight precision
  (mirrors the CIFAR-10 rows of Fig. 5 and Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset, train_test_split


@dataclass
class SyntheticImageTask:
    """Configuration for a synthetic image classification task.

    Attributes
    ----------
    num_classes:
        Number of classes to generate.
    image_size:
        Spatial edge length of the square images.
    channels:
        Number of image channels (1 for the MNIST-like task, 3 for CIFAR-like).
    samples_per_class:
        Number of samples generated per class (before train/test splitting).
    noise_std:
        Standard deviation of the additive Gaussian pixel noise.
    jitter:
        Maximum absolute translation (in pixels) applied per sample.
    blob_count:
        Number of Gaussian blobs composing each class prototype.
    prototype_scale:
        Peak amplitude of the class prototypes before normalisation.
    seed:
        Seed of the dataset generator; the same seed always produces the same
        dataset.
    """

    num_classes: int = 10
    image_size: int = 16
    channels: int = 1
    samples_per_class: int = 200
    noise_std: float = 0.25
    jitter: int = 1
    blob_count: int = 3
    prototype_scale: float = 1.0
    seed: int = 0
    name: str = field(default="synthetic", compare=False)

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("num_classes must be at least 2")
        if self.image_size < 4:
            raise ValueError("image_size must be at least 4")
        if self.channels not in (1, 3):
            raise ValueError("channels must be 1 or 3")
        if self.samples_per_class < 2:
            raise ValueError("samples_per_class must be at least 2")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")


def _gaussian_blob(
    size: int, center: Tuple[float, float], sigma: float, amplitude: float
) -> np.ndarray:
    """Render a 2-D Gaussian bump on a ``size x size`` grid."""
    ys, xs = np.mgrid[0:size, 0:size]
    cy, cx = center
    return amplitude * np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2) / (2.0 * sigma ** 2)))


def _stripe_pattern(size: int, frequency: float, phase: float, angle: float) -> np.ndarray:
    """Render an oriented sinusoidal stripe pattern."""
    ys, xs = np.mgrid[0:size, 0:size]
    projected = xs * np.cos(angle) + ys * np.sin(angle)
    return 0.5 * np.sin(2.0 * np.pi * frequency * projected / size + phase)


def _class_prototype(
    task: SyntheticImageTask, class_id: int, rng: np.random.Generator
) -> np.ndarray:
    """Build the deterministic prototype image for one class."""
    size = task.image_size
    prototype = np.zeros((task.channels, size, size))
    for channel in range(task.channels):
        canvas = np.zeros((size, size))
        for _ in range(task.blob_count):
            center = rng.uniform(size * 0.2, size * 0.8, size=2)
            sigma = rng.uniform(size * 0.08, size * 0.22)
            amplitude = rng.uniform(0.5, 1.0) * task.prototype_scale
            canvas += _gaussian_blob(size, (center[0], center[1]), sigma, amplitude)
        frequency = rng.uniform(1.0, 3.0)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        angle = rng.uniform(0.0, np.pi)
        canvas += _stripe_pattern(size, frequency, phase, angle) * task.prototype_scale * 0.4
        prototype[channel] = canvas
    # Offset classes slightly in mean intensity so that even a linear model has
    # some signal, mirroring the varying difficulty of natural datasets.
    prototype += 0.05 * (class_id - task.num_classes / 2.0) / task.num_classes
    return prototype


def _jitter_image(image: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Translate an image by (dy, dx) pixels with zero padding."""
    if dy == 0 and dx == 0:
        return image
    shifted = np.zeros_like(image)
    size_y, size_x = image.shape[-2:]
    src_y = slice(max(0, -dy), min(size_y, size_y - dy))
    src_x = slice(max(0, -dx), min(size_x, size_x - dx))
    dst_y = slice(max(0, dy), min(size_y, size_y + dy))
    dst_x = slice(max(0, dx), min(size_x, size_x + dx))
    shifted[..., dst_y, dst_x] = image[..., src_y, src_x]
    return shifted


def make_classification_images(task: SyntheticImageTask) -> ArrayDataset:
    """Generate the full dataset described by ``task``.

    Returns an :class:`ArrayDataset` with standardised (zero-mean, unit-std)
    images of shape ``(N, channels, image_size, image_size)``.
    """
    rng = np.random.default_rng(task.seed)
    prototypes = [
        _class_prototype(task, class_id, rng) for class_id in range(task.num_classes)
    ]

    total = task.num_classes * task.samples_per_class
    images = np.zeros((total, task.channels, task.image_size, task.image_size))
    labels = np.zeros(total, dtype=np.int64)

    index = 0
    for class_id, prototype in enumerate(prototypes):
        for _ in range(task.samples_per_class):
            sample = prototype.copy()
            if task.jitter > 0:
                dy = int(rng.integers(-task.jitter, task.jitter + 1))
                dx = int(rng.integers(-task.jitter, task.jitter + 1))
                sample = _jitter_image(sample, dy, dx)
            sample = sample * rng.uniform(0.85, 1.15)
            sample = sample + rng.normal(0.0, task.noise_std, size=sample.shape)
            images[index] = sample
            labels[index] = class_id
            index += 1

    mean = images.mean()
    std = images.std() + 1e-12
    images = (images - mean) / std
    return ArrayDataset(images, labels)


def synthetic_mnist(
    samples_per_class: int = 120,
    image_size: int = 16,
    seed: int = 0,
    test_fraction: float = 0.2,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Return (train, test) splits of the MNIST-like synthetic digits task."""
    task = SyntheticImageTask(
        num_classes=10,
        image_size=image_size,
        channels=1,
        samples_per_class=samples_per_class,
        noise_std=0.25,
        jitter=1,
        blob_count=3,
        seed=seed,
        name="synthetic-mnist",
    )
    dataset = make_classification_images(task)
    return train_test_split(dataset, test_fraction, rng=np.random.default_rng(seed + 1))


def synthetic_cifar(
    samples_per_class: int = 120,
    image_size: int = 16,
    seed: int = 7,
    test_fraction: float = 0.2,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Return (train, test) splits of the CIFAR-like synthetic objects task.

    The task uses three channels, larger jitter, and stronger noise than the
    MNIST-like task, so accuracy is materially below 100 % and degrades as
    weight precision is reduced — the regime where the paper's Fig. 5c/5d/5g/5h
    and Fig. 6 comparisons live.
    """
    task = SyntheticImageTask(
        num_classes=10,
        image_size=image_size,
        channels=3,
        samples_per_class=samples_per_class,
        noise_std=0.6,
        jitter=2,
        blob_count=4,
        seed=seed,
        name="synthetic-cifar",
    )
    dataset = make_classification_images(task)
    return train_test_split(dataset, test_fraction, rng=np.random.default_rng(seed + 1))
