"""Datasets and data loading.

The paper evaluates on MNIST and CIFAR-10, which cannot be downloaded in this
offline environment.  This package therefore provides deterministic synthetic
substitutes that preserve what the paper's comparisons actually need:

* a multi-class image classification task with spatial structure (so that
  convolutions and pooling are exercised),
* tunable difficulty so full-precision training saturates while low-precision
  training degrades, and
* a train / test split so training and generalisation error can be tracked
  separately (Fig. 5a / 5e).

``synthetic_mnist`` builds a 10-class single-channel "digits" task,
``synthetic_cifar`` a 10-class three-channel "objects" task.
"""

from repro.data.dataset import ArrayDataset, DataLoader, train_test_split
from repro.data.synthetic import (
    SyntheticImageTask,
    synthetic_mnist,
    synthetic_cifar,
    make_classification_images,
)
from repro.data import transforms

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "train_test_split",
    "SyntheticImageTask",
    "synthetic_mnist",
    "synthetic_cifar",
    "make_classification_images",
    "transforms",
]
