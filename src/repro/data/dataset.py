"""Dataset containers and a minibatch loader."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


class ArrayDataset:
    """A dataset backed by in-memory NumPy arrays.

    Parameters
    ----------
    images:
        Array of shape ``(N, C, H, W)`` (or ``(N, D)`` for flat features).
    labels:
        Integer class labels of shape ``(N,)``.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray):
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if len(images) != len(labels):
            raise ValueError(
                f"images ({len(images)}) and labels ({len(labels)}) length mismatch"
            )
        if labels.ndim != 1:
            raise ValueError("labels must be a 1-D integer array")
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.images[index], self.labels[index]

    @property
    def num_classes(self) -> int:
        """Number of distinct classes present in the labels."""
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    @property
    def sample_shape(self) -> Tuple[int, ...]:
        """Shape of one sample, excluding the batch dimension."""
        return self.images.shape[1:]

    def subset(self, indices) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        return ArrayDataset(self.images[indices], self.labels[indices])


def train_test_split(
    dataset: ArrayDataset,
    test_fraction: float = 0.2,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Split a dataset into train and test subsets.

    The split is stratified per class so both subsets contain every class even
    for small synthetic datasets.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng(0)
    train_indices = []
    test_indices = []
    for class_id in np.unique(dataset.labels):
        class_indices = np.flatnonzero(dataset.labels == class_id)
        permuted = rng.permutation(class_indices)
        split = max(1, int(round(len(permuted) * test_fraction)))
        test_indices.extend(permuted[:split])
        train_indices.extend(permuted[split:])
    return dataset.subset(np.sort(train_indices)), dataset.subset(np.sort(test_indices))


class DataLoader:
    """Iterate over a dataset in shuffled minibatches.

    Parameters
    ----------
    dataset:
        The :class:`ArrayDataset` to iterate over.
    batch_size:
        Number of samples per batch.
    shuffle:
        Whether to reshuffle the sample order at the start of every epoch.
    rng:
        Random generator driving the shuffling (pass a seeded generator for
        reproducible epochs).
    drop_last:
        If ``True``, drop a final batch smaller than ``batch_size``.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
        drop_last: bool = False,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            batch_indices = order[start:start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                break
            yield self.dataset.images[batch_indices], self.dataset.labels[batch_indices]
