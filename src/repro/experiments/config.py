"""Shared experiment configuration: scales, datasets and model selection.

The paper's experiments train full-size networks on MNIST / CIFAR-10 for tens
to hundreds of epochs on a GPU; the reproduction substitutes synthetic tasks
and reduced-width networks, and exposes three *scales* so the same drivers can
run as quick CI benchmarks or as longer, higher-fidelity studies:

* ``SCALE_SMOKE`` — seconds; used by the unit/integration tests.
* ``SCALE_FAST``  — a couple of minutes for the full benchmark suite; the
  default for ``pytest benchmarks/``.
* ``SCALE_FULL``  — larger datasets and more epochs for tighter curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.data.dataset import ArrayDataset
from repro.data.synthetic import synthetic_cifar, synthetic_mnist
from repro.models import make_lenet, make_mlp, make_resnet20, make_vgg9


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling the cost/fidelity trade-off of an experiment run.

    Attributes
    ----------
    name:
        Identifier used in reports.
    samples_per_class:
        Synthetic-dataset size per class.
    epochs:
        Training epochs for the precision sweeps.
    fp32_epochs:
        Training epochs for the FP32 curve experiment (Fig. 5a/e).
    batch_size, lr:
        SGD hyper-parameters shared by every mapping (the comparison is
        always at matched hyper-parameters).
    variation_samples:
        Number of variation draws per sigma for the Fig. 6 protocol
        (the paper uses 25).
    resnet_blocks:
        Residual blocks per stage for the ResNet model (3 = ResNet-20).
    """

    name: str
    samples_per_class: int
    epochs: int
    fp32_epochs: int
    batch_size: int
    lr: float
    variation_samples: int
    resnet_blocks: int


SCALE_SMOKE = ExperimentScale(
    name="smoke",
    samples_per_class=20,
    epochs=3,
    fp32_epochs=4,
    batch_size=32,
    lr=0.05,
    variation_samples=3,
    resnet_blocks=1,
)

SCALE_FAST = ExperimentScale(
    name="fast",
    samples_per_class=60,
    epochs=8,
    fp32_epochs=12,
    batch_size=32,
    lr=0.05,
    variation_samples=5,
    resnet_blocks=1,
)

SCALE_FULL = ExperimentScale(
    name="full",
    samples_per_class=120,
    epochs=15,
    fp32_epochs=30,
    batch_size=32,
    lr=0.05,
    variation_samples=25,
    resnet_blocks=3,
)


#: Networks evaluated in the paper, keyed by the name used in Fig. 5 / Fig. 6.
NETWORK_NAMES = ("lenet", "vgg9", "resnet20", "mlp")


def dataset_for(network: str, scale: ExperimentScale) -> Tuple[ArrayDataset, ArrayDataset]:
    """Return the (train, test) datasets the paper pairs with each network.

    LeNet and the MLP train on the MNIST-like task; VGG-9 and ResNet-20 train
    on the CIFAR-like task, mirroring the paper's dataset/network pairing.
    """
    key = network.lower()
    if key in ("lenet", "mlp"):
        return synthetic_mnist(samples_per_class=scale.samples_per_class)
    if key in ("vgg9", "resnet20"):
        return synthetic_cifar(samples_per_class=scale.samples_per_class)
    raise ValueError(f"unknown network {network!r}; expected one of {NETWORK_NAMES}")


def model_for(
    network: str,
    mapping: str,
    quantizer_bits: Optional[int],
    scale: ExperimentScale,
    seed: int = 1,
):
    """Build the network used by an experiment for one mapping/precision."""
    key = network.lower()
    if key == "lenet":
        return make_lenet(mapping=mapping, quantizer_bits=quantizer_bits, seed=seed)
    if key == "vgg9":
        return make_vgg9(mapping=mapping, quantizer_bits=quantizer_bits, seed=seed)
    if key == "resnet20":
        return make_resnet20(
            mapping=mapping,
            quantizer_bits=quantizer_bits,
            blocks_per_stage=scale.resnet_blocks,
            seed=seed,
        )
    if key == "mlp":
        return make_mlp(mapping=mapping, quantizer_bits=quantizer_bits, seed=seed)
    raise ValueError(f"unknown network {network!r}; expected one of {NETWORK_NAMES}")
