"""Driver for the paper's Fig. 6: inference accuracy under device variation.

Protocol: train the VGG-9 network on the CIFAR-like task at a given device
precision with each mapping, then — without any fine-tuning — add zero-mean
Gaussian variation to every programmed conductance and measure inference
accuracy, averaging multiple independent variation draws per sigma.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentScale, SCALE_FAST, dataset_for, model_for
from repro.train.evaluate import VariationSweepResult, variation_sweep
from repro.train.trainer import Trainer, TrainingConfig


@dataclass
class VariationStudyResult:
    """Inference accuracy versus device-variation sigma (Fig. 6).

    Attributes
    ----------
    network:
        Network evaluated (the paper uses VGG-9 on CIFAR-10).
    bits:
        Device precisions studied (panels of Fig. 6).
    sigmas:
        Variation sigmas swept, as fractions of the conductance range.
    accuracy:
        ``accuracy[bits][mapping]`` is the per-sigma mean accuracy list.
    sweeps:
        The raw :class:`VariationSweepResult` objects, same keying.
    """

    network: str
    bits: List[int] = field(default_factory=list)
    sigmas: List[float] = field(default_factory=list)
    accuracy: Dict[int, Dict[str, List[float]]] = field(default_factory=dict)
    sweeps: Dict[int, Dict[str, VariationSweepResult]] = field(default_factory=dict)

    def accuracy_at(self, bits: int, mapping: str, sigma: float) -> float:
        """Mean accuracy of one mapping at one precision and sigma."""
        index = self.sigmas.index(sigma)
        return self.accuracy[bits][mapping][index]

    def best_mapping_at(self, bits: int, sigma: float) -> str:
        """Mapping with the highest mean accuracy at one (bits, sigma) point."""
        index = self.sigmas.index(sigma)
        return max(self.accuracy[bits], key=lambda name: self.accuracy[bits][name][index])

    def as_rows(self) -> List[str]:
        """Formatted rows, one per (precision, sigma) point."""
        rows = []
        for bits in self.bits:
            for index, sigma in enumerate(self.sigmas):
                cells = "  ".join(
                    f"{mapping}={self.accuracy[bits][mapping][index] * 100.0:6.2f}%"
                    for mapping in self.accuracy[bits]
                )
                rows.append(f"{self.network:8s} {bits}-bit  sigma={sigma * 100.0:5.1f}%  {cells}")
        return rows


def run_variation_study(
    network: str = "vgg9",
    bits: Sequence[int] = (1, 3, 4, 6),
    sigmas: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25),
    mappings: Sequence[str] = ("de", "acm", "bc"),
    scale: ExperimentScale = SCALE_FAST,
    seed: int = 1,
    use_runtime: Optional[bool] = None,
    max_workers: Optional[int] = 1,
) -> VariationStudyResult:
    """Reproduce the Fig. 6 device-variation study.

    For every precision in ``bits`` and every mapping, the network is trained
    once and then evaluated under every sigma in ``sigmas`` with
    ``scale.variation_samples`` independent variation draws per point.  The
    evaluation goes through the compiled inference runtime by default
    (``use_runtime=None`` falls back to eager when the model cannot be
    compiled; ``False`` forces the eager reference path).

    The (bits, mapping) cells are independent; ``max_workers`` other than 1
    delegates to the process-pool driver
    (:func:`repro.serve.pool.run_variation_study_parallel`), which trains
    the cells across cores (``None`` = one worker per core) and returns a
    bit-identical result.
    """
    if max_workers is None or max_workers != 1:
        from repro.serve.pool import run_variation_study_parallel

        return run_variation_study_parallel(
            network=network, bits=bits, sigmas=sigmas, mappings=mappings,
            scale=scale, seed=seed, use_runtime=use_runtime,
            max_workers=max_workers,
        )
    train_set, test_set = dataset_for(network, scale)
    result = VariationStudyResult(
        network=network, bits=list(bits), sigmas=[float(s) for s in sigmas]
    )
    for precision in bits:
        result.accuracy[precision] = {}
        result.sweeps[precision] = {}
        for mapping in mappings:
            model = model_for(
                network, mapping, quantizer_bits=precision, scale=scale, seed=seed
            )
            config = TrainingConfig(
                epochs=scale.epochs,
                batch_size=scale.batch_size,
                lr=scale.lr,
                activation_bits=8,
                seed=seed,
            )
            Trainer(model, train_set, test_set, config).fit()
            sweep = variation_sweep(
                model,
                test_set,
                sigmas=result.sigmas,
                num_samples=scale.variation_samples,
                seed=seed,
                use_runtime=use_runtime,
            )
            result.accuracy[precision][mapping] = list(sweep.mean_accuracy)
            result.sweeps[precision][mapping] = sweep
    return result
