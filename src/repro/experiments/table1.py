"""Driver for the paper's Table I: system-level comparison of the mappings."""

from __future__ import annotations

from typing import Sequence

from repro.hardware.accelerator import LayerSpec, mlp_layer_specs
from repro.hardware.params import DEFAULT_14NM, TechnologyParams
from repro.hardware.report import SystemReport, table1_report


def run_system_comparison(
    specs: Sequence[LayerSpec] = None,
    training_samples: int = 1000,
    params: TechnologyParams = DEFAULT_14NM,
) -> SystemReport:
    """Generate the Table I system-level comparison for the 2-layer MLP.

    Parameters
    ----------
    specs:
        Layer specifications; defaults to the paper's two-layer MLP
        (400-100-10, following the NeuroSim MLP example).
    training_samples:
        Samples per training epoch used to scale per-MVM energy and delay to
        the per-epoch numbers Table I reports.
    params:
        Technology parameters (14 nm defaults).

    Returns
    -------
    SystemReport
        Per-mapping crossbar area, periphery area, read energy and read delay,
        with helpers to compute the DE/ACM and BC/ACM ratios the paper quotes
        (2.3x area, 7x read energy, 1.33x delay for DE; parity for BC).
    """
    layer_specs = list(specs) if specs is not None else mlp_layer_specs()
    return table1_report(
        specs=layer_specs, training_samples=training_samples, params=params
    )
