"""Driver for the paper's Table I: system-level comparison of the mappings."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.hardware.accelerator import (
    LayerSpec,
    layer_specs_from_plan,
    mlp_layer_specs,
)
from repro.hardware.params import DEFAULT_14NM, TechnologyParams
from repro.hardware.report import SystemReport, table1_report


def run_system_comparison(
    specs: Sequence[LayerSpec] = None,
    training_samples: int = 1000,
    params: TechnologyParams = DEFAULT_14NM,
    plan=None,
    input_shape: Optional[Tuple[int, ...]] = None,
) -> SystemReport:
    """Generate the Table I system-level comparison for the 2-layer MLP.

    Parameters
    ----------
    specs:
        Layer specifications; defaults to the paper's two-layer MLP
        (400-100-10, following the NeuroSim MLP example).
    training_samples:
        Samples per training epoch used to scale per-MVM energy and delay to
        the per-epoch numbers Table I reports.
    params:
        Technology parameters (14 nm defaults).
    plan, input_shape:
        Alternatively to ``specs``, a compiled
        :class:`~repro.runtime.plan.InferencePlan`; the layer specs —
        including exact per-convolution MVM counts — are then derived from
        the frozen deployment artifact itself.  ``input_shape`` (one sample,
        e.g. ``(1, 16, 16)``) overrides the shape the plan recorded at
        compile time and is required only for plans without one.

    Returns
    -------
    SystemReport
        Per-mapping crossbar area, periphery area, read energy and read delay,
        with helpers to compute the DE/ACM and BC/ACM ratios the paper quotes
        (2.3x area, 7x read energy, 1.33x delay for DE; parity for BC).
    """
    if specs is not None and plan is not None:
        raise ValueError("pass either specs or a compiled plan, not both")
    if plan is not None:
        if input_shape is None and plan.input_shape is None:
            raise ValueError(
                "input_shape is required when estimating from a plan compiled "
                "without a recorded input shape"
            )
        layer_specs = layer_specs_from_plan(plan, input_shape)
    elif specs is not None:
        layer_specs = list(specs)
    else:
        layer_specs = mlp_layer_specs()
    return table1_report(
        specs=layer_specs, training_samples=training_samples, params=params
    )
