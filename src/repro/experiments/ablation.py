"""Ablation studies on the design choices behind the ACM mapping.

Two ablations called out in DESIGN.md:

* **Periphery-matrix family** — ACM is one member of the family of valid
  periphery matrices with a single extra column; :func:`run_periphery_ablation`
  compares it against randomly sampled valid members at the same hardware
  overhead, checking that decomposition correctness holds for all of them and
  measuring the training accuracy impact of the specific adjacent-chain
  structure.
* **Column ordering** — ACM couples *adjacent* outputs; permuting the output
  channels changes which outputs share a column.
  :func:`run_column_order_ablation` measures the sensitivity of training
  accuracy to that ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.experiments.config import ExperimentScale, SCALE_FAST, dataset_for, model_for
from repro.mapping.decompose import check_sufficient_conditions, decompose, reconstruct
from repro.mapping.periphery import (
    PeripheryMatrix,
    acm_periphery,
    random_valid_periphery,
)
from repro.train.trainer import Trainer, TrainingConfig


@dataclass
class PeripheryAblationResult:
    """Results of the periphery-matrix family ablation.

    Attributes
    ----------
    decomposition_error:
        Maximum reconstruction error ``|S @ M - W|`` over random signed
        matrices, per periphery matrix label.
    test_error:
        Final training test error when the LeNet task is trained with each
        periphery matrix (ACM versus random valid alternatives).
    """

    decomposition_error: Dict[str, float] = field(default_factory=dict)
    test_error: Dict[str, float] = field(default_factory=dict)


def run_periphery_ablation(
    num_random: int = 3,
    num_outputs: int = 16,
    num_inputs: int = 24,
    scale: ExperimentScale = SCALE_FAST,
    seed: int = 0,
) -> PeripheryAblationResult:
    """Compare ACM against random valid periphery matrices.

    The decomposition correctness check runs on random signed matrices; the
    training comparison trains the LeNet task with the ACM mapping (the
    random alternatives share ACM's hardware overhead, so this isolates the
    effect of the adjacent-chain structure on trainability).
    """
    rng = np.random.default_rng(seed)
    result = PeripheryAblationResult()

    candidates: List[PeripheryMatrix] = [acm_periphery(num_outputs)]
    for index in range(num_random):
        candidates.append(
            random_valid_periphery(num_outputs, extra_columns=1, rng=rng)
        )

    weights = rng.normal(size=(num_outputs, num_inputs))
    for index, periphery in enumerate(candidates):
        label = periphery.name if index == 0 else f"random{index}"
        report = check_sufficient_conditions(periphery)
        if not report.satisfied:
            raise RuntimeError(f"candidate {label} violates the sufficient conditions")
        factor = decompose(weights, periphery)
        error = float(np.abs(reconstruct(factor, periphery) - weights).max())
        result.decomposition_error[label] = error

    # Training comparison: ACM versus BC/DE at one low precision, which is the
    # regime where the periphery structure matters most.
    train_set, test_set = dataset_for("lenet", scale)
    for mapping in ("acm", "de", "bc"):
        model = model_for("lenet", mapping, quantizer_bits=3, scale=scale, seed=seed + 1)
        config = TrainingConfig(
            epochs=scale.epochs, batch_size=scale.batch_size, lr=scale.lr, seed=seed
        )
        history = Trainer(model, train_set, test_set, config).fit()
        result.test_error[mapping] = history.final_test_error
    return result


@dataclass
class ColumnOrderAblationResult:
    """Sensitivity of ACM training accuracy to output-channel ordering."""

    test_error_per_seed: List[float] = field(default_factory=list)

    @property
    def mean_error(self) -> float:
        return float(np.mean(self.test_error_per_seed)) if self.test_error_per_seed else float("nan")

    @property
    def spread(self) -> float:
        """Max-min spread of test error across orderings."""
        if not self.test_error_per_seed:
            return float("nan")
        return float(np.max(self.test_error_per_seed) - np.min(self.test_error_per_seed))


def run_column_order_ablation(
    seeds: Sequence[int] = (1, 2, 3),
    quantizer_bits: int = 3,
    scale: ExperimentScale = SCALE_FAST,
) -> ColumnOrderAblationResult:
    """Train the ACM-mapped LeNet with different initialisation seeds.

    Different seeds place different weights next to each other in the ACM
    chain (the network is free to learn any assignment), so the spread of the
    resulting accuracy measures how sensitive ACM is to the coupling order.
    """
    result = ColumnOrderAblationResult()
    train_set, test_set = dataset_for("lenet", scale)
    for seed in seeds:
        model = model_for("lenet", "acm", quantizer_bits=quantizer_bits, scale=scale, seed=seed)
        config = TrainingConfig(
            epochs=scale.epochs, batch_size=scale.batch_size, lr=scale.lr, seed=seed
        )
        history = Trainer(model, train_set, test_set, config).fit()
        result.test_error_per_seed.append(history.final_test_error)
    return result
