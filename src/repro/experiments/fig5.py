"""Drivers for the paper's Fig. 5: training accuracy under device constraints.

Two protocols are covered:

* :func:`run_fp32_training` — full-precision training curves (Fig. 5a / 5e):
  error-vs-epoch for the baseline and the three mappings.
* :func:`run_precision_sweep` — final test error as a function of device
  weight precision, with either a linear (Fig. 5b-d) or non-linear
  (Fig. 5f-h) weight-update model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentScale, SCALE_FAST, dataset_for, model_for
from repro.train.trainer import Trainer, TrainingConfig, TrainingHistory


@dataclass
class Fp32Result:
    """Error-vs-epoch curves for FP32 training (Fig. 5a / 5e).

    Attributes
    ----------
    network:
        The network trained ("lenet" or "resnet20" in the paper).
    histories:
        Per-mapping :class:`TrainingHistory`, keyed by mapping name
        (including ``"baseline"``).
    """

    network: str
    histories: Dict[str, TrainingHistory] = field(default_factory=dict)

    def final_test_errors(self) -> Dict[str, float]:
        """Final-epoch test error per mapping."""
        return {name: history.final_test_error for name, history in self.histories.items()}

    def as_rows(self) -> List[str]:
        """Formatted per-mapping summary lines (for benchmark output)."""
        rows = []
        for name, history in self.histories.items():
            rows.append(
                f"{self.network:10s} {name:9s} "
                f"final train err {history.final_train_error:6.2f}%  "
                f"final test err {history.final_test_error:6.2f}%"
            )
        return rows


def run_fp32_training(
    network: str = "lenet",
    mappings: Sequence[str] = ("baseline", "acm", "de", "bc"),
    scale: ExperimentScale = SCALE_FAST,
    seed: int = 1,
) -> Fp32Result:
    """Train ``network`` at full precision with every mapping (Fig. 5a / 5e)."""
    train_set, test_set = dataset_for(network, scale)
    result = Fp32Result(network=network)
    for mapping in mappings:
        model = model_for(network, mapping, quantizer_bits=None, scale=scale, seed=seed)
        config = TrainingConfig(
            epochs=scale.fp32_epochs,
            batch_size=scale.batch_size,
            lr=scale.lr,
            seed=seed,
        )
        trainer = Trainer(model, train_set, test_set, config)
        result.histories[mapping] = trainer.fit()
    return result


@dataclass
class PrecisionSweepResult:
    """Test error versus device weight precision (Fig. 5b-d / 5f-h).

    Attributes
    ----------
    network:
        The network trained.
    nonlinear_update:
        Whether the non-linear device update model was used during training.
    bits:
        The precisions swept.
    test_error:
        ``{mapping: [error % per bit setting]}`` in the order of ``bits``.
    """

    network: str
    nonlinear_update: bool
    bits: List[int] = field(default_factory=list)
    test_error: Dict[str, List[float]] = field(default_factory=dict)

    def error_at(self, mapping: str, bits: int) -> float:
        """Test error of one mapping at one precision."""
        return self.test_error[mapping][self.bits.index(bits)]

    def advantage_over_bc(self, mapping: str = "acm") -> List[float]:
        """Per-precision error reduction of ``mapping`` relative to BC (positive = better)."""
        return [
            bc - other
            for bc, other in zip(self.test_error["bc"], self.test_error[mapping])
        ]

    def as_rows(self) -> List[str]:
        """Formatted rows, one per precision (for benchmark output)."""
        update = "nonlinear" if self.nonlinear_update else "linear"
        rows = []
        for index, bits in enumerate(self.bits):
            cells = "  ".join(
                f"{mapping}={self.test_error[mapping][index]:6.2f}%"
                for mapping in self.test_error
            )
            rows.append(f"{self.network:10s} {update:9s} {bits}-bit  {cells}")
        return rows


def run_precision_sweep(
    network: str = "lenet",
    bits: Sequence[int] = (2, 3, 4, 5, 6),
    mappings: Sequence[str] = ("acm", "de", "bc"),
    nonlinear_update: bool = False,
    nonlinearity: float = 3.0,
    scale: ExperimentScale = SCALE_FAST,
    activation_bits: Optional[int] = 8,
    seed: int = 1,
) -> PrecisionSweepResult:
    """Sweep device weight precision and record final test error per mapping.

    Parameters
    ----------
    network:
        ``"lenet"``, ``"vgg9"`` or ``"resnet20"`` (Fig. 5 columns).
    bits:
        Device precisions to sweep (the paper studies 2-8 bits and highlights
        the <=5-bit regime demonstrated at array scale).
    nonlinear_update:
        ``False`` reproduces the linear-update rows (Fig. 5b-d), ``True`` the
        non-linear rows (Fig. 5f-h).
    nonlinearity:
        Non-linearity coefficient of the device model when enabled.
    activation_bits:
        Activation quantisation (the paper reports 8-bit activations).
    """
    train_set, test_set = dataset_for(network, scale)
    result = PrecisionSweepResult(
        network=network, nonlinear_update=nonlinear_update, bits=list(bits)
    )
    for mapping in mappings:
        errors = []
        for precision in bits:
            model = model_for(
                network, mapping, quantizer_bits=precision, scale=scale, seed=seed
            )
            config = TrainingConfig(
                epochs=scale.epochs,
                batch_size=scale.batch_size,
                lr=scale.lr,
                nonlinear_update=nonlinear_update,
                nonlinearity=nonlinearity,
                activation_bits=activation_bits,
                seed=seed,
            )
            trainer = Trainer(model, train_set, test_set, config)
            history = trainer.fit()
            errors.append(history.final_test_error)
        result.test_error[mapping] = errors
    return result
