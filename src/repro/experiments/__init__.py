"""Experiment drivers reproducing every figure and table of the paper.

Each driver builds the workload (synthetic dataset + network), runs the
relevant training or evaluation protocol for all mappings, and returns a
structured result object whose rows/series correspond to the paper's plot.
The benchmark harness under ``benchmarks/`` simply calls these drivers and
prints the resulting tables, so the same code path backs both interactive use
and the regression benchmarks.

Paper artefact -> driver:

* Fig. 5(a)/(e)   -> :func:`run_fp32_training`        (FP32 error-vs-epoch curves)
* Fig. 5(b)-(d)   -> :func:`run_precision_sweep` with ``nonlinear_update=False``
* Fig. 5(f)-(h)   -> :func:`run_precision_sweep` with ``nonlinear_update=True``
* Fig. 6          -> :func:`run_variation_study`
* Table I         -> :func:`run_system_comparison`
"""

from repro.experiments.config import (
    ExperimentScale,
    SCALE_SMOKE,
    SCALE_FAST,
    SCALE_FULL,
    dataset_for,
    model_for,
)
from repro.experiments.fig5 import (
    Fp32Result,
    PrecisionSweepResult,
    run_fp32_training,
    run_precision_sweep,
)
from repro.experiments.fig6 import VariationStudyResult, run_variation_study
from repro.experiments.table1 import run_system_comparison
from repro.experiments.ablation import (
    PeripheryAblationResult,
    run_periphery_ablation,
    run_column_order_ablation,
)

__all__ = [
    "ExperimentScale",
    "SCALE_SMOKE",
    "SCALE_FAST",
    "SCALE_FULL",
    "dataset_for",
    "model_for",
    "Fp32Result",
    "PrecisionSweepResult",
    "run_fp32_training",
    "run_precision_sweep",
    "VariationStudyResult",
    "run_variation_study",
    "run_system_comparison",
    "PeripheryAblationResult",
    "run_periphery_ablation",
    "run_column_order_ablation",
]
