"""Serve compiled crossbar plans: registry, micro-batching, ensemble requests.

A walkthrough of the plan-serving subsystem (``repro.serve``), end to end:

1. **Publish** — train two small crossbar-mapped models, freeze each into an
   :class:`~repro.runtime.plan.InferencePlan`, and publish the artifacts into
   a :class:`~repro.serve.PlanRegistry` directory (canonically named,
   content-addressable, LRU-cached ``.npz`` files).
2. **Serve deterministic traffic** — start an
   :class:`~repro.serve.InferenceService` and issue concurrent single-image
   ``predict`` requests; the micro-batching scheduler coalesces them into
   stacked plan executions (see the batch statistics it prints) while every
   client gets back exactly the logits a standalone run would produce.
3. **Serve variation-aware traffic** — the same service answers
   ``predict_under_variation`` requests: a seeded Monte-Carlo ensemble over
   device-variation draws with per-request sigma, returning mean logits plus
   a majority-vote class and its vote confidence (the paper's Fig. 6
   protocol, reshaped into a serving scenario).  Repeated requests at the
   same (sigma, seed) operating point reuse the cached sampled weight
   stacks.
4. **Serve over HTTP** — start the stdlib JSON front-end
   (:class:`~repro.serve.PlanServer`) on the same registry and issue real
   wire requests: ``POST /v1/predict`` with base64-packed float64 images
   (bit-equivalent responses), ``POST /v1/predict_under_variation``, and
   ``GET /v1/models`` for the digest catalogue.
5. **Optionally shard across processes** — with ``--workers N`` the same
   plan directory is served by a :class:`~repro.serve.PlanCluster`: N
   worker processes, models partitioned by a stable key hash, so distinct
   models run in true parallel.

The standalone deployment equivalent of this walkthrough is the CLI::

    python -m repro.serve --plan-dir DIR --port 8100 [--workers N]

Run with:  python examples/serving.py [--plan-dir DIR] [--sigma 0.15]
                                      [--workers N]
"""

from __future__ import annotations

import argparse
import json
import tempfile
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.data.synthetic import synthetic_mnist
from repro.models import make_lenet, make_mlp
from repro.runtime.wire import decode_array, encode_array
from repro.serve import InferenceService, PlanCluster, PlanRegistry, PlanServer
from repro.train.evaluate import evaluate_accuracy
from repro.train.trainer import Trainer, TrainingConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--plan-dir", default=None,
                        help="directory for plan artifacts (default: a temp dir)")
    parser.add_argument("--sigma", type=float, default=0.15,
                        help="device-variation sigma for the ensemble requests")
    parser.add_argument("--epochs", type=int, default=2,
                        help="training epochs per published model")
    parser.add_argument("--workers", type=int, default=0,
                        help="also demo a sharded plan cluster with N worker "
                             "processes (default: skip)")
    return parser.parse_args()


def publish_models(registry: PlanRegistry, epochs: int):
    """Train two mapped models and publish their frozen plans."""
    train_set, test_set = synthetic_mnist(samples_per_class=30)
    config = TrainingConfig(epochs=epochs, batch_size=32, lr=0.05,
                            activation_bits=8, seed=1)
    for name, model in (
        ("lenet", make_lenet(mapping="acm", quantizer_bits=4, seed=1)),
        ("mlp", make_mlp(mapping="acm", quantizer_bits=4, seed=1)),
    ):
        Trainer(model, train_set, test_set, config).fit()
        entry = registry.publish_model(model, name, 4, "acm")
        accuracy = evaluate_accuracy(model, test_set, use_runtime=True)
        print(f"published {entry.path.name}  digest={entry.digest()[:12]}  "
              f"test accuracy={accuracy:.1%}")
    return test_set


def serve_deterministic(service: InferenceService, test_set) -> None:
    print()
    print("deterministic traffic: 64 concurrent single-image requests")
    images = test_set.images[:64]
    with ThreadPoolExecutor(max_workers=8) as clients:
        logits = list(clients.map(
            lambda i: service.predict(images[i], model="lenet", bits=4,
                                      mapping="acm"),
            range(len(images)),
        ))
    predictions = np.stack(logits).argmax(axis=-1)
    stats = service.stats["lenet__4b__acm"]
    print(f"  answered {stats.num_requests} requests in {stats.num_batches} "
          f"micro-batches (mean {stats.mean_rows_per_batch:.1f} images/batch)")
    print(f"  first predictions: {predictions[:10].tolist()}")


def serve_ensembles(service: InferenceService, test_set, sigma: float) -> None:
    print()
    print(f"variation-aware traffic: seeded ensembles at sigma={sigma:.0%}")
    for name in ("lenet", "mlp"):
        response = service.predict_under_variation(
            test_set.images[:8], model=name, bits=4, mapping="acm",
            sigma_fraction=sigma, num_samples=25, seed=42,
        )
        stable = (response.confidence == 1.0).sum()
        print(f"  {name:5s}: predictions {response.predictions.tolist()} "
              f"votes {np.round(response.confidence, 2).tolist()} "
              f"({stable}/8 stable under variation)")


def serve_http(registry: PlanRegistry, test_set, sigma: float) -> None:
    """The same stack, reachable over the wire via the HTTP front-end."""
    print()
    print("HTTP front-end: stdlib JSON endpoint over the same registry")
    service = InferenceService(registry, max_batch=32, max_wait_ms=5.0)
    with PlanServer(service) as server:
        print(f"  listening on {server.url}")
        with urllib.request.urlopen(f"{server.url}/v1/models") as response:
            catalogue = json.loads(response.read())["models"]
        for entry in catalogue:
            print(f"  GET /v1/models -> {entry['name']} "
                  f"digest={entry['digest'][:12]}")
        images = test_set.images[:4]
        body = json.dumps({
            "model": "lenet", "bits": 4, "mapping": "acm",
            "images": encode_array(np.asarray(images)),  # base64-packed float64
        }).encode()
        request = urllib.request.Request(f"{server.url}/v1/predict", data=body)
        with urllib.request.urlopen(request) as response:
            logits = decode_array(json.loads(response.read())["logits"])
        in_process = service.predict(images, model="lenet", bits=4, mapping="acm")
        print(f"  POST /v1/predict -> predictions "
              f"{logits.argmax(axis=-1).tolist()} "
              f"(bit-equal to in-process: "
              f"{bool(np.array_equal(logits, in_process))})")
        body = json.dumps({
            "model": "mlp", "bits": 4, "mapping": "acm",
            "images": np.asarray(images).tolist(),  # nested lists work too
            "sigma_fraction": sigma, "num_samples": 25, "seed": 42,
            "encoding": "list",
        }).encode()
        request = urllib.request.Request(
            f"{server.url}/v1/predict_under_variation", data=body
        )
        with urllib.request.urlopen(request) as response:
            ensemble = json.loads(response.read())
        print(f"  POST /v1/predict_under_variation -> predictions "
              f"{ensemble['predictions']} votes "
              f"{[round(v, 2) for v in ensemble['confidence']]}")


def serve_cluster(plan_dir, test_set, num_workers: int) -> None:
    """Shard the same plan directory across worker processes."""
    print()
    print(f"plan cluster: {num_workers} worker processes over {plan_dir}")
    with PlanCluster(plan_dir, num_workers=num_workers) as cluster:
        cluster.wait_ready()
        for entry in cluster.models():
            print(f"  {entry['name']} -> worker {entry['worker']}")
        for name in ("lenet", "mlp"):
            logits = cluster.predict(test_set.images[:8], model=name, bits=4,
                                     mapping="acm")
            print(f"  {name:5s}: cluster predictions "
                  f"{logits.argmax(axis=-1).tolist()}")


def main() -> None:
    args = parse_args()
    plan_dir = args.plan_dir or tempfile.mkdtemp(prefix="repro-plans-")
    print(f"plan directory: {plan_dir}")

    registry = PlanRegistry(plan_dir, capacity=4)
    test_set = publish_models(registry, epochs=args.epochs)

    with InferenceService(registry, max_batch=32, max_wait_ms=5.0) as service:
        serve_deterministic(service, test_set)
        serve_ensembles(service, test_set, args.sigma)

    serve_http(registry, test_set, args.sigma)
    if args.workers > 0:
        serve_cluster(plan_dir, test_set, args.workers)

    print()
    print(f"registry: {len(registry)} artifacts, "
          f"{registry.hits} cache hits / {registry.misses} loads")
    print("deploy standalone with: python -m repro.serve "
          f"--plan-dir {plan_dir} --port 8100 --workers 2")


if __name__ == "__main__":
    main()
