"""One client script, three backends: serving through ``repro.api``.

The walkthrough publishes two trained crossbar-mapped plans into a
registry directory, then runs the *same* typed client script — catalogue
listing, concurrent deterministic predictions, a seeded variation
ensemble, and a Fig. 6-style sigma sweep — against all three backends of
the unified client layer:

1. ``local:DIR``   — in-process :class:`~repro.serve.InferenceService`
   (micro-batching schedulers included);
2. ``http://...``  — a live :class:`~repro.serve.PlanServer` endpoint,
   here with bearer-token auth enabled (the client sends
   ``Authorization: Bearer ...``; a tokenless client gets a typed 401);
3. ``cluster:DIR?workers=N`` — a sharded multi-process
   :class:`~repro.serve.PlanCluster`.

A fourth leg re-serves the same plans through the **integer execution
path** (``local:DIR?precision=int8``): weights are lowered to int8 with
per-channel scales at plan-pin time, activations quantise per batch, and
on grid-aligned inputs the cache-blocked integer kernels produce the same
argmax as the float64 path bit-for-bit (logits within 1e-6; the service
stats prove the integer kernels actually ran).

The script only ever touches :func:`repro.api.connect`, the typed
request/response dataclasses, and the :class:`~repro.api.client.Client`
protocol — the backend is one connect-target string.  At the end the
per-backend float64 results are compared and must be **bit-identical**,
which is the unified layer's core guarantee (and what the
backend-equivalence test matrix enforces in CI).

The standalone deployment equivalent is the CLI::

    python -m repro.serve --plan-dir DIR --port 8100 \\
        [--workers N] [--auth-token SECRET] [--max-queue-depth 64]

Run with:  python examples/serving.py [--plan-dir DIR] [--sigma 0.15]
                                      [--workers 2] [--epochs 2]
"""

from __future__ import annotations

import argparse
import tempfile
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.api import (
    ApiAuthError,
    EnsembleRequest,
    PredictRequest,
    connect,
    variation_sweep_via_client,
)
from repro.data.synthetic import synthetic_mnist
from repro.models import make_lenet, make_mlp
from repro.serve import InferenceService, PlanRegistry, PlanServer
from repro.train.evaluate import evaluate_accuracy
from repro.train.trainer import Trainer, TrainingConfig

AUTH_TOKEN = "example-shared-secret"


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--plan-dir", default=None,
                        help="directory for plan artifacts (default: a temp dir)")
    parser.add_argument("--sigma", type=float, default=0.15,
                        help="device-variation sigma for the ensemble requests")
    parser.add_argument("--epochs", type=int, default=2,
                        help="training epochs per published model")
    parser.add_argument("--workers", type=int, default=2,
                        help="cluster worker processes for the cluster: "
                             "backend (0 skips the cluster demo)")
    return parser.parse_args()


def publish_models(registry: PlanRegistry, epochs: int):
    """Train two mapped models and publish their frozen plans."""
    train_set, test_set = synthetic_mnist(samples_per_class=30)
    config = TrainingConfig(epochs=epochs, batch_size=32, lr=0.05,
                            activation_bits=8, seed=1)
    for name, model in (
        ("lenet", make_lenet(mapping="acm", quantizer_bits=4, seed=1)),
        ("mlp", make_mlp(mapping="acm", quantizer_bits=4, seed=1)),
    ):
        Trainer(model, train_set, test_set, config).fit()
        entry = registry.publish_model(model, name, 4, "acm")
        accuracy = evaluate_accuracy(model, test_set, use_runtime=True)
        print(f"published {entry.path.name}  digest={entry.digest()[:12]}  "
              f"test accuracy={accuracy:.1%}")
    return test_set


def run_client_script(client, test_set, sigma: float) -> dict:
    """The one script every backend serves; returns its float64 results."""
    # 1. Catalogue: every backend lists the same digests.
    for info in client.models():
        shard = f"  worker {info.worker}" if info.worker is not None else ""
        print(f"    {info.name:24s} digest={info.digest[:12]}{shard}")

    # 2. Concurrent deterministic traffic (micro-batched server-side).
    images = test_set.images[:32]
    with ThreadPoolExecutor(max_workers=8) as pool:
        logits = np.stack(list(pool.map(
            lambda i: client.predict(PredictRequest(
                images=images[i], model="lenet", mapping="acm", bits=4,
            )).logits,
            range(len(images)),
        )))
    print(f"    predict: 32 concurrent single-image requests -> "
          f"predictions {logits.argmax(axis=-1)[:10].tolist()}...")

    # 3. One pre-batched request: a fixed execution geometry, so the
    # logits must be *bit-identical* on every backend.
    batch_logits = client.predict(PredictRequest(
        images=images, model="lenet", mapping="acm", bits=4,
    )).logits

    # 4. A seeded variation ensemble (the Fig. 6 protocol as one request).
    ensemble = client.ensemble(EnsembleRequest(
        images=test_set.images[:8], model="mlp", mapping="acm", bits=4,
        sigma_fraction=sigma, num_samples=25, seed=42,
    ))
    stable = int((np.asarray(ensemble.confidence) == 1.0).sum())
    print(f"    ensemble @ sigma={sigma:.0%}: predictions "
          f"{np.asarray(ensemble.predictions).tolist()} "
          f"({stable}/8 stable under variation)")

    # 5. The sigma sweep, through the same facade.
    sweep = variation_sweep_via_client(
        client, test_set.images[:16], test_set.labels[:16],
        model="lenet", mapping="acm", bits=4,
        sigmas=(0.0, sigma), num_samples=15, seed=7,
    )
    for row in sweep.as_rows():
        print(f"    {row}")

    return {
        "batch_logits": np.asarray(batch_logits),
        "ensemble_mean": np.asarray(ensemble.mean_logits),
        "sweep_accuracy": np.asarray(sweep.accuracies),
        "concurrent_logits": logits,
    }


def main() -> None:
    args = parse_args()
    plan_dir = args.plan_dir or tempfile.mkdtemp(prefix="repro-plans-")
    print(f"plan directory: {plan_dir}")

    registry = PlanRegistry(plan_dir, capacity=4)
    test_set = publish_models(registry, epochs=args.epochs)
    results = {}

    # Backend 1: in-process.
    target = f"local:{plan_dir}?max_batch=32&max_wait_ms=5"
    print(f"\n[local] connect({target!r})")
    with connect(target) as client:
        results["local"] = run_client_script(client, test_set, args.sigma)

    # Backend 2: a live HTTP endpoint with bearer-token auth.
    service = InferenceService(registry, max_batch=32, max_wait_ms=5.0)
    with PlanServer(service, own_backend=True,
                    auth_token=AUTH_TOKEN) as server:
        print(f"\n[http] connect({server.url!r}, token=...)")
        try:
            connect(server.url).models()
        except ApiAuthError as error:
            print(f"    without token: typed {type(error).__name__} "
                  f"(code={error.code}) — as it should be")
        with connect(server.url, token=AUTH_TOKEN) as client:
            results["http"] = run_client_script(client, test_set, args.sigma)

    # Backend 3: a sharded multi-process cluster.
    if args.workers > 0:
        target = f"cluster:{plan_dir}?workers={args.workers}"
        print(f"\n[cluster] connect({target!r})")
        with connect(target) as client:
            client.backend.wait_ready()
            results["cluster"] = run_client_script(client, test_set, args.sigma)

    # Backend 4: the same plans through the integer execution path.
    target = f"local:{plan_dir}?precision=int8"
    print(f"\n[int8] connect({target!r})")
    with connect(target) as client:
        # Snap the images onto a dyadic grid (k / 16): such activations
        # quantise losslessly (these images span roughly ±4, so |k| stays
        # well inside int8), and the integer kernels engage instead of
        # falling back to float — exactly what a fixed-point input
        # pipeline (uint8 images scaled by a power of two) provides.
        images = np.round(test_set.images[:32] * 16) / 16
        int_logits = np.asarray(client.predict(PredictRequest(
            images=images, model="lenet", mapping="acm", bits=4,
        )).logits)
        reference = registry.get("lenet", 4, "acm").run(images)
        agree = bool(np.array_equal(int_logits.argmax(axis=-1),
                                    reference.argmax(axis=-1)))
        delta = float(np.abs(int_logits - reference).max())
        precision_stats = client.stats()["lenet__4b__acm"]["precision"]
        print(f"    int8 vs float64: argmax identical={agree}  "
              f"max |logit delta|={delta:.2e}")
        print(f"    integer path engaged: {precision_stats}")

    print("\nbackend equivalence (same script through every backend):")
    reference = results["local"]
    for backend, result in results.items():
        if backend == "local":
            continue
        # Fixed-geometry requests (one batch, seeded ensembles, the sweep)
        # are bit-identical.  The *concurrent* single-image traffic
        # coalesces into backend-specific micro-batch geometries, where
        # BLAS blocking may differ in the last bits — 1e-10 is the serving
        # equivalence bar (same as the test suite's).
        exact = all(
            np.array_equal(result[key], reference[key])
            for key in ("batch_logits", "ensemble_mean", "sweep_accuracy")
        )
        coalesced = bool(np.allclose(
            result["concurrent_logits"], reference["concurrent_logits"],
            atol=1e-10, rtol=0,
        ))
        print(f"  local == {backend}: bit-identical={exact}  "
              f"coalesced traffic within 1e-10: {coalesced}")

    print(f"\ndeploy standalone with: python -m repro.serve "
          f"--plan-dir {plan_dir} --port 8100 --workers 2 "
          f"--auth-token SECRET --max-queue-depth 64 --precision int8")


if __name__ == "__main__":
    main()
