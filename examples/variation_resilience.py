"""Device-variation resilience study (the workload behind Fig. 6 and Table I).

Part 1 trains a crossbar-mapped CNN at a chosen device precision with each
mapping, then evaluates inference accuracy while injecting zero-mean Gaussian
conductance variation of increasing strength — without any retraining or
variation-aware fine-tuning, exactly the deployment scenario the paper
targets.

Part 2 prints the system-level (Table I style) comparison of the three
mappings for a two-layer MLP accelerator, showing that ACM's resilience comes
at no hardware cost relative to BC, while DE pays roughly double the array.

Run with:  python examples/variation_resilience.py [--bits 3] [--sigmas 0 0.1 0.2]
"""

from __future__ import annotations

import argparse

from repro.experiments import SCALE_FAST, run_system_comparison, run_variation_study
from repro.hardware.report import SystemReport


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", default="lenet", choices=("lenet", "vgg9", "resnet20", "mlp"),
                        help="network to train and perturb")
    parser.add_argument("--bits", type=int, nargs="+", default=[3],
                        help="device precisions to study")
    parser.add_argument("--sigmas", type=float, nargs="+",
                        default=[0.0, 0.05, 0.10, 0.15, 0.20, 0.25],
                        help="variation sigmas as fractions of the conductance range")
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    print("=" * 78)
    print(f"Part 1 — inference accuracy of {args.network} under device variation")
    print("=" * 78)
    study = run_variation_study(
        args.network, bits=tuple(args.bits), sigmas=tuple(args.sigmas), scale=SCALE_FAST
    )
    for row in study.as_rows():
        print(row)
    print()
    for bits in study.bits:
        sigma = args.sigmas[len(args.sigmas) // 2]
        print(f"most resilient mapping at {bits}-bit devices, sigma={sigma:.0%}: "
              f"{study.best_mapping_at(bits, sigma).upper()}")

    print()
    print("=" * 78)
    print("Part 2 — system-level cost of each mapping (two-layer MLP accelerator)")
    print("=" * 78)
    report = run_system_comparison(training_samples=1000)
    print(report.as_text())
    print()
    for label in SystemReport.ROW_LABELS:
        print(f"{label:28s} DE/ACM = {report.ratio(label, 'de', 'acm'):5.2f}   "
              f"BC/ACM = {report.ratio(label, 'bc', 'acm'):5.2f}")
    print()
    print("ACM matches BC's hardware exactly while DE pays for twice the columns;")
    print("combined with Part 1 this reproduces the paper's resource/resilience trade-off.")


if __name__ == "__main__":
    main()
