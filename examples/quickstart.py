"""Quickstart: map a signed weight matrix to a crossbar and train a mapped layer.

This example walks through the core API of the reproduction:

1. Build the ACM / DE / BC periphery matrices and check the paper's
   sufficient conditions (Eq. 3).
2. Decompose an arbitrary signed matrix ``W`` into ``S @ M`` with ``M >= 0``
   and verify the reconstruction.
3. Train a small crossbar-mapped network on the synthetic digits task with
   4-bit devices and compare the three mappings.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.data import synthetic_mnist
from repro.mapping import (
    acm_periphery,
    bc_periphery,
    check_sufficient_conditions,
    de_periphery,
    decompose,
    reconstruct,
)
from repro.models import make_mlp
from repro.train import Trainer, TrainingConfig


def demonstrate_decomposition() -> None:
    """Show that any signed matrix factors through each periphery matrix."""
    print("=" * 70)
    print("1. Periphery matrices and the W = S @ M decomposition")
    print("=" * 70)
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(4, 6))

    for periphery in (acm_periphery(4), de_periphery(4), bc_periphery(4)):
        report = check_sufficient_conditions(periphery)
        factor = decompose(weights, periphery)
        error = np.abs(reconstruct(factor, periphery) - weights).max()
        print(
            f"{periphery.name.upper():4s}: columns={periphery.num_columns}  "
            f"rank(S)={report.rank}  positive-null-vector={report.has_positive_null_vector}  "
            f"min(M)={factor.min():.3f}  max|S@M - W|={error:.2e}"
        )
    print()


def train_mapped_networks() -> None:
    """Train a small MLP with each mapping at 4-bit device precision."""
    print("=" * 70)
    print("2. Training a crossbar-mapped MLP with 4-bit devices")
    print("=" * 70)
    train_set, test_set = synthetic_mnist(samples_per_class=40)
    input_size = int(np.prod(train_set.sample_shape))

    for mapping in ("baseline", "acm", "de", "bc"):
        bits = None if mapping == "baseline" else 4
        model = make_mlp(
            input_size=input_size,
            hidden_sizes=(64,),
            num_classes=train_set.num_classes,
            mapping=mapping,
            quantizer_bits=bits,
            seed=1,
        )
        config = TrainingConfig(epochs=6, batch_size=32, lr=0.05, seed=0)
        history = Trainer(model, train_set, test_set, config).fit()
        print(
            f"{mapping:9s}  final train error {history.final_train_error:6.2f}%   "
            f"final test error {history.final_test_error:6.2f}%"
        )
    print()
    print("All mappings implement the same signed MVM; ACM does so at BC's")
    print("hardware cost while recovering most of DE's dynamic range.")


if __name__ == "__main__":
    demonstrate_decomposition()
    train_mapped_networks()
