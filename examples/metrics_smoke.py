"""Metrics scrape smoke test: a live ``/metrics`` endpoint under traffic.

Publishes one small crossbar-mapped plan, serves it with
:class:`~repro.serve.PlanServer`, drives a handful of deterministic and
ensemble requests through the typed HTTP client, then scrapes
``GET /metrics`` exactly like a Prometheus server would and checks the
exposition:

* the content type is the text format (version 0.0.4);
* the serving families are present and typed (``repro_requests_total``,
  ``repro_request_latency_seconds``, ``repro_http_requests_total``);
* the request counters actually counted the traffic just sent;
* every histogram series ends in a ``+Inf`` bucket.

Exits non-zero on any violation, so CI can run it as a one-line smoke
step:  python examples/metrics_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
import urllib.request

import numpy as np

from repro.api import EnsembleRequest, PredictRequest, connect
from repro.models import make_mlp
from repro.serve import InferenceService, PlanRegistry, PlanServer

NUM_PREDICTS = 5


def scrape(url: str) -> tuple:
    with urllib.request.urlopen(f"{url}/metrics") as response:
        return (response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


def check(condition: bool, what: str) -> None:
    if not condition:
        print(f"FAIL: {what}")
        sys.exit(1)
    print(f"  ok: {what}")


def main() -> int:
    with tempfile.TemporaryDirectory() as directory:
        registry = PlanRegistry(directory)
        model = make_mlp(input_size=16, hidden_sizes=(6,), mapping="acm",
                         quantizer_bits=4, seed=0)
        registry.publish_model(model, "mlp", 4, "acm")
        service = InferenceService(PlanRegistry(directory), max_batch=16)
        server = PlanServer(service, own_backend=True).start()
        try:
            images = np.random.default_rng(7).normal(size=(4, 16))
            with connect(server.url) as client:
                for _ in range(NUM_PREDICTS):
                    client.predict(PredictRequest(
                        images=images, model="mlp", mapping="acm", bits=4))
                client.ensemble(EnsembleRequest(
                    images=images, model="mlp", mapping="acm", bits=4,
                    sigma_fraction=0.1, num_samples=5, seed=1))

            content_type, text = scrape(server.url)
            print(f"scraped {len(text.splitlines())} lines from "
                  f"{server.url}/metrics")
            check(content_type == "text/plain; version=0.0.4; charset=utf-8",
                  f"content type is the text format ({content_type})")
            check(text.endswith("\n"), "exposition ends with a newline")
            for family, family_type in (
                ("repro_requests_total", "counter"),
                ("repro_http_requests_total", "counter"),
                ("repro_request_latency_seconds", "histogram"),
                ("repro_scheduler_queue_depth", "gauge"),
            ):
                check(f"# TYPE {family} {family_type}" in text,
                      f"{family} is exposed as a {family_type}")

            predict_lines = [
                line for line in text.splitlines()
                if line.startswith("repro_requests_total")
                and 'lane="predict"' in line and 'outcome="ok"' in line
            ]
            check(len(predict_lines) == 1, "one predict-lane request series")
            check(float(predict_lines[0].rsplit(" ", 1)[1]) >= NUM_PREDICTS,
                  f"request counter saw the {NUM_PREDICTS} predicts")

            bucket_lines = [line for line in text.splitlines()
                            if "_bucket{" in line]
            check(any('le="+Inf"' in line for line in bucket_lines),
                  "histograms carry a terminal +Inf bucket")
        finally:
            server.close()
    print("metrics smoke: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
