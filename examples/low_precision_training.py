"""Low-precision crossbar training study (the workload behind Fig. 5).

Trains the LeNet-style CNN on the synthetic digits task at several device
precisions, with both the ideal (linear) and the non-linear symmetric weight
update, and prints the error-versus-precision table for ACM, DE and BC.

This is the scenario the paper's introduction motivates: analog crossbar
devices demonstrated at array scale offer only a handful of conductance
states (<= 5 bits) and a non-linear pulse response, and the choice of mapping
determines how much accuracy survives those constraints.

Run with:  python examples/low_precision_training.py [--bits 2 3 4] [--epochs 8]
"""

from __future__ import annotations

import argparse

from repro.experiments import SCALE_FAST, run_precision_sweep
from repro.experiments.config import ExperimentScale


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bits", type=int, nargs="+", default=[2, 3, 4, 6],
                        help="device weight precisions to sweep")
    parser.add_argument("--epochs", type=int, default=SCALE_FAST.epochs,
                        help="training epochs per configuration")
    parser.add_argument("--samples-per-class", type=int, default=SCALE_FAST.samples_per_class,
                        help="synthetic dataset size per class")
    parser.add_argument("--nonlinearity", type=float, default=2.0,
                        help="device non-linearity coefficient for the non-linear study")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    scale = ExperimentScale(
        name="example",
        samples_per_class=args.samples_per_class,
        epochs=args.epochs,
        fp32_epochs=args.epochs,
        batch_size=SCALE_FAST.batch_size,
        lr=SCALE_FAST.lr,
        variation_samples=SCALE_FAST.variation_samples,
        resnet_blocks=SCALE_FAST.resnet_blocks,
    )

    print("=" * 78)
    print("Linear (ideal) weight update — test error vs device precision")
    print("=" * 78)
    linear = run_precision_sweep(
        "lenet", bits=args.bits, nonlinear_update=False, scale=scale
    )
    for row in linear.as_rows():
        print(row)

    print()
    print("=" * 78)
    print("Non-linear symmetric weight update — test error vs device precision")
    print("=" * 78)
    nonlinear = run_precision_sweep(
        "lenet", bits=args.bits, nonlinear_update=True,
        nonlinearity=args.nonlinearity, scale=scale,
    )
    for row in nonlinear.as_rows():
        print(row)

    print()
    print("ACM error reduction vs BC (positive numbers mean ACM is better):")
    for bits, linear_gain, nonlinear_gain in zip(
        args.bits, linear.advantage_over_bc("acm"), nonlinear.advantage_over_bc("acm")
    ):
        print(f"  {bits}-bit devices: linear {linear_gain:+6.2f}%   non-linear {nonlinear_gain:+6.2f}%")


if __name__ == "__main__":
    main()
