"""Unit and property-based tests for the synapse device models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.xbar.device import (
    LinearDevice,
    LinearUpdateRule,
    NonlinearDevice,
    NonlinearUpdateRule,
)
from repro.xbar.quantization import ConductanceRange


class TestLinearDevice:
    def test_realises_exact_update_inside_range(self):
        device = LinearDevice(ConductanceRange(0.0, 1.0))
        realised = device.realised_update(np.array([0.5]), np.array([0.2]))
        np.testing.assert_allclose(realised, [0.2])

    def test_saturates_at_bounds(self):
        device = LinearDevice(ConductanceRange(0.0, 1.0))
        np.testing.assert_allclose(
            device.realised_update(np.array([0.9]), np.array([0.5])), [0.1]
        )
        np.testing.assert_allclose(
            device.realised_update(np.array([0.1]), np.array([-0.5])), [-0.1]
        )

    def test_curves_are_linear(self):
        device = LinearDevice(ConductanceRange(0.0, 1.0))
        curve = device.potentiation_curve(11)
        np.testing.assert_allclose(np.diff(curve), np.full(10, 0.1))
        depression = device.depression_curve(11)
        np.testing.assert_allclose(depression, curve[::-1])


class TestNonlinearDevice:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            NonlinearDevice(nonlinearity=-1.0)
        with pytest.raises(ValueError):
            NonlinearDevice(num_pulses=1)

    def test_potentiation_curve_endpoints(self):
        device = NonlinearDevice(nonlinearity=3.0, range=ConductanceRange(0.0, 1.0))
        curve = device.potentiation_curve(100)
        assert curve[0] == pytest.approx(0.0)
        assert curve[-1] == pytest.approx(1.0, abs=1e-9)

    def test_potentiation_curve_is_monotone_and_concave(self):
        device = NonlinearDevice(nonlinearity=4.0)
        curve = device.potentiation_curve(50)
        steps = np.diff(curve)
        assert (steps > 0).all()
        assert (np.diff(steps) < 1e-12).all()  # decreasing step size

    def test_depression_mirrors_potentiation(self):
        device = NonlinearDevice(nonlinearity=2.5, range=ConductanceRange(0.0, 2.0))
        potentiation = device.potentiation_curve(40)
        depression = device.depression_curve(40)
        np.testing.assert_allclose(depression, 2.0 - potentiation, atol=1e-12)

    def test_step_sizes_shrink_toward_their_rail(self):
        device = NonlinearDevice(nonlinearity=3.0)
        low, high = np.array([0.1]), np.array([0.9])
        assert device.potentiation_step(low)[0] > device.potentiation_step(high)[0]
        assert device.depression_step(high)[0] > device.depression_step(low)[0]

    def test_symmetric_up_down_steps_at_mirrored_states(self):
        """The paper assumes symmetric increase/decrease characteristics."""
        device = NonlinearDevice(nonlinearity=3.0)
        conductance = np.array([0.3])
        mirrored = np.array([0.7])
        assert device.potentiation_step(conductance)[0] == pytest.approx(
            device.depression_step(mirrored)[0]
        )

    def test_realised_update_sign_matches_request(self):
        device = NonlinearDevice(nonlinearity=3.0)
        up = device.realised_update(np.array([0.5]), np.array([0.05]))
        down = device.realised_update(np.array([0.5]), np.array([-0.05]))
        assert up[0] > 0
        assert down[0] < 0

    def test_realised_update_clipped_to_range(self):
        device = NonlinearDevice(nonlinearity=2.0, range=ConductanceRange(0.0, 1.0))
        realised = device.realised_update(np.array([0.95]), np.array([1.0]))
        assert 0.95 + realised[0] <= 1.0 + 1e-12

    def test_small_nonlinearity_approaches_linear_device(self):
        nonlinear = NonlinearDevice(nonlinearity=1e-6, num_pulses=64)
        linear = LinearDevice()
        conductance = np.array([0.4])
        delta = np.array([0.01])
        np.testing.assert_allclose(
            nonlinear.realised_update(conductance, delta),
            linear.realised_update(conductance, delta),
            atol=1e-4,
        )

    @given(
        conductance=st.floats(0.0, 1.0, allow_nan=False),
        delta=st.floats(-0.3, 0.3, allow_nan=False),
        nonlinearity=st.floats(0.1, 6.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_realised_update_never_leaves_range(self, conductance, delta, nonlinearity):
        device = NonlinearDevice(nonlinearity=nonlinearity)
        realised = device.realised_update(np.array([conductance]), np.array([delta]))
        final = conductance + realised[0]
        assert -1e-9 <= final <= 1.0 + 1e-9

    @given(
        conductance=st.floats(0.05, 0.95, allow_nan=False),
        delta=st.floats(0.001, 0.1, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_realised_magnitude_bounded_by_steepest_step(self, conductance, delta):
        """The realised step cannot exceed the steepest point of the pulse curve.

        The exponential pulse response has its largest per-pulse step at the
        start of the traverse, where it is ``nu / (1 - e^-nu)`` times the
        nominal linear step; the realised update is bounded accordingly.
        """
        nu = 3.0
        device = NonlinearDevice(nonlinearity=nu, num_pulses=64)
        realised = device.realised_update(np.array([conductance]), np.array([delta]))[0]
        steepest_factor = nu / (1.0 - np.exp(-nu))
        assert realised <= delta * steepest_factor * 1.05 + 1e-12


class TestUpdateRules:
    def test_linear_rule_wraps_device(self):
        rule = LinearUpdateRule()
        np.testing.assert_allclose(
            rule.apply(np.array([0.5]), np.array([0.1])), [0.1]
        )

    def test_nonlinear_rule_wraps_device(self):
        rule = NonlinearUpdateRule(NonlinearDevice(nonlinearity=3.0))
        result = rule.apply(np.array([0.5]), np.array([0.1]))
        assert result.shape == (1,)
        assert result[0] != pytest.approx(0.1)  # distorted by the device

    def test_rules_have_default_devices(self):
        assert LinearUpdateRule().device is not None
        assert NonlinearUpdateRule().device is not None
