"""Scrape-validation of the committed Grafana dashboard.

``dashboards/grafana-repro-serving.json`` is an exemplar, but it must not
rot: every ``repro_*`` name a panel expression references has to exist in
an actual ``/metrics`` exposition.  The catalogue of valid names is built
*live* — by constructing the real components (in-process service, HTTP
edge, one-worker cluster) and collecting their metric families — so a
metric rename that forgets the dashboard fails here, not on a silently
empty Grafana panel.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Set

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import InferenceService, PlanCluster, PlanRegistry
from repro.serve.http import PlanServer

DASHBOARD = (Path(__file__).resolve().parent.parent
             / "dashboards" / "grafana-repro-serving.json")

#: Metric-name tokens inside a PromQL expression.  Function names, label
#: names, and durations never start with ``repro_``, so this is exact.
METRIC_NAME = re.compile(r"\brepro_[a-z0-9_]+")


def _family_names(registry: MetricsRegistry) -> Set[str]:
    names = set()
    for family in registry.collect():
        names.add(family.name)
        if family.type == "histogram":
            # The exposition renders histograms as these three series;
            # PromQL queries (histogram_quantile, averages) target them.
            names.update(f"{family.name}_{suffix}"
                         for suffix in ("bucket", "sum", "count"))
    return names


@pytest.fixture(scope="module")
def exported_names(tmp_path_factory):
    """Every metric name the stack actually exports, scraped live."""
    directory = tmp_path_factory.mktemp("plans")
    service = InferenceService(PlanRegistry(directory))
    server = PlanServer(service, own_backend=False)
    cluster = PlanCluster(directory, num_workers=1)
    try:
        return (_family_names(service.metrics)
                | _family_names(server.metrics)
                | _family_names(cluster.metrics))
    finally:
        cluster.close()
        server.close()
        service.close()


@pytest.fixture(scope="module")
def dashboard():
    with DASHBOARD.open() as handle:
        return json.load(handle)


def _expressions(dashboard):
    for panel in dashboard["panels"]:
        for target in panel.get("targets", ()):
            yield panel["title"], target["expr"]


class TestDashboard:
    def test_panels_exist_and_rows_are_well_formed(self, dashboard):
        panels = dashboard["panels"]
        assert panels, "dashboard has no panels"
        ids = [panel["id"] for panel in panels]
        assert len(ids) == len(set(ids)), "panel ids must be unique"
        graph_panels = [p for p in panels if p["type"] != "row"]
        assert len(graph_panels) >= 10
        for panel in graph_panels:
            assert panel.get("targets"), f"panel {panel['title']!r} is empty"
            for target in panel["targets"]:
                assert target["expr"].strip()

    def test_every_expression_references_a_real_metric(
        self, dashboard, exported_names
    ):
        missing = []
        seen_any = False
        for title, expr in _expressions(dashboard):
            names = METRIC_NAME.findall(expr)
            assert names, f"panel {title!r} expr references no repro_ metric"
            seen_any = True
            for name in names:
                if name not in exported_names:
                    missing.append((title, name))
        assert seen_any
        assert not missing, (
            "dashboard references metrics the stack does not export "
            f"(renamed or misspelled): {missing}"
        )

    def test_ring_replication_metrics_are_charted(self, dashboard):
        # The replication story must be observable out of the box: the
        # dashboard charts the replica gauges and the failover counter.
        referenced = {name
                      for _, expr in _expressions(dashboard)
                      for name in METRIC_NAME.findall(expr)}
        assert {"repro_ring_replicas",
                "repro_ring_model_replicas_live",
                "repro_ring_failover_total",
                "repro_ring_routed_total"} <= referenced

    def test_study_and_rollout_metrics_are_charted(self, dashboard):
        # The experiment-as-a-service plane must be observable out of the
        # box: cell throughput/retries, job states, checkpoint writes, and
        # the canary/rollout routing counters all get panels.
        referenced = {name
                      for _, expr in _expressions(dashboard)
                      for name in METRIC_NAME.findall(expr)}
        assert {"repro_study_cells_total",
                "repro_study_cell_retries_total",
                "repro_study_checkpoint_writes_total",
                "repro_study_jobs",
                "repro_canary_requests_total",
                "repro_rollout_flips_total",
                "repro_rollout_active_version",
                "repro_rollout_canary_fraction"} <= referenced
