"""Differential suite for the integer execution path.

Three layers of evidence, mirroring the tinygrad-style method of checking
every new kernel against a reference implementation:

* **Kernel vs reference** — hypothesis-driven equivalence of the blocked
  :func:`~repro.runtime.intkernels.int_matmul` against a pure int64
  matmul over random shapes, magnitudes, blockings (including ``block=1``
  and blocks that do not divide K), carrier dtypes, and non-contiguous
  operand views.  Exactness is bit-identity, not a tolerance.
* **Quantisation algebra** — the weight decomposition reconstructs the
  grid weights it accepts and refuses everything it cannot certify; the
  activation quantiser's ``exact`` flag is trustworthy by construction
  (power-of-two scaling is exact in binary floating point, the grid
  second-chance is verified by exact reconstruction).
* **Plan level** — int8/int16-lowered plans agree with their float64
  twins across mappings x device bits x architectures: argmax
  bit-identical, logits within 1e-6 (observed ~1e-14), and the integer
  path demonstrably taken on grid-aligned inputs.

The ``cast``/lowering regression tests pin the satellite bugfix: precision
conversions move exactly the declared tensors (``_cast_fields``), so a
cast can never corrupt the integer decomposition and lowering can never be
applied twice.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import make_lenet, make_mlp, make_resnet20, make_vgg9
from repro.runtime import compile_model, optimize_plan
from repro.runtime.intkernels import (
    INT_PRECISIONS,
    QuantizedWeight,
    activation_qmax,
    compute_dtype,
    dequantize,
    int_matmul,
    quantize_activations,
    quantize_weight,
    requantize,
)
from repro.runtime.plan import ConvOp, DenseOp, IntConvOp, IntDenseOp, _IntOpMixin


def reference_matmul(qa: np.ndarray, qb: np.ndarray) -> np.ndarray:
    return qa.astype(np.int64) @ qb.astype(np.int64).T


# ---------------------------------------------------------------------- #
# Kernel vs int64 reference
# ---------------------------------------------------------------------- #
class TestIntMatmulDifferential:
    @given(
        data=st.data(),
        rows=st.integers(0, 12),
        cols=st.integers(0, 12),
        depth=st.integers(0, 64),
        precision=st.sampled_from(INT_PRECISIONS),
        block=st.one_of(st.none(), st.integers(1, 70)),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_reference_over_shapes_and_blockings(
        self, data, rows, cols, depth, precision, block
    ):
        qmax = activation_qmax(precision)
        qa = data.draw(
            st.lists(
                st.lists(st.integers(-qmax, qmax), min_size=depth, max_size=depth),
                min_size=rows, max_size=rows,
            ).map(lambda v: np.array(v, dtype=np.float64).reshape(rows, depth))
        )
        qb = data.draw(
            st.lists(
                st.lists(st.integers(-qmax, qmax), min_size=depth, max_size=depth),
                min_size=cols, max_size=cols,
            ).map(lambda v: np.array(v, dtype=np.float64).reshape(cols, depth))
        )
        result = int_matmul(qa, qb, precision, block=block)
        np.testing.assert_array_equal(result, reference_matmul(qa, qb))

    @given(
        seed=st.integers(0, 2**31),
        precision=st.sampled_from(INT_PRECISIONS),
        carrier=st.sampled_from(["int64", "int16", "float32", "float64"]),
        block=st.one_of(st.none(), st.just(1), st.integers(2, 50)),
    )
    @settings(max_examples=60, deadline=None)
    def test_noncontiguous_views_and_carrier_dtypes(
        self, seed, precision, carrier, block
    ):
        rng = np.random.default_rng(seed)
        bound = min(activation_qmax(precision), 120)  # fits every carrier
        base_a = rng.integers(-bound, bound + 1, size=(14, 90))
        base_b = rng.integers(-bound, bound + 1, size=(10, 90))
        # Strided views: every other row, every third column.
        qa = base_a.astype(carrier)[::2, ::3]
        qb = base_b.astype(carrier)[::2, ::3]
        result = int_matmul(qa, qb, precision, block=block)
        np.testing.assert_array_equal(result, reference_matmul(qa, qb))

    def test_block_argument_cannot_break_exactness(self):
        # A block far beyond the exactness bound must be clamped, not obeyed.
        rng = np.random.default_rng(0)
        qa = rng.integers(-127, 128, size=(8, 3000)).astype(np.float64)
        qb = rng.integers(-127, 128, size=(6, 3000)).astype(np.float64)
        for block in (1, 7, 1000, 10**9):
            np.testing.assert_array_equal(
                int_matmul(qa, qb, "int8", block=block),
                reference_matmul(qa, qb),
            )

    def test_int32_overflow_edge_widens_to_int64(self):
        # Max-magnitude int8 operands over a reduction long enough that the
        # true accumulator exceeds int32: the kernel must widen, not wrap.
        depth = 2**31 // (127 * 127) + 7
        qa = np.full((2, depth), 127.0)
        qb = np.full((3, depth), -127.0)
        result = int_matmul(qa, qb, "int8", a_max=127, b_max=127)
        assert result.dtype == np.int64
        assert (result == -depth * 127 * 127).all()
        assert int(result.min()) < np.iinfo(np.int32).min  # really did overflow

    def test_small_reductions_stay_int32(self):
        result = int_matmul(
            np.full((2, 4), 127.0), np.full((2, 4), 127.0), "int8"
        )
        assert result.dtype == np.int32

    def test_products_beyond_float32_exact_range_still_exact(self):
        # int16 x int16 products reach ~1e9 > 2^24: the kernel must compute
        # them in float64 even though a tiny block was requested.
        qa = np.full((3, 5), 32767.0)
        qb = np.full((4, 5), 32767.0)
        np.testing.assert_array_equal(
            int_matmul(qa, qb, "int16", block=1), reference_matmul(qa, qb)
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            int_matmul(np.zeros((2, 3)), np.zeros((2, 4)), "int8")
        with pytest.raises(ValueError):
            int_matmul(np.zeros(3), np.zeros((2, 3)), "int8")
        with pytest.raises(ValueError):
            int_matmul(np.zeros((2, 3)), np.zeros((2, 3)), "int4")


# ---------------------------------------------------------------------- #
# Quantisation helpers
# ---------------------------------------------------------------------- #
class TestQuantizeActivations:
    @given(
        seed=st.integers(0, 2**31),
        precision=st.sampled_from(INT_PRECISIONS),
        exponent=st.integers(-8, 0),
    )
    @settings(max_examples=50, deadline=None)
    def test_dyadic_grids_are_lossless(self, seed, precision, exponent):
        rng = np.random.default_rng(seed)
        qmax = activation_qmax(precision)
        denominator = 2 ** -exponent * 8
        x = rng.integers(-min(qmax, 500), min(qmax, 500), size=(4, 9)) / denominator
        q, scale, exact = quantize_activations(x, precision)
        assert exact
        assert q.dtype == compute_dtype(precision)
        np.testing.assert_array_equal(
            np.asarray(q, dtype=np.float64) * scale, x
        )

    def test_multiplicative_grid_second_chance(self):
        # Not dyadic, but every value is k * step with the unit present:
        # the grid branch certifies it by exact reconstruction.
        step = 0.013
        x = np.array([[1.0, -4.0, 9.0], [0.0, 2.0, -7.0]]) * step
        q, scale, exact = quantize_activations(x, "int8")
        assert exact and scale == step
        np.testing.assert_array_equal(np.asarray(q, np.float64) * scale, x)

    def test_generic_floats_fall_back(self):
        x = np.random.default_rng(3).normal(size=(5, 7))
        _, _, exact = quantize_activations(x, "int8")
        assert not exact

    def test_zero_batch_is_exact(self):
        q, scale, exact = quantize_activations(np.zeros((2, 3)), "int8")
        assert exact and scale == 1.0 and not q.any()

    def test_nonfinite_falls_back(self):
        for value in (np.inf, -np.inf, np.nan):
            _, _, exact = quantize_activations(
                np.array([[1.0, value]]), "int16"
            )
            assert not exact

    def test_range_always_respected(self):
        # Values needing more levels than qmax can never report exact with
        # out-of-range integers (the int8 grid branch must range-check).
        x = np.arange(-300, 301, dtype=np.float64)[None, :] * 0.5
        q, _, exact = quantize_activations(x, "int8")
        if exact:  # pragma: no cover - defensive; exact=False expected
            assert float(np.abs(q).max()) <= 127


class TestQuantizeWeight:
    def test_grid_weight_reconstructs(self):
        rng = np.random.default_rng(1)
        step = 1.0 / 15
        q = rng.integers(-30, 31, size=(6, 8))
        weight = q * step
        decomposed = quantize_weight(weight, step, "int8")
        assert decomposed is not None
        np.testing.assert_allclose(
            decomposed.q.astype(np.float64) * decomposed.scales[:, None],
            weight, atol=1e-12, rtol=0,
        )

    def test_row_gcd_folds_into_scale(self):
        step = 0.25
        weight = np.array([[4.0, -8.0, 12.0], [3.0, 6.0, 9.0]]) * step
        decomposed = quantize_weight(weight, step, "int8")
        assert decomposed is not None
        np.testing.assert_array_equal(decomposed.q,
                                      [[1, -2, 3], [1, 2, 3]])
        np.testing.assert_allclose(decomposed.scales, [step * 4, step * 3])

    def test_off_grid_weight_is_refused(self):
        weight = np.array([[0.1, 0.37], [0.2, 0.51]])
        assert quantize_weight(weight, 1.0 / 3, "int8") is None

    def test_range_rejection_is_per_precision(self):
        # 8-bit devices produce integers up to ~510 on the signed periphery
        # grid: beyond int8 but comfortably int16.  Use a prime multiplier
        # so the gcd refinement cannot rescue the int8 range.
        step = 1.0 / 255
        weight = np.array([[509.0 * step, step]])
        assert quantize_weight(weight, step, "int8") is None
        decomposed = quantize_weight(weight, step, "int16")
        assert decomposed is not None and decomposed.precision == "int16"

    def test_degenerate_inputs_are_refused(self):
        assert quantize_weight(np.zeros((0, 3)), 0.5, "int8") is None
        assert quantize_weight(np.zeros(4), 0.5, "int8") is None
        assert quantize_weight(np.ones((2, 2)), 0.0, "int8") is None
        assert quantize_weight(np.array([[np.nan, 1.0]]), 0.5, "int8") is None

    def test_all_zero_rows_keep_unit_gcd(self):
        decomposed = quantize_weight(np.zeros((3, 4)), 0.5, "int8")
        assert decomposed is not None
        assert (decomposed.q == 0).all()
        np.testing.assert_allclose(decomposed.scales, 0.5)


class TestRequantize:
    def test_exact_rescale_is_flagged_exact(self):
        acc = np.array([4, -8, 16], dtype=np.int64)
        q, exact = requantize(acc, scale_in=0.5, scale_out=1.0, precision="int8")
        assert exact
        np.testing.assert_array_equal(q, [2, -4, 8])

    def test_rounding_and_saturation_clear_the_flag(self):
        q, exact = requantize(np.array([3]), 1.0, 2.0, precision="int8")
        assert not exact  # 1.5 rounded
        q, exact = requantize(np.array([10**6]), 1.0, 1.0, precision="int8")
        assert not exact and q[0] == 127  # saturated
        with pytest.raises(ValueError):
            requantize(np.array([1]), -1.0, 1.0, precision="int8")


# ---------------------------------------------------------------------- #
# Plan-level equivalence
# ---------------------------------------------------------------------- #
MAPPINGS = ("acm", "de", "bc")
BITS = (4, 6, 8)


def grid_images(rng, shape):
    """Inputs on the dyadic k/64 grid: losslessly int8/int16-quantisable."""
    return rng.integers(-64, 65, size=shape) / 64.0


def weight_op_count(plan) -> int:
    return sum(1 for op in plan.ops
               if isinstance(op, (DenseOp, ConvOp)) and op.spec is not None)


class TestPlanEquivalenceMatrix:
    @pytest.mark.parametrize("mapping", MAPPINGS)
    @pytest.mark.parametrize("bits", BITS)
    @pytest.mark.parametrize("precision", INT_PRECISIONS)
    def test_mlp_grid(self, mapping, bits, precision):
        model = make_mlp(input_size=16, hidden_sizes=(12,), mapping=mapping,
                         quantizer_bits=bits, seed=bits)
        plan = compile_model(model)
        lowered = plan.with_precision(precision)
        images = grid_images(np.random.default_rng(7), (9, 16))
        expected = plan.run(images)
        got = lowered.run(images)
        np.testing.assert_array_equal(expected.argmax(axis=1),
                                      got.argmax(axis=1))
        np.testing.assert_allclose(got, expected, atol=1e-6, rtol=0)
        stats = lowered.precision_stats()
        # int16 always fits the signed-periphery integer range; int8 fits
        # 4/6-bit devices structurally (8-bit may exceed |q| = 127 and
        # legitimately keep the float op).
        if precision == "int16" or bits < 8:
            assert stats["int_ops"] == weight_op_count(plan)
            assert stats["int_batches"] >= 1
        assert stats["precision"] == precision

    @pytest.mark.parametrize("factory,input_shape,mapping,bits", [
        (make_lenet, (1, 16, 16), "acm", 4),
        (make_vgg9, (3, 16, 16), "de", 6),
        (make_resnet20, (3, 16, 16), "bc", 8),
    ])
    def test_conv_architectures(self, factory, input_shape, mapping, bits):
        model = factory(mapping=mapping, quantizer_bits=bits, seed=1)
        plan = compile_model(model)
        lowered = plan.with_precision("int16")
        images = grid_images(np.random.default_rng(5), (3,) + input_shape)
        expected = plan.run(images)
        got = lowered.run(images)
        np.testing.assert_array_equal(expected.argmax(axis=1),
                                      got.argmax(axis=1))
        np.testing.assert_allclose(got, expected, atol=1e-6, rtol=0)
        stats = lowered.precision_stats()
        assert stats["int_ops"] == weight_op_count(plan)
        # The input layer sees the dyadic grid directly, so at least one op
        # must have taken the integer path (hidden activations may fall
        # back, which the counters make visible rather than hiding).
        assert stats["int_batches"] >= 1

    def test_single_dense_layer_is_exact_to_integer_reconstruction(self):
        # One mapped dense layer on grid inputs: the integer path computes
        # sum(q_x * q_w) exactly, so the only rounding is the final
        # dequantise — the outputs agree to float64 resolution, far tighter
        # than the 1e-6 serving bar.
        model = make_mlp(input_size=16, hidden_sizes=(), mapping="acm",
                         quantizer_bits=4, seed=0)
        plan = compile_model(model)
        lowered = plan.with_precision("int8")
        images = grid_images(np.random.default_rng(2), (6, 16))
        expected = plan.run(images)
        got = lowered.run(images)
        np.testing.assert_allclose(got, expected, atol=1e-12, rtol=0)
        op = next(op for op in lowered.ops if isinstance(op, IntDenseOp))
        assert op.int_batches == 1 and op.fallback_batches == 0
        # Reconstruct the integer algebra by hand for one output neuron.
        q, scale, exact = quantize_activations(images, "int8")
        assert exact
        acc = reference_matmul(np.asarray(q, np.float64), op.q_weight)
        manual = dequantize(acc, scale, op.scales, op.bias)
        np.testing.assert_allclose(manual, got, atol=1e-12, rtol=0)

    def test_fallback_batches_still_match_float64(self):
        model = make_mlp(input_size=16, hidden_sizes=(8,), mapping="acm",
                         quantizer_bits=4, seed=3)
        plan = compile_model(model)
        lowered = plan.with_precision("int8")
        images = np.random.default_rng(9).normal(size=(5, 16))  # off-grid
        np.testing.assert_allclose(lowered.run(images), plan.run(images),
                                   atol=1e-6, rtol=0)
        stats = lowered.precision_stats()
        assert stats["fallback_batches"] >= 1


# ---------------------------------------------------------------------- #
# Lowering, cast, and serialization regressions
# ---------------------------------------------------------------------- #
class TestLoweringLifecycle:
    def make_plans(self, precision="int8"):
        model = make_mlp(input_size=16, hidden_sizes=(8,), mapping="acm",
                         quantizer_bits=4, seed=0)
        plan = compile_model(model)
        return plan, plan.with_precision(precision)

    def test_with_precision_is_memoised_and_identity_on_same(self):
        plan, lowered = self.make_plans()
        assert plan.with_precision("int8") is lowered
        assert plan.with_precision("float64") is plan
        assert lowered.with_precision("int8") is lowered

    def test_double_lowering_is_refused(self):
        _, lowered = self.make_plans()
        with pytest.raises(ValueError, match="float64"):
            lowered.with_precision("int16")

    def test_unknown_precision_is_refused(self):
        plan, _ = self.make_plans()
        with pytest.raises(ValueError, match="precision"):
            plan.with_precision("int4")

    def test_optimizer_refuses_lowered_plans(self):
        _, lowered = self.make_plans()
        with pytest.raises(ValueError, match="optimize_plan before"):
            optimize_plan(lowered)

    def test_cast_moves_only_declared_tensors(self):
        # The satellite bugfix regression: casting an integer plan converts
        # the float shadow weights but must leave the integer decomposition
        # (q_weight / scales) and the crossbar spec untouched.
        _, lowered = self.make_plans()
        cast = lowered.cast(np.float32)
        for original, twin in zip(lowered.ops, cast.ops):
            if not isinstance(twin, _IntOpMixin):
                continue
            assert twin.weight.dtype == np.float32
            assert twin.q_weight.dtype == np.int8
            assert twin.scales.dtype == np.float64
            np.testing.assert_array_equal(twin.q_weight, original.q_weight)
            assert twin.spec is original.spec  # shared, never recast
        assert cast.precision == lowered.precision

    def test_float_plan_cast_still_converts_weights(self):
        plan, _ = self.make_plans()
        cast = plan.cast(np.float32)
        dense = [op for op in cast.ops if isinstance(op, DenseOp)]
        assert dense and all(op.weight.dtype == np.float32 for op in dense)

    def test_registry_round_trip_preserves_integer_plan(self, tmp_path):
        from repro.serve import PlanRegistry

        _, lowered = self.make_plans()
        path = tmp_path / "plan.npz"
        lowered.save(path)
        from repro.runtime import InferencePlan

        loaded = InferencePlan.load(path)
        assert loaded.precision == "int8"
        images = grid_images(np.random.default_rng(4), (5, 16))
        np.testing.assert_array_equal(loaded.run(images), lowered.run(images))
        for original, twin in zip(lowered.ops, loaded.ops):
            if isinstance(original, _IntOpMixin):
                assert twin.q_weight.dtype == original.q_weight.dtype
                np.testing.assert_array_equal(twin.q_weight, original.q_weight)
                np.testing.assert_array_equal(twin.scales, original.scales)
        # And through the registry's publish/get (digest-addressed) path.
        registry = PlanRegistry(tmp_path / "plans")
        model = make_mlp(input_size=16, hidden_sizes=(8,), mapping="acm",
                         quantizer_bits=4, seed=0)
        registry.publish_model(model, "alpha", 4, "acm")
        served = registry.get("alpha", 4, "acm").with_precision("int8")
        np.testing.assert_array_equal(served.run(images), lowered.run(images))

    def test_float32_lowering_marks_precision(self):
        plan, _ = self.make_plans()
        lowered = plan.with_precision("float32")
        assert lowered.precision == "float32"
        dense = [op for op in lowered.ops if isinstance(op, DenseOp)]
        assert all(op.weight.dtype == np.float32 for op in dense)
        with pytest.raises(ValueError):
            lowered.with_precision("int8")

    def test_conv_lowering_keeps_geometry(self):
        model = make_lenet(mapping="acm", quantizer_bits=4, seed=0)
        plan = compile_model(model)
        lowered = plan.with_precision("int8")
        convs = [op for op in lowered.ops if isinstance(op, IntConvOp)]
        assert convs
        for op in convs:
            assert op.kernel_shape and op.stride and op.padding
        assert lowered.output_shapes() == plan.output_shapes()
