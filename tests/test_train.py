"""Integration tests for the training loop and variation evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping.mapped_layer import _MappedBase
from repro.models import make_lenet, make_mlp
from repro.train import (
    Trainer,
    TrainingConfig,
    evaluate_accuracy,
    evaluate_under_variation,
    variation_sweep,
)
from repro.train.trainer import _quantize_activations


def mapped_layers(model):
    return [module for module in model.modules() if isinstance(module, _MappedBase)]


class TestTrainingConfig:
    def test_defaults(self):
        config = TrainingConfig()
        assert config.epochs > 0
        assert not config.nonlinear_update

    def test_history_properties_empty(self):
        from repro.train.trainer import TrainingHistory
        history = TrainingHistory()
        assert np.isnan(history.final_test_error)
        assert np.isnan(history.best_test_error)


class TestActivationQuantization:
    def test_reduces_distinct_values(self, rng):
        values = rng.normal(size=(100,))
        quantised = _quantize_activations(values, 2)
        assert len(np.unique(quantised)) <= 4 + 1

    def test_preserves_range(self, rng):
        values = rng.normal(size=(100,))
        quantised = _quantize_activations(values, 8)
        assert quantised.min() >= values.min() - 1e-9
        assert quantised.max() <= values.max() + 1e-9

    def test_constant_input_unchanged(self):
        values = np.full(10, 3.0)
        np.testing.assert_allclose(_quantize_activations(values, 4), values)


class TestTrainerBaseline:
    def test_baseline_mlp_learns_tiny_task(self, tiny_mnist):
        train_set, test_set = tiny_mnist
        model = make_mlp(
            input_size=int(np.prod(train_set.sample_shape)),
            hidden_sizes=(32,),
            num_classes=train_set.num_classes,
            seed=0,
        )
        config = TrainingConfig(epochs=6, batch_size=16, lr=0.1, seed=0)
        history = Trainer(model, train_set, test_set, config).fit()
        assert history.final_test_error < 30.0
        assert history.train_error[-1] < history.train_error[0]

    def test_history_records_every_epoch(self, tiny_mnist):
        train_set, test_set = tiny_mnist
        model = make_mlp(
            input_size=int(np.prod(train_set.sample_shape)),
            hidden_sizes=(8,),
            num_classes=train_set.num_classes,
            seed=0,
        )
        config = TrainingConfig(epochs=3, batch_size=16, lr=0.05, seed=0)
        history = Trainer(model, train_set, test_set, config).fit()
        assert len(history.train_error) == 3
        assert len(history.test_error) == 3
        assert len(history.train_loss) == 3
        assert history.epochs == [0, 1, 2]

    def test_training_is_reproducible(self, tiny_mnist):
        train_set, test_set = tiny_mnist

        def run():
            model = make_mlp(
                input_size=int(np.prod(train_set.sample_shape)),
                hidden_sizes=(8,),
                num_classes=train_set.num_classes,
                seed=3,
            )
            config = TrainingConfig(epochs=2, batch_size=16, lr=0.05, seed=7)
            return Trainer(model, train_set, test_set, config).fit()

        first, second = run(), run()
        np.testing.assert_allclose(first.train_loss, second.train_loss)
        np.testing.assert_allclose(first.test_error, second.test_error)


class TestTrainerMapped:
    @pytest.mark.parametrize("mapping", ["acm", "de", "bc"])
    def test_mapped_mlp_learns(self, tiny_mnist, mapping):
        train_set, test_set = tiny_mnist
        model = make_mlp(
            input_size=int(np.prod(train_set.sample_shape)),
            hidden_sizes=(32,),
            num_classes=train_set.num_classes,
            mapping=mapping,
            seed=0,
        )
        config = TrainingConfig(epochs=6, batch_size=16, lr=0.1, seed=0)
        history = Trainer(model, train_set, test_set, config).fit()
        assert history.final_test_error < 35.0

    def test_conductances_stay_valid_during_training(self, tiny_mnist):
        train_set, test_set = tiny_mnist
        model = make_mlp(
            input_size=int(np.prod(train_set.sample_shape)),
            hidden_sizes=(16,),
            num_classes=train_set.num_classes,
            mapping="acm",
            quantizer_bits=3,
            seed=0,
        )
        config = TrainingConfig(epochs=3, batch_size=16, lr=0.1, seed=0)
        Trainer(model, train_set, test_set, config).fit()
        for layer in mapped_layers(model):
            conductances = layer.conductances()
            assert conductances.min() >= 0.0
            assert conductances.max() <= layer.conductance_range.g_max + 1e-9

    def test_quantized_training_produces_quantized_effective_weights(self, tiny_mnist):
        train_set, test_set = tiny_mnist
        model = make_mlp(
            input_size=int(np.prod(train_set.sample_shape)),
            hidden_sizes=(8,),
            num_classes=train_set.num_classes,
            mapping="de",
            quantizer_bits=2,
            seed=0,
        )
        config = TrainingConfig(epochs=2, batch_size=16, lr=0.05, seed=0)
        Trainer(model, train_set, test_set, config).fit()
        layer = mapped_layers(model)[0]
        weights = layer.effective_weight()
        levels = layer.quantizer.levels
        achievable = np.unique(np.subtract.outer(levels, levels))
        for value in np.unique(np.round(weights, 10)):
            assert np.isclose(value, achievable, atol=1e-9).any()

    def test_nonlinear_update_training_runs_and_learns(self, tiny_mnist):
        train_set, test_set = tiny_mnist
        model = make_mlp(
            input_size=int(np.prod(train_set.sample_shape)),
            hidden_sizes=(32,),
            num_classes=train_set.num_classes,
            mapping="acm",
            quantizer_bits=4,
            seed=0,
        )
        config = TrainingConfig(
            epochs=6, batch_size=16, lr=0.1, nonlinear_update=True, nonlinearity=2.0, seed=0
        )
        history = Trainer(model, train_set, test_set, config).fit()
        assert history.final_test_error < 60.0
        for layer in mapped_layers(model):
            assert (layer.crossbar.data >= 0).all()

    def test_activation_quantization_option(self, tiny_mnist):
        train_set, test_set = tiny_mnist
        model = make_mlp(
            input_size=int(np.prod(train_set.sample_shape)),
            hidden_sizes=(8,),
            num_classes=train_set.num_classes,
            mapping="bc",
            quantizer_bits=4,
            seed=0,
        )
        config = TrainingConfig(epochs=2, batch_size=16, lr=0.05, activation_bits=8, seed=0)
        history = Trainer(model, train_set, test_set, config).fit()
        assert len(history.test_error) == 2

    def test_lenet_smoke_training(self, tiny_mnist):
        train_set, test_set = tiny_mnist
        model = make_lenet(mapping="acm", quantizer_bits=4, num_classes=train_set.num_classes,
                           image_size=train_set.sample_shape[-1], seed=0)
        config = TrainingConfig(epochs=2, batch_size=16, lr=0.05, seed=0)
        history = Trainer(model, train_set, test_set, config).fit()
        assert history.final_test_error <= 100.0
        assert not np.isnan(history.train_loss[-1])


class TestEvaluation:
    @pytest.fixture(scope="class")
    def trained_model(self, tiny_mnist):
        train_set, test_set = tiny_mnist
        model = make_mlp(
            input_size=int(np.prod(train_set.sample_shape)),
            hidden_sizes=(32,),
            num_classes=train_set.num_classes,
            mapping="acm",
            quantizer_bits=4,
            seed=0,
        )
        config = TrainingConfig(epochs=6, batch_size=16, lr=0.1, seed=0)
        Trainer(model, train_set, test_set, config).fit()
        return model

    def test_evaluate_accuracy_range(self, trained_model, tiny_mnist):
        _, test_set = tiny_mnist
        accuracy = evaluate_accuracy(trained_model, test_set)
        assert 0.0 <= accuracy <= 1.0

    def test_variation_zero_equals_clean_accuracy(self, trained_model, tiny_mnist):
        _, test_set = tiny_mnist
        clean = evaluate_accuracy(trained_model, test_set)
        with_zero = evaluate_under_variation(trained_model, test_set, 0.0)
        assert clean == pytest.approx(with_zero)

    def test_variation_restores_model_state(self, trained_model, tiny_mnist):
        _, test_set = tiny_mnist
        before = {name: p.data.copy() for name, p in trained_model.named_parameters()}
        evaluate_under_variation(trained_model, test_set, 0.2, rng=np.random.default_rng(0))
        for name, parameter in trained_model.named_parameters():
            np.testing.assert_allclose(parameter.data, before[name])
        assert all(layer.variation is None for layer in mapped_layers(trained_model))

    def test_variation_degrades_accuracy_on_average(self, trained_model, tiny_mnist):
        _, test_set = tiny_mnist
        sweep = variation_sweep(
            trained_model, test_set, sigmas=[0.0, 0.4], num_samples=6, seed=0
        )
        assert sweep.mean_accuracy[1] < sweep.mean_accuracy[0] + 1e-9

    def test_variation_sweep_structure(self, trained_model, tiny_mnist):
        _, test_set = tiny_mnist
        sigmas = [0.0, 0.1, 0.2]
        sweep = variation_sweep(trained_model, test_set, sigmas=sigmas, num_samples=3, seed=1)
        assert sweep.sigmas == sigmas
        assert len(sweep.mean_accuracy) == 3
        assert len(sweep.samples[0.1]) == 3
        assert len(sweep.samples[0.0]) == 1  # zero sigma needs a single draw

    def test_variation_sweep_validates_samples(self, trained_model, tiny_mnist):
        _, test_set = tiny_mnist
        with pytest.raises(ValueError):
            variation_sweep(trained_model, test_set, sigmas=[0.1], num_samples=0)

    def test_variation_on_baseline_model_raises(self, tiny_mnist):
        train_set, test_set = tiny_mnist
        model = make_mlp(
            input_size=int(np.prod(train_set.sample_shape)),
            hidden_sizes=(8,),
            num_classes=train_set.num_classes,
            seed=0,
        )
        with pytest.raises(ValueError):
            evaluate_under_variation(model, test_set, 0.1)

    def test_variation_draws_are_reproducible_with_seed(self, trained_model, tiny_mnist):
        _, test_set = tiny_mnist
        first = variation_sweep(trained_model, test_set, sigmas=[0.15], num_samples=4, seed=9)
        second = variation_sweep(trained_model, test_set, sigmas=[0.15], num_samples=4, seed=9)
        np.testing.assert_allclose(first.mean_accuracy, second.mean_accuracy)


class TestCorrectCounting:
    """Regression tests for exact correct-prediction counting.

    ``int(accuracy(...) * len(labels))`` undercounts when the float mean
    rounds just below an integer (e.g. ``(2/3) * 3 == 1.999...``); the
    evaluation loops must count correct predictions directly.
    """

    class _FixedLogits:
        """Stand-in model returning predetermined logits for any input."""

        def __init__(self, logits):
            self._logits = logits
            self.training = False

        def eval(self):
            return self

        def train(self, mode=True):
            return self

        def modules(self):
            return iter(())

        def __call__(self, inputs):
            from repro.tensor import Tensor
            return Tensor(self._logits[: len(inputs.data)])

    def test_two_thirds_accuracy_counts_exactly(self):
        from repro.data.dataset import ArrayDataset

        # Three samples, two correct: the old rounding gave 1/3 instead of 2/3.
        logits = np.array([[1.0, 0.0], [1.0, 0.0], [1.0, 0.0]])
        labels = np.array([0, 0, 1])
        dataset = ArrayDataset(np.zeros((3, 2)), labels)
        model = self._FixedLogits(logits)
        accuracy = evaluate_accuracy(model, dataset, batch_size=3, use_runtime=False)
        assert accuracy == pytest.approx(2.0 / 3.0)

    def test_count_correct_matches_sum_over_batches(self, rng):
        from repro.nn.losses import accuracy as accuracy_fn, count_correct

        logits = rng.normal(size=(7, 5))
        labels = rng.integers(0, 5, size=7)
        assert count_correct(logits, labels) == int(
            round(accuracy_fn(logits, labels) * 7)
        )


class TestVariationRngSeeding:
    def test_seeded_models_draw_identical_variation_by_default(self, rng):
        """set_variation without an explicit rng must still be reproducible."""
        from repro.mapping.mapped_layer import MappedLinear
        from repro.tensor import Tensor, no_grad

        inputs = rng.normal(size=(4, 6))
        outputs = []
        for _ in range(2):
            layer = MappedLinear(6, 3, mapping="acm", rng=np.random.default_rng(11))
            layer.eval()
            layer.set_variation(0.2)  # no rng argument on purpose
            with no_grad():
                outputs.append(layer(Tensor(inputs)).data)
        np.testing.assert_array_equal(outputs[0], outputs[1])

    def test_variation_stream_does_not_change_initialisation(self):
        """Spawning the variation stream must not consume init randomness."""
        from repro.mapping.mapped_layer import MappedLinear

        first = MappedLinear(6, 3, mapping="de", rng=np.random.default_rng(5))
        second = MappedLinear(6, 3, mapping="de", rng=np.random.default_rng(5))
        np.testing.assert_array_equal(first.crossbar.data, second.crossbar.data)
        np.testing.assert_array_equal(first.bias.data, second.bias.data)


class TestEffectiveWeightCache:
    def test_cache_hit_in_eval_mode(self, rng):
        from repro.mapping.mapped_layer import MappedLinear
        from repro.tensor import Tensor, no_grad

        layer = MappedLinear(6, 3, mapping="acm", quantizer_bits=4,
                             rng=np.random.default_rng(0))
        layer.eval()
        with no_grad():
            first = layer.effective_weight_tensor()
            second = layer.effective_weight_tensor()
        assert first is second  # memoised object identity

    def test_cache_invalidated_on_train_switch(self, rng):
        from repro.mapping.mapped_layer import MappedLinear
        from repro.tensor import Tensor, no_grad

        layer = MappedLinear(6, 3, mapping="acm", rng=np.random.default_rng(0))
        layer.eval()
        with no_grad():
            cached = layer.effective_weight_tensor()
            layer.train()
            # Scale (a constant shift would cancel through the ACM periphery).
            layer.crossbar.data *= 0.5
            layer.clip_conductances()
            layer.eval()
            fresh = layer.effective_weight_tensor()
        assert fresh is not cached
        assert not np.allclose(fresh.data, cached.data)

    def test_cache_not_used_while_training_or_grad_enabled(self, rng):
        from repro.mapping.mapped_layer import MappedLinear
        from repro.tensor import Tensor, no_grad

        layer = MappedLinear(6, 3, mapping="acm", rng=np.random.default_rng(0))
        layer.eval()
        # Gradients enabled: no caching, so STE training graphs stay intact.
        first = layer.effective_weight_tensor()
        second = layer.effective_weight_tensor()
        assert first is not second

    def test_load_state_dict_invalidates_cache(self, rng):
        from repro.mapping.mapped_layer import MappedLinear
        from repro.tensor import no_grad

        layer = MappedLinear(6, 3, mapping="acm", rng=np.random.default_rng(0))
        other = MappedLinear(6, 3, mapping="acm", rng=np.random.default_rng(9))
        layer.eval()
        with no_grad():
            before = layer.effective_weight_tensor()
            layer.load_state_dict(other.state_dict())
            after = layer.effective_weight_tensor()
        assert after is not before
        assert not np.allclose(after.data, before.data)

    def test_cached_eval_matches_uncached_forward(self):
        from repro.mapping.mapped_layer import MappedLinear
        from repro.tensor import Tensor, no_grad

        layer = MappedLinear(6, 3, mapping="bc", quantizer_bits=3,
                             rng=np.random.default_rng(0))
        inputs = Tensor(np.random.default_rng(1).normal(size=(4, 6)))
        layer.eval()
        with no_grad():
            warm = layer(inputs).data
            again = layer(inputs).data
        layer.train()
        layer.eval()
        with no_grad():
            cold = layer(inputs).data
        np.testing.assert_array_equal(warm, again)
        np.testing.assert_array_equal(warm, cold)


class TestVariationRngRestoration:
    def test_evaluate_under_variation_restores_seeded_stream(self, tiny_mnist):
        """A temporary external rng must not replace the layer's own stream."""
        from repro.mapping.mapped_layer import _MappedBase

        _, test_set = tiny_mnist
        results = []
        for _ in range(2):
            model = make_mlp(
                input_size=int(np.prod(test_set.sample_shape)),
                hidden_sizes=(8,),
                num_classes=test_set.num_classes,
                mapping="acm",
                seed=4,
            )
            # Evaluate once with an arbitrary external rng (different each
            # iteration), then once with the layer's own default stream.
            evaluate_under_variation(
                model, test_set, 0.1, rng=np.random.default_rng(len(results) + 100)
            )
            layers = [m for m in model.modules() if isinstance(m, _MappedBase)]
            for layer in layers:
                layer.set_variation(0.3)  # bare call: must use the seeded stream
            results.append(evaluate_accuracy(model, test_set, use_runtime=False))
            for layer in layers:
                layer.set_variation(0.0)
        assert results[0] == results[1]
