"""Fault-injection suite: SIGKILL cluster workers under load, lose nothing.

This is the proof of the self-healing story.  A killer thread SIGKILLs
random workers at randomized points — before a request is submitted, while
a micro-batch is mid-execution, and while responses are in flight — under
concurrent mixed predict/ensemble load from multiple threads.  With
``auto_restart`` on, the supervisor respawns dead shards and the
``ClusterClient`` transparently retries the stranded (idempotent)
requests, so the suite asserts:

* **zero lost requests** — every one of the 200+ requests eventually
  succeeds, *bit-identically* to a single-process reference;
* **typed surfacing discipline** — ``WorkerDied`` reaches the caller only
  when a shard's circuit breaker is open (a crash-looping worker), never
  during ordinary self-healing;
* **no residue** — after the chaos run plus clean shutdown, no shared-
  memory segment under the cluster's prefix survives and the transport
  gauges are back to zero.

Determinism: all load mixes and kill schedules derive from the fixed
seeds below.  A failure replays with the exact same request streams and
kill points (modulo OS scheduling) — do not replace the seeds with
entropy.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from types import SimpleNamespace

from repro.api import (ClusterClient, EnsembleRequest, PredictRequest,
                       WorkerDied, study_spec)
from repro.models import make_mlp
from repro.runtime import compile_model
from repro.serve import (InferenceService, JobManager, PlanCluster,
                         PlanRegistry)
from repro.serve.shm import list_segments

#: Fixed seeds — the whole suite replays deterministically from these.
CHAOS_SEED = 20260729
LOAD_THREADS = 4
REQUESTS_PER_THREAD = 60          # 240 total, over the 200-request floor
KILLS = 3

#: One model per load thread: requests for one model are then issued
#: strictly sequentially, so each is its own micro-batch and the
#: bit-exactness oracle (the plan run on the request's own geometry) is
#: well-defined even under concurrency.  (BLAS kernels legitimately differ
#: at the last bit between a coalesced gemm and a lone-request gemv, which
#: is why cross-thread coalescing would break a *bitwise* oracle.)
MODELS = ("chaos-a", "chaos-b", "chaos-c", "chaos-d")

pytestmark = pytest.mark.chaos


def _alive_worker_indices(cluster):
    return [w.index for w in list(cluster._workers)
            if not w.dead and w.process.is_alive()]


def _wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {what}")


@pytest.fixture
def chaos_env(tmp_path):
    directory = tmp_path / "plans"
    registry = PlanRegistry(directory)
    plans = {}
    for seed, name in enumerate(MODELS):
        model = make_mlp(input_size=16, hidden_sizes=(8,), mapping="acm",
                         quantizer_bits=4, seed=seed)
        registry.publish_model(model, name, 4, "acm")
        plans[name] = compile_model(model)
    rng = np.random.default_rng(CHAOS_SEED)
    images = rng.normal(size=(32, 16))
    # The bit-exactness oracle: one in-process service over the same
    # artifacts (ensemble sampling is a pure function of the request).
    reference = InferenceService(PlanRegistry(directory), max_batch=16)
    yield SimpleNamespace(directory=directory, plans=plans, images=images,
                          reference=reference)
    reference.close()


class TestChaosMixedLoad:
    """The headline run: kills at random points, nothing lost, bits exact."""

    def test_no_request_lost_under_random_sigkills(self, chaos_env):
        cluster = PlanCluster(
            chaos_env.directory, num_workers=2, handler_threads=4,
            max_batch=16, max_wait_ms=1.0,
            auto_restart=True, max_restarts=50,   # breaker must never open
            restart_backoff=0.02, stability_window=0.5,
            shm_threshold=1024,                   # batches ride shared memory
        )
        shm_base = cluster._shm_base
        client = ClusterClient(cluster, own_backend=True,
                               worker_died_retries=20,
                               worker_died_backoff=0.05)
        try:
            cluster.wait_ready(timeout=180)
            results = {}
            failures = []
            stop_killing = threading.Event()
            kills_done = []
            progress = [0]
            progress_lock = threading.Lock()
            # Kills land when the run has completed this many requests —
            # progress-anchored so the schedule is machine-speed
            # independent: requests are guaranteed to be in flight before,
            # during, and after every kill.
            total = LOAD_THREADS * REQUESTS_PER_THREAD
            milestones = (total // 8, total // 2, (7 * total) // 8)

            def load(thread_index):
                rng = np.random.default_rng(CHAOS_SEED + 1 + thread_index)
                name = MODELS[thread_index]
                for j in range(REQUESTS_PER_THREAD):
                    start = int(rng.integers(0, 24))
                    rows = int(rng.integers(1, 9))
                    batch = chaos_env.images[start:start + rows]
                    try:
                        if rng.random() < 0.25:
                            seed = int(rng.integers(0, 32))
                            out = client.ensemble(EnsembleRequest(
                                images=batch, model=name, mapping="acm",
                                bits=4, sigma_fraction=0.1, num_samples=5,
                                seed=seed))
                            results[(thread_index, j)] = (
                                "ensemble", name, start, rows, seed,
                                out.mean_logits, out.predictions,
                                out.vote_counts,
                            )
                        else:
                            out = client.predict(PredictRequest(
                                images=batch, model=name, mapping="acm",
                                bits=4))
                            results[(thread_index, j)] = (
                                "predict", name, start, rows, None,
                                out.logits,
                            )
                    except Exception as error:  # noqa: BLE001 - recorded
                        failures.append(((thread_index, j), error))
                    finally:
                        with progress_lock:
                            progress[0] += 1

            def killer():
                rng = np.random.default_rng(CHAOS_SEED)
                for milestone in milestones[:KILLS]:
                    while not stop_killing.is_set():
                        with progress_lock:
                            reached = progress[0] >= milestone
                        if reached:
                            break
                        time.sleep(0.005)
                    if stop_killing.is_set():
                        return
                    # A small seeded jitter varies the exact kill point
                    # (pre-submit / mid-batch / mid-response) across the
                    # concurrent request streams.
                    time.sleep(float(rng.uniform(0.0, 0.03)))
                    alive = _alive_worker_indices(cluster)
                    if not alive:
                        continue
                    index = alive[int(rng.integers(len(alive)))]
                    worker = cluster._workers[index]
                    worker.process.kill()
                    kills_done.append(index)

            threads = [threading.Thread(target=load, args=(i,))
                       for i in range(LOAD_THREADS)]
            killer_thread = threading.Thread(target=killer)
            for thread in threads:
                thread.start()
            killer_thread.start()
            for thread in threads:
                thread.join(timeout=600)
                assert not thread.is_alive(), "load thread hung"
            stop_killing.set()
            killer_thread.join(timeout=60)

            # Discipline: with the breaker closed throughout, WorkerDied
            # (or anything else) must never have reached a caller.
            assert failures == [], (
                f"{len(failures)} of {LOAD_THREADS * REQUESTS_PER_THREAD} "
                f"requests failed; first: {failures[0]!r}"
            )
            assert len(results) == LOAD_THREADS * REQUESTS_PER_THREAD
            assert cluster.open_breakers == []
            assert kills_done, "the killer never fired; the run proved nothing"

            # Bit-exactness of every single response against the
            # single-process reference.
            for key, record in results.items():
                kind, name, start, rows, seed = record[:5]
                batch = chaos_env.images[start:start + rows]
                if kind == "predict":
                    np.testing.assert_array_equal(
                        record[5], chaos_env.plans[name].run(batch),
                        err_msg=f"request {key} not bit-identical",
                    )
                else:
                    expected = chaos_env.reference.predict_under_variation(
                        batch, model=name, bits=4, mapping="acm",
                        sigma_fraction=0.1, num_samples=5, seed=seed,
                    )
                    np.testing.assert_array_equal(record[5],
                                                  expected.mean_logits)
                    np.testing.assert_array_equal(record[6],
                                                  expected.predictions)
                    np.testing.assert_array_equal(record[7],
                                                  expected.vote_counts)

            # Every kill produces exactly one supervised respawn — the last
            # kill may land as the load drains, so healing is awaited, not
            # assumed instantaneous.
            def _total_restarts():
                summary = cluster.stats_summary()
                return sum(summary[f"worker-{i}"]["supervisor"]["restarts"]
                           for i in range(cluster.num_workers))

            _wait_for(
                lambda: not cluster.dead_workers
                and _total_restarts() == len(kills_done),
                timeout=60,
                what="the supervisor to finish healing every kill",
            )
            summary = cluster.stats_summary()
            for i in range(cluster.num_workers):
                transport = summary[f"worker-{i}"]["transport"]
                assert transport["active_segments"] == 0
        finally:
            client.close()
        # The leak regression half: chaos plus clean shutdown leaves no
        # orphaned shared-memory segment behind.
        assert list_segments(shm_base) == []


class TestRingReplication:
    """The ring leg: with R=2, a SIGKILL'd replica is *invisible*.

    Stronger than the headline run's "zero lost requests": the client is
    built with ``worker_died_retries=0``, so the cluster's internal
    replica failover must absorb the death on its own — any ``WorkerDied``
    reaching the client (which the HTTP edge would turn into a 503) fails
    the test.  Zero 503s, bit-identical responses, zero leaked segments.
    """

    def _run_mixed_load(self, chaos_env, client, disruption):
        """Drive the standard 4-thread mixed load; fire ``disruption(progress)``
        from a side thread; return (results, failures)."""
        results = {}
        failures = []
        progress = [0]
        progress_lock = threading.Lock()

        def load(thread_index):
            rng = np.random.default_rng(CHAOS_SEED + 1 + thread_index)
            name = MODELS[thread_index]
            for j in range(REQUESTS_PER_THREAD):
                start = int(rng.integers(0, 24))
                rows = int(rng.integers(1, 9))
                batch = chaos_env.images[start:start + rows]
                try:
                    if rng.random() < 0.25:
                        seed = int(rng.integers(0, 32))
                        out = client.ensemble(EnsembleRequest(
                            images=batch, model=name, mapping="acm",
                            bits=4, sigma_fraction=0.1, num_samples=5,
                            seed=seed))
                        results[(thread_index, j)] = (
                            "ensemble", name, start, rows, seed,
                            out.mean_logits, out.predictions,
                            out.vote_counts,
                        )
                    else:
                        out = client.predict(PredictRequest(
                            images=batch, model=name, mapping="acm",
                            bits=4))
                        results[(thread_index, j)] = (
                            "predict", name, start, rows, None, out.logits,
                        )
                except Exception as error:  # noqa: BLE001 - recorded
                    failures.append(((thread_index, j), error))
                finally:
                    with progress_lock:
                        progress[0] += 1

        def read_progress():
            with progress_lock:
                return progress[0]

        threads = [threading.Thread(target=load, args=(i,))
                   for i in range(LOAD_THREADS)]
        disruptor = threading.Thread(target=disruption,
                                     args=(read_progress,))
        for thread in threads:
            thread.start()
        disruptor.start()
        for thread in threads:
            thread.join(timeout=600)
            assert not thread.is_alive(), "load thread hung"
        disruptor.join(timeout=120)
        assert not disruptor.is_alive(), "disruption thread hung"
        return results, failures

    def _assert_bit_exact(self, chaos_env, results):
        for key, record in results.items():
            kind, name, start, rows, seed = record[:5]
            batch = chaos_env.images[start:start + rows]
            if kind == "predict":
                np.testing.assert_array_equal(
                    record[5], chaos_env.plans[name].run(batch),
                    err_msg=f"request {key} not bit-identical",
                )
            else:
                expected = chaos_env.reference.predict_under_variation(
                    batch, model=name, bits=4, mapping="acm",
                    sigma_fraction=0.1, num_samples=5, seed=seed,
                )
                np.testing.assert_array_equal(record[5],
                                              expected.mean_logits)
                np.testing.assert_array_equal(record[6],
                                              expected.predictions)
                np.testing.assert_array_equal(record[7],
                                              expected.vote_counts)

    def test_zero_503s_while_one_replica_is_sigkilled(self, chaos_env):
        cluster = PlanCluster(
            chaos_env.directory, num_workers=2, replicas=2,
            handler_threads=4, max_batch=16, max_wait_ms=1.0,
            auto_restart=True, max_restarts=50,
            restart_backoff=0.05, stability_window=0.5,
            shm_threshold=1024,
        )
        shm_base = cluster._shm_base
        client = ClusterClient(cluster, own_backend=True,
                               worker_died_retries=0)
        kills_done = []
        try:
            cluster.wait_ready(timeout=180)
            total = LOAD_THREADS * REQUESTS_PER_THREAD
            rng = np.random.default_rng(CHAOS_SEED)
            victim = int(rng.integers(2))

            def kill_one_replica(read_progress):
                while read_progress() < total // 3:
                    time.sleep(0.005)
                time.sleep(float(rng.uniform(0.0, 0.03)))
                cluster._workers[victim].process.kill()
                kills_done.append(victim)

            results, failures = self._run_mixed_load(
                chaos_env, client, kill_one_replica
            )
            assert kills_done, "the killer never fired"
            # THE claim: no request failed, although the client was
            # forbidden to retry — failover inside the ring absorbed the
            # dead replica.
            assert failures == [], (
                f"{len(failures)} request(s) surfaced an error (would be "
                f"503s at the HTTP edge); first: {failures[0]!r}"
            )
            assert len(results) == total
            self._assert_bit_exact(chaos_env, results)
            _wait_for(
                lambda: not cluster.dead_workers,
                timeout=60, what="the supervisor to respawn the victim",
            )
            summary = cluster.stats_summary()
            for i in range(cluster.num_workers):
                assert summary[f"worker-{i}"]["transport"][
                    "active_segments"] == 0
            # The failover counter recorded the routed-around death.
            families = {f.name: f for f in cluster.metrics.collect()}
            failovers = sum(
                s.value
                for s in families["repro_ring_failover_total"].samples
            )
            assert failovers >= 1
        finally:
            client.close()
        assert list_segments(shm_base) == []

    def test_rolling_restart_under_load_is_zero_downtime(self, chaos_env):
        cluster = PlanCluster(
            chaos_env.directory, num_workers=2, replicas=2,
            handler_threads=4, max_batch=16, max_wait_ms=1.0,
            shm_threshold=1024,
        )
        shm_base = cluster._shm_base
        client = ClusterClient(cluster, own_backend=True,
                               worker_died_retries=0)
        restarted = []
        try:
            cluster.wait_ready(timeout=180)
            total = LOAD_THREADS * REQUESTS_PER_THREAD

            def rolling_restart(read_progress):
                # One worker at a time, anchored to load progress so
                # requests are guaranteed in flight around each restart.
                for index, milestone in enumerate((total // 4,
                                                   total // 2)):
                    while read_progress() < milestone:
                        time.sleep(0.005)
                    cluster.restart_worker(index)
                    restarted.append(index)

            results, failures = self._run_mixed_load(
                chaos_env, client, rolling_restart
            )
            assert restarted == [0, 1], "the rolling restart never ran"
            assert failures == [], (
                f"rolling restart surfaced {len(failures)} error(s); "
                f"first: {failures[0]!r}"
            )
            assert len(results) == total
            self._assert_bit_exact(chaos_env, results)
            assert cluster.dead_workers == []
            summary = cluster.stats_summary()
            for i in range(cluster.num_workers):
                supervisor = summary[f"worker-{i}"]["supervisor"]
                assert supervisor["restarts"] == 1
        finally:
            client.close()
        assert list_segments(shm_base) == []


class TestKillPoints:
    """Targeted kill points: pre-submit, mid-batch, and mid-response."""

    @pytest.fixture
    def healing_cluster(self, chaos_env):
        cluster = PlanCluster(
            chaos_env.directory, num_workers=2, handler_threads=2,
            auto_restart=True, max_restarts=20, restart_backoff=0.02,
            stability_window=0.5, shm_threshold=0,
        )
        client = ClusterClient(cluster, own_backend=True,
                               worker_died_retries=20,
                               worker_died_backoff=0.05)
        cluster.wait_ready(timeout=180)
        yield SimpleNamespace(cluster=cluster, client=client, **vars(chaos_env))
        client.close()

    def test_kill_before_submit_then_request_succeeds(self, healing_cluster):
        name = MODELS[0]
        shard = healing_cluster.cluster.worker_for(name, 4, "acm")
        healing_cluster.cluster._workers[shard].process.kill()
        batch = healing_cluster.images[:4]
        logits = healing_cluster.client.predict(PredictRequest(
            images=batch, model=name, mapping="acm", bits=4)).logits
        np.testing.assert_array_equal(logits,
                                      healing_cluster.plans[name].run(batch))

    def test_kill_mid_request_then_retry_succeeds(self, healing_cluster):
        name = MODELS[1]
        shard = healing_cluster.cluster.worker_for(name, 4, "acm")
        batch = healing_cluster.images[:8]
        done = []

        def issue():
            out = healing_cluster.client.ensemble(EnsembleRequest(
                images=batch, model=name, mapping="acm", bits=4,
                sigma_fraction=0.1, num_samples=25, seed=3))
            done.append(out)

        thread = threading.Thread(target=issue)
        thread.start()
        time.sleep(0.05)  # let the request reach the worker
        healing_cluster.cluster._workers[shard].process.kill()
        thread.join(timeout=300)
        assert not thread.is_alive() and len(done) == 1
        expected = healing_cluster.reference.predict_under_variation(
            batch, model=name, bits=4, mapping="acm", sigma_fraction=0.1,
            num_samples=25, seed=3,
        )
        np.testing.assert_array_equal(done[0].mean_logits,
                                      expected.mean_logits)
        np.testing.assert_array_equal(done[0].predictions,
                                      expected.predictions)


class TestCircuitBreaker:
    """A crash-looping shard opens its breaker instead of retrying forever."""

    def test_crash_loop_opens_breaker_and_manual_restart_closes_it(
        self, chaos_env
    ):
        max_restarts = 2
        cluster = PlanCluster(
            chaos_env.directory, num_workers=1, handler_threads=2,
            auto_restart=True, max_restarts=max_restarts,
            restart_backoff=0.01, max_restart_backoff=0.05,
            stability_window=60.0,  # a streak never resets mid-test
        )
        client = ClusterClient(cluster, own_backend=True,
                               worker_died_retries=3,
                               worker_died_backoff=0.01)
        name = MODELS[0]
        batch = chaos_env.images[:2]
        try:
            cluster.wait_ready(timeout=180)
            # Kill every incarnation the moment it appears.
            killed_pids = set()
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if cluster.open_breakers == [0]:
                    break
                worker = cluster._workers[0]
                pid = worker.process.pid
                if pid not in killed_pids and worker.process.is_alive():
                    worker.process.kill()
                    killed_pids.add(pid)
                time.sleep(0.01)
            assert cluster.open_breakers == [0], \
                "breaker never opened under a sustained crash loop"
            # The supervisor spent its budget, then stopped respawning.
            supervisor = cluster.stats_summary()["worker-0"]["supervisor"]
            assert supervisor["breaker_open"] is True
            assert supervisor["restarts"] == max_restarts
            assert supervisor["consecutive_crashes"] == max_restarts

            # Only now may WorkerDied surface — immediately, breaker-marked,
            # without burning the retry budget.
            start = time.monotonic()
            with pytest.raises(WorkerDied) as excinfo:
                client.predict(PredictRequest(images=batch, model=name,
                                              mapping="acm", bits=4))
            assert excinfo.value.breaker_open is True
            assert excinfo.value.worker_index == 0
            assert excinfo.value.code == "worker_died"
            assert time.monotonic() - start < 5.0, \
                "an open breaker must fail fast, not retry"

            # Manual re-admission: restart_worker resets the breaker and
            # the shard serves bit-exact results again.
            cluster.restart_worker(0)
            assert cluster.open_breakers == []
            logits = client.predict(PredictRequest(
                images=batch, model=name, mapping="acm", bits=4)).logits
            np.testing.assert_array_equal(logits,
                                          chaos_env.plans[name].run(batch))
            supervisor = cluster.stats_summary()["worker-0"]["supervisor"]
            assert supervisor["breaker_open"] is False
            assert supervisor["consecutive_crashes"] == 0
        finally:
            client.close()

    def test_supervisor_survives_a_failed_respawn(self, chaos_env):
        # Spawn failure (fd/process exhaustion) during a respawn must not
        # kill the supervisor: the attempt is retried with backoff and the
        # shard still heals.
        cluster = PlanCluster(
            chaos_env.directory, num_workers=1, handler_threads=2,
            auto_restart=True, max_restarts=10, restart_backoff=0.01,
            max_restart_backoff=0.05, stability_window=0.5,
        )
        client = ClusterClient(cluster, own_backend=True,
                               worker_died_retries=30,
                               worker_died_backoff=0.05)
        try:
            cluster.wait_ready(timeout=180)
            original = cluster._spawn_worker
            spawn_calls = []

            def flaky_spawn(index, incarnation):
                spawn_calls.append(incarnation)
                if len(spawn_calls) == 1:
                    raise OSError("simulated resource exhaustion")
                return original(index, incarnation)

            cluster._spawn_worker = flaky_spawn
            cluster._workers[0].process.kill()
            batch = chaos_env.images[:2]
            logits = client.predict(PredictRequest(
                images=batch, model=MODELS[0], mapping="acm", bits=4)).logits
            np.testing.assert_array_equal(
                logits, chaos_env.plans[MODELS[0]].run(batch))
            assert len(spawn_calls) >= 2, "the failed spawn was not retried"
            supervisor = cluster.stats_summary()["worker-0"]["supervisor"]
            # Only the successful attempt counts as a restart.
            assert supervisor["restarts"] == 1
            assert supervisor["breaker_open"] is False
        finally:
            client.close()

    def test_without_auto_restart_worker_died_surfaces_unretried(
        self, chaos_env
    ):
        # The pre-existing manual mode is unchanged: no supervisor, no
        # client retry loop — the typed error surfaces at once.
        cluster = PlanCluster(chaos_env.directory, num_workers=1,
                              handler_threads=2)
        client = ClusterClient(cluster, own_backend=True)
        try:
            cluster.wait_ready(timeout=180)
            worker = cluster._workers[0]
            worker.process.kill()
            worker.process.join(timeout=60)
            _wait_for(lambda: cluster.dead_workers == [0], 30,
                      "worker marked dead")
            start = time.monotonic()
            with pytest.raises(WorkerDied) as excinfo:
                client.predict(PredictRequest(images=chaos_env.images[:2],
                                              model=MODELS[0], mapping="acm",
                                              bits=4))
            assert excinfo.value.breaker_open is False
            assert time.monotonic() - start < 5.0
        finally:
            client.close()


class TestStudyChaos:
    """The experiment-as-a-service leg: a study survives every death mode.

    One run exercises both failure domains of the job subsystem at once:
    a SIGKILL'd replica mid-study (the cluster heals, the cell retries —
    never a lost cell) *and* a manager death mid-study (the successor
    re-indexes the checkpoint directory and re-enqueues only the missing
    cells).  The resumed :class:`StudyResult` must be bit-identical to an
    uninterrupted single-process run of the same spec, with zero leaked
    shared-memory segments afterwards.
    """

    def test_study_survives_replica_sigkill_and_manager_restart(
        self, chaos_env, tmp_path
    ):
        rng = np.random.default_rng(CHAOS_SEED + 99)
        images = chaos_env.images[:8]
        spec = study_spec(
            images=images,
            models=[(name, "acm", 4) for name in MODELS],
            sigmas=(0.0, 0.1, 0.2),
            num_samples=6,
            seed=11,
            labels=rng.integers(0, 10, size=images.shape[0]),
        )
        # The uninterrupted oracle: the same spec through a JobManager over
        # the single-process reference service (cells are pure functions of
        # the seeded request, so backend and interruptions must not matter).
        oracle_manager = JobManager(chaos_env.reference)
        oracle = oracle_manager.wait(
            oracle_manager.submit(spec), timeout=300
        ).result
        oracle_manager.close()

        cluster = PlanCluster(
            chaos_env.directory, num_workers=2, handler_threads=4,
            max_batch=16, max_wait_ms=1.0,
            auto_restart=True, max_restarts=50,
            restart_backoff=0.02, stability_window=0.5,
            shm_threshold=1024,
        )
        shm_base = cluster._shm_base
        client = ClusterClient(cluster, own_backend=True,
                               worker_died_retries=20,
                               worker_died_backoff=0.05)
        jobs_dir = tmp_path / "jobs"
        try:
            cluster.wait_ready(timeout=180)
            manager = JobManager(client, checkpoint_dir=jobs_dir,
                                 max_workers=2, retry_backoff=0.02)
            job_id = manager.submit(spec)
            # Mid-study — some cells checkpointed, more in flight — SIGKILL
            # one of the R=2 replicas.  Every model stays served by the
            # survivor, so the study keeps progressing while the
            # supervisor respawns the corpse.
            _wait_for(lambda: manager.status(job_id).cells_done >= 2,
                      timeout=240, what="mid-study progress before the kill")
            alive = _alive_worker_indices(cluster)
            assert alive, "no live worker to kill"
            cluster._workers[alive[0]].process.kill()
            # Then kill the *manager* too (drain its pool and drop it) —
            # the worst case: both the executor and a replica died.
            _wait_for(lambda: manager.status(job_id).cells_done >= 4,
                      timeout=240, what="more progress after the kill")
            manager.close()

            successor = JobManager(client, checkpoint_dir=jobs_dir,
                                   max_workers=2, retry_backoff=0.02)
            successor.resume()
            status = successor.wait(job_id, timeout=300)
            counts = successor.execution_counts(job_id)
            successor.close()
        finally:
            client.close()

        assert status.state == "done"
        assert status.cells_done == status.cells_total == spec.cell_count
        # Zero lost cells, zero double-executions: every cell was either
        # restored verbatim from the checkpoint or executed exactly once by
        # the successor.
        assert counts["resumed"] + counts["executed"] == spec.cell_count
        assert counts["resumed"] >= 4  # the pre-close checkpoint survived
        # The headline property: interrupted-and-resumed == uninterrupted,
        # to the last bit, accuracy scoring included.
        result = status.result
        assert result is not None and len(result.cells) == len(oracle.cells)
        for resumed_cell, oracle_cell in zip(result.cells, oracle.cells):
            assert (resumed_cell.model, resumed_cell.bits,
                    resumed_cell.mapping, resumed_cell.sigma_fraction) == (
                oracle_cell.model, oracle_cell.bits,
                oracle_cell.mapping, oracle_cell.sigma_fraction)
            np.testing.assert_array_equal(resumed_cell.mean_logits,
                                          oracle_cell.mean_logits)
            np.testing.assert_array_equal(resumed_cell.predictions,
                                          oracle_cell.predictions)
            np.testing.assert_array_equal(resumed_cell.confidence,
                                          oracle_cell.confidence)
            assert resumed_cell.accuracy == oracle_cell.accuracy
        # No residue: chaos plus clean shutdown leaves no shm segment.
        assert list_segments(shm_base) == []
